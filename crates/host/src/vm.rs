//! The virtual-machine model.
//!
//! The paper's virtualization experiments (Fig. 9, Table VII) run fio in
//! a guest with 4 vCPUs and 4 GB. What a scheme costs the guest differs:
//!
//! * **VFIO / BM-Store** — the NVMe BAR (doorbells included) is mapped
//!   into the guest, so submission needs no VM exit; completion arrives
//!   as a posted interrupt with a small delivery cost.
//! * **SPDK vhost** — submission rings a virtio kick the vhost thread
//!   polls (cheap for the guest), but completion is injected through an
//!   irqfd, which costs more than a posted interrupt.
//!
//! Additionally, guest completions are processed by vCPUs, and a 4-vCPU
//! guest handling hundreds of thousands of interrupts per second becomes
//! CPU-bound — this is why rand-r-128 latency roughly doubles inside a
//! VM for *every* scheme (Table VII: 786 µs bare-metal → ~1650 µs VM).

use bm_sim::SimDuration;

/// Guest resource shape and virtualization costs.
#[derive(Debug, Clone, PartialEq)]
pub struct VmConfig {
    /// Display name.
    pub name: String,
    /// Number of virtual CPUs.
    pub vcpus: usize,
    /// Guest memory in bytes.
    pub memory_bytes: u64,
    /// Cost of a guest doorbell/kick (0 when the BAR is guest-mapped).
    pub doorbell_exit: SimDuration,
    /// Added latency delivering a completion interrupt into the guest.
    pub interrupt_delivery: SimDuration,
    /// Guest-side CPU work to process one completion (IRQ + guest block
    /// layer) — this serializes on the vCPUs.
    pub guest_complete_cost: SimDuration,
}

impl VmConfig {
    /// The paper's guest: 4 vCPUs, 4 GB (§V-C), for a directly-assigned
    /// device (VFIO passthrough or a BM-Store VF).
    pub fn paper_guest_direct(name: impl Into<String>) -> Self {
        VmConfig {
            name: name.into(),
            vcpus: 4,
            memory_bytes: 4 << 30,
            doorbell_exit: SimDuration::ZERO,
            interrupt_delivery: SimDuration::from_nanos(2_600),
            guest_complete_cost: SimDuration::from_nanos(3_000),
        }
    }

    /// The paper's guest attached through SPDK vhost (virtio-blk):
    /// kicks are cheap (the vhost core polls), completion injection via
    /// irqfd costs more.
    pub fn paper_guest_vhost(name: impl Into<String>) -> Self {
        VmConfig {
            name: name.into(),
            vcpus: 4,
            memory_bytes: 4 << 30,
            doorbell_exit: SimDuration::from_nanos(600),
            interrupt_delivery: SimDuration::from_nanos(4_000),
            guest_complete_cost: SimDuration::from_nanos(3_200),
        }
    }

    /// Peak completions per second the guest's vCPUs can process.
    pub fn completion_ceiling(&self) -> f64 {
        self.vcpus as f64 / self.guest_complete_cost.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_guest_has_no_doorbell_exit() {
        let vm = VmConfig::paper_guest_direct("vm0");
        assert_eq!(vm.doorbell_exit, SimDuration::ZERO);
        assert_eq!(vm.vcpus, 4);
    }

    #[test]
    fn vhost_guest_pays_for_kick_and_injection() {
        let direct = VmConfig::paper_guest_direct("a");
        let vhost = VmConfig::paper_guest_vhost("b");
        assert!(vhost.doorbell_exit > direct.doorbell_exit);
        assert!(vhost.interrupt_delivery > direct.interrupt_delivery);
    }

    #[test]
    fn four_vcpus_cap_completion_rate_near_table_vii() {
        // Table VII: rand-r-128 in-VM sustains ~310 K IOPS (512 / 1.65 ms)
        // for VFIO — i.e. the guest ceiling must sit near 1.3 M raw
        // (other costs share the vCPUs with submission work).
        let vm = VmConfig::paper_guest_direct("vm");
        let ceiling = vm.completion_ceiling();
        assert!((1.0e6..1.6e6).contains(&ceiling), "ceiling {ceiling}");
    }
}
