//! # bm-host — host-side model
//!
//! Models the parts of the paper's testbed that live above PCIe:
//!
//! * [`kernel`] — per-OS/kernel I/O-stack profiles (submit/complete CPU
//!   costs, added latency, block-layer plugging behaviour). These carry
//!   Table VI: BM-Store itself is host-independent, but the measured
//!   numbers differ across kernels because the *host stack* differs.
//! * [`cpu`] — the host CPU pool: cores are busy-until resources, and
//!   polling schemes (SPDK vhost) reserve dedicated cores, which is the
//!   entire TCO argument of the paper.
//! * [`vm`] — the virtual-machine model: vCPU count, doorbell exit
//!   costs, and interrupt delivery costs per virtualization scheme.
//!
//! # Examples
//!
//! ```
//! use bm_host::kernel::KernelProfile;
//! let k = KernelProfile::centos79_310();
//! assert!(k.submit_cost.as_micros_f64() < 5.0);
//! ```

#![forbid(unsafe_code)]

pub mod cpu;
pub mod kernel;
pub mod vm;

pub use cpu::CpuPool;
pub use kernel::KernelProfile;
pub use vm::VmConfig;
