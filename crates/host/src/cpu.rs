//! The host CPU pool.
//!
//! The paper's host has two 24-core Xeon 8163 sockets (Table III). The
//! pool hands out cores to workloads (fio jobs, database threads) and
//! lets polling schemes *reserve* cores outright — the reserved cores
//! are what SPDK vhost burns and BM-Store gives back to tenants (Fig. 1
//! and the §VI-C TCO analysis).

use bm_sim::resource::FifoServer;
use bm_sim::{SimDuration, SimTime};

/// A pool of host CPU cores.
///
/// # Examples
///
/// ```
/// use bm_host::CpuPool;
/// use bm_sim::{SimDuration, SimTime};
///
/// let mut pool = CpuPool::new(48);
/// let polling = pool.reserve(8).unwrap(); // SPDK vhost cores
/// assert_eq!(pool.available(), 40);
/// let core = polling[0];
/// let done = pool.run_on(core, SimTime::ZERO, SimDuration::from_us(3));
/// assert_eq!(done.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone)]
pub struct CpuPool {
    cores: Vec<FifoServer>,
    reserved: Vec<usize>,
    next_grant: usize,
}

/// Identifier of one core within a [`CpuPool`].
pub type CoreId = usize;

impl CpuPool {
    /// Creates a pool of `n` idle cores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a host needs at least one core");
        CpuPool {
            cores: vec![FifoServer::new(); n],
            reserved: Vec::new(),
            next_grant: 0,
        }
    }

    /// The paper's host: 2 × 24 cores, hyper-threading disabled (§V-A).
    pub fn xeon_8163_dual() -> Self {
        Self::new(48)
    }

    /// Total cores.
    pub fn total(&self) -> usize {
        self.cores.len()
    }

    /// Cores not yet reserved.
    pub fn available(&self) -> usize {
        self.cores.len() - self.reserved.len()
    }

    /// Reserves `n` dedicated cores (for a polling backend); returns
    /// their ids, or `None` if not enough cores remain.
    pub fn reserve(&mut self, n: usize) -> Option<Vec<CoreId>> {
        if self.available() < n {
            return None;
        }
        let start = self.reserved.len();
        let ids: Vec<CoreId> = (start..start + n).collect();
        self.reserved.extend(&ids);
        Some(ids)
    }

    /// Grants a (non-exclusive) core for a workload thread, round-robin
    /// over the unreserved cores.
    pub fn grant(&mut self) -> CoreId {
        let unreserved = self.available().max(1);
        let id = self.reserved.len() + (self.next_grant % unreserved);
        self.next_grant += 1;
        id.min(self.cores.len() - 1)
    }

    /// Runs `work` on `core` starting no earlier than `now`; returns the
    /// completion time (FIFO behind earlier work on the same core).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn run_on(&mut self, core: CoreId, now: SimTime, work: SimDuration) -> SimTime {
        self.cores[core].occupy(now, work)
    }

    /// When `core` next becomes free.
    pub fn core_free_at(&self, core: CoreId) -> SimTime {
        self.cores[core].free_at()
    }

    /// Utilization of `core` over a window.
    pub fn utilization(&self, core: CoreId, window: SimDuration) -> f64 {
        self.cores[core].utilization(window)
    }

    /// Total CPU-seconds consumed across the pool.
    pub fn busy_total(&self) -> SimDuration {
        self.cores.iter().map(FifoServer::busy_total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_takes_cores_out_of_circulation() {
        let mut pool = CpuPool::new(8);
        let r = pool.reserve(3).unwrap();
        assert_eq!(r, vec![0, 1, 2]);
        assert_eq!(pool.available(), 5);
        assert!(pool.reserve(6).is_none());
        assert!(pool.reserve(5).is_some());
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn grants_round_robin_over_unreserved() {
        let mut pool = CpuPool::new(4);
        pool.reserve(1).unwrap();
        let grants: Vec<CoreId> = (0..6).map(|_| pool.grant()).collect();
        assert_eq!(grants, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn core_work_serializes() {
        let mut pool = CpuPool::new(2);
        let t0 = SimTime::ZERO;
        let a = pool.run_on(0, t0, SimDuration::from_us(5));
        let b = pool.run_on(0, t0, SimDuration::from_us(5));
        let c = pool.run_on(1, t0, SimDuration::from_us(5));
        assert_eq!(a.as_nanos(), 5_000);
        assert_eq!(b.as_nanos(), 10_000);
        assert_eq!(c.as_nanos(), 5_000);
        assert_eq!(pool.busy_total(), SimDuration::from_us(15));
    }

    #[test]
    fn paper_host_has_48_cores() {
        assert_eq!(CpuPool::xeon_8163_dual().total(), 48);
    }
}
