//! Kernel I/O-stack profiles.
//!
//! BM-Store is transparent to the host, so the *device-side* behaviour is
//! identical under every OS — what differs (Table VI) is the host stack:
//! how much CPU each submission and completion costs, how much latency
//! the driver adds, and how aggressively the block layer plugs/batches
//! requests. The older CentOS 3.10 kernel batches heavily: it sustains
//! slightly more IOPS but reports much higher per-I/O latency because
//! requests wait in software queues; Fedora's newer kernels dispatch
//! eagerly — lower latency, a few percent fewer IOPS.
//!
//! Calibration targets (Table VI, 4K randread, QD16 × 8 jobs):
//!
//! | OS / kernel            | IOPS  | BW MB/s | avg lat µs |
//! |------------------------|-------|---------|------------|
//! | CentOS 7.4 3.10.0      | 642 K | 2629    | 394.4      |
//! | CentOS 7.4 4.19.127    | 642 K | 2629    | 395.9      |
//! | CentOS 7.4 5.4.3       | 642 K | 2630    | 396.1      |
//! | Fedora 33 4.9.296      | 603 K | 2468    | 207.0      |
//! | Fedora 33 5.8.15       | 607 K | 2487    | 206.4      |

use bm_sim::SimDuration;

/// One OS/kernel I/O-stack profile.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Display name, e.g. `"CentOS 7.4.1708 / 3.10.0"`.
    pub name: &'static str,
    /// CPU time per submission (syscall + block layer + driver).
    pub submit_cost: SimDuration,
    /// CPU time per completion (hard IRQ + softirq + wakeup).
    pub complete_cost: SimDuration,
    /// Latency the stack adds to every I/O beyond the CPU costs
    /// (context switch back to the waiting thread, IRQ delivery).
    pub extra_latency: SimDuration,
    /// Block-layer plugging: the factor by which *measured* completion
    /// latency exceeds device latency because requests sit in software
    /// queues before dispatch. 1.0 = eager dispatch.
    pub plug_factor: f64,
    /// Per-completion serialization in the softirq path (one ksoftirqd
    /// context per device): caps sustainable IOPS at `1/softirq_per_io`.
    pub softirq_per_io: SimDuration,
}

impl KernelProfile {
    /// The paper's main testbed: CentOS 7.9.2009, kernel 3.10.0
    /// (Table III).
    pub fn centos79_310() -> Self {
        KernelProfile {
            name: "CentOS 7.9.2009 / 3.10.0",
            submit_cost: SimDuration::from_nanos(2_000),
            complete_cost: SimDuration::from_nanos(2_500),
            extra_latency: SimDuration::from_nanos(2_750),
            plug_factor: 1.99,
            softirq_per_io: SimDuration::from_nanos(1_550),
        }
    }

    /// CentOS 7.4.1708, kernel 3.10.0 (Table VI row 1).
    pub fn centos74_310() -> Self {
        KernelProfile {
            name: "CentOS 7.4.1708 / 3.10.0",
            ..Self::centos79_310()
        }
    }

    /// CentOS 7.4.1708, kernel 4.19.127 (Table VI row 2).
    pub fn centos74_419() -> Self {
        KernelProfile {
            name: "CentOS 7.4.1708 / 4.19.127",
            plug_factor: 1.997,
            ..Self::centos79_310()
        }
    }

    /// CentOS 7.4.1708, kernel 5.4.3 (Table VI row 3).
    pub fn centos74_54() -> Self {
        KernelProfile {
            name: "CentOS 7.4.1708 / 5.4.3",
            plug_factor: 1.998,
            ..Self::centos79_310()
        }
    }

    /// Fedora 33, kernel 4.9.296 (Table VI row 4).
    pub fn fedora33_49() -> Self {
        KernelProfile {
            name: "Fedora 33 / 4.9.296",
            submit_cost: SimDuration::from_nanos(1_800),
            complete_cost: SimDuration::from_nanos(2_200),
            extra_latency: SimDuration::from_nanos(2_500),
            plug_factor: 1.0,
            softirq_per_io: SimDuration::from_nanos(1_660),
        }
    }

    /// Fedora 33, kernel 5.8.15 (Table VI row 5).
    pub fn fedora33_58() -> Self {
        KernelProfile {
            name: "Fedora 33 / 5.8.15",
            softirq_per_io: SimDuration::from_nanos(1_648),
            ..Self::fedora33_49()
        }
    }

    /// All five Table VI profiles, in table order.
    pub fn table_vi() -> Vec<KernelProfile> {
        vec![
            Self::centos74_310(),
            Self::centos74_419(),
            Self::centos74_54(),
            Self::fedora33_49(),
            Self::fedora33_58(),
        ]
    }

    /// The guest kernel in the paper's VMs (same CentOS image).
    pub fn guest_centos79() -> Self {
        KernelProfile {
            name: "guest CentOS 7.9.2009 / 3.10.0",
            ..Self::centos79_310()
        }
    }

    /// Per-I/O added latency due to the stack (both directions).
    pub fn round_trip_latency(&self) -> SimDuration {
        self.submit_cost + self.complete_cost + self.extra_latency
    }
}

impl Default for KernelProfile {
    fn default() -> Self {
        Self::centos79_310()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_testbed_stack_is_about_9us() {
        // Native rand-r-1 is 77.2 µs with ~68 µs media ⇒ ~9 µs of stack.
        let k = KernelProfile::centos79_310();
        let rt = k.round_trip_latency().as_micros_f64();
        assert!((7.0..11.0).contains(&rt), "round trip {rt}");
    }

    #[test]
    fn centos_batches_fedora_does_not() {
        assert!(KernelProfile::centos74_310().plug_factor > 1.5);
        assert_eq!(KernelProfile::fedora33_49().plug_factor, 1.0);
    }

    #[test]
    fn fedora_trades_iops_for_latency() {
        let c = KernelProfile::centos74_310();
        let f = KernelProfile::fedora33_49();
        // Higher softirq cost = lower IOPS ceiling; less plugging =
        // lower reported latency.
        assert!(f.softirq_per_io > c.softirq_per_io);
        assert!(f.plug_factor < c.plug_factor);
    }

    #[test]
    fn table_vi_has_five_distinct_profiles() {
        let profiles = KernelProfile::table_vi();
        assert_eq!(profiles.len(), 5);
        let names: std::collections::HashSet<_> = profiles.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 5);
    }
}
