//! The SSD controller.
//!
//! An [`Ssd`] serves whatever queues its attachment point created for it
//! — rings in host DRAM when native-attached, rings in the BMS-Engine's
//! host adaptor when behind BM-Store. It consumes doorbells, fetches and
//! parses SQEs through a [`DmaContext`], walks PRPs, moves block data,
//! and reports *timed* completions that the caller turns into CQE posts
//! and interrupts at the right simulated instant.

use crate::calibration::PerfProfile;
use crate::firmware::{CommitAction, FirmwareBank};
use crate::perf::PerfModel;
use crate::store::BlockStore;
use bm_nvme::command::{AdminOpcode, IoOpcode, Opcode, Sqe};
use bm_nvme::identify::{IdentifyController, IdentifyNamespace};
use bm_nvme::prp::PrpPair;
use bm_nvme::queue::{CompletionQueue, QueueFull, SubmissionQueue};
use bm_nvme::types::{Cid, Lba, Nsid, QueueId};
use bm_nvme::{Cqe, Namespace, Status};
use bm_pcie::{DmaContext, PciAddr};
use bm_sim::{SimDuration, SimRng, SimTime};
use bytes::Bytes;
use std::collections::VecDeque;
use std::fmt;

/// Identifies one physical SSD behind the card.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SsdId(pub u8);

impl fmt::Display for SsdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ssd{}", self.0)
    }
}

/// Whether block payloads actually move through simulated memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataMode {
    /// Move and retain real bytes — integrity tests.
    Full,
    /// Account sizes only — long performance runs.
    #[default]
    TimingOnly,
}

/// Construction parameters for an [`Ssd`].
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Device identity.
    pub id: SsdId,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Logical block size in bytes.
    pub block_size: u64,
    /// Performance profile.
    pub profile: PerfProfile,
    /// Payload handling mode.
    pub data_mode: DataMode,
    /// Seed for the device's RNG stream.
    pub seed: u64,
    /// Initial firmware version string.
    pub firmware: String,
}

impl SsdConfig {
    /// The paper's device: a 2.0 TB Intel P4510 (Table III).
    pub fn p4510_2tb(id: SsdId) -> Self {
        SsdConfig {
            id,
            capacity_bytes: 2_000_000_000_000,
            block_size: 4096,
            profile: PerfProfile::p4510_2tb(),
            data_mode: DataMode::TimingOnly,
            seed: 0x5D_u64 << 8 | id.0 as u64,
            firmware: "VDV10131".to_string(),
        }
    }

    /// Switches to full data capture (integrity tests).
    pub fn with_data_mode(mut self, mode: DataMode) -> Self {
        self.data_mode = mode;
        self
    }

    /// Overrides the performance profile.
    pub fn with_profile(mut self, profile: PerfProfile) -> Self {
        self.profile = profile;
        self
    }
}

/// One timed completion produced by the controller.
#[derive(Debug)]
pub struct CompletedIo {
    /// When the command finishes inside the device.
    pub at: SimTime,
    /// When the device started servicing it (the doorbell-driven fetch
    /// that pulled the SQE). `at - submitted_at` is the device-internal
    /// service interval telemetry reports as the back-end span.
    pub submitted_at: SimTime,
    /// The queue the command arrived on.
    pub qid: QueueId,
    /// The command id to complete.
    pub cid: Cid,
    /// Completion status.
    pub status: Status,
    /// Bytes transferred (0 for flush/admin).
    pub bytes: u64,
    /// Whether the command was a host→device write.
    pub is_write: bool,
    /// For reads in [`DataMode::Full`]: `(address, data)` pairs the
    /// device DMAs toward the host at completion time. The payloads are
    /// refcounted views into the block store's data — carrying a
    /// completion around does not copy it.
    pub read_payload: Option<Vec<(PciAddr, Bytes)>>,
    /// Set when a firmware commit activated new firmware: how long the
    /// device stays frozen.
    pub fw_activation: Option<SimDuration>,
}

struct QueuePair {
    sq: SubmissionQueue,
    cq: CompletionQueue,
}

/// Injected misbehaviour, armed by the testbed's fault interpreter.
///
/// The default state is inert: no field is consulted beyond a cheap
/// comparison against `SimTime::ZERO` / `0`, and no RNG is drawn, so a
/// fault-free run is byte-identical to a build without fault support.
#[derive(Debug, Default)]
struct FaultState {
    /// Extra latency added to completions of commands arriving before
    /// `extra_until`.
    extra_latency: SimDuration,
    extra_until: SimTime,
    /// Surprise removal: every subsequent I/O errors immediately.
    dead: bool,
    /// Probabilistic error window: each I/O before `error_until` fails
    /// with `error_probability`, drawn from `error_rng` (forked from
    /// the fault plan's seed, never the device's own stream).
    error_probability: f64,
    error_until: SimTime,
    error_rng: Option<SimRng>,
    /// I/O commands still to be silently swallowed (consumed from the
    /// SQ but never completed — the stimulus for engine timeouts).
    drop_remaining: u32,
    /// Total commands swallowed so far.
    dropped: u64,
}

/// One recently persisted write, kept so a power-loss fault can tear
/// it. `old` holds the overwritten content of each block (captured
/// before the write landed); `complete_at` is the device-internal
/// completion time — a write whose completion has already fired by the
/// power-loss instant is durable and never torn.
#[derive(Debug, Clone)]
struct RecentWrite {
    slba: Lba,
    old: Vec<Bytes>,
    complete_at: SimTime,
}

/// Depth of the torn-write log: only this many most-recent writes are
/// candidates for tearing, bounding the capture cost per device.
const TORN_WRITE_LOG_DEPTH: usize = 32;

/// Cumulative device-service accounting: every completion's internal
/// service interval (`at - submitted_at`, injected spikes included)
/// summed over the run. `busy / elapsed` is the service-time occupancy
/// the metrics sampler turns into the SSD utilization series; it can
/// exceed 1.0 while multiple flash dies service commands in parallel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Commands serviced (error completions included).
    pub ops: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Summed service intervals.
    pub busy: SimDuration,
}

/// The SSD device model.
///
/// See the [crate documentation](crate) for the composition and
/// `tests/` for end-to-end usage through real rings.
pub struct Ssd {
    cfg: SsdConfig,
    ns: Namespace,
    perf: PerfModel,
    firmware: FirmwareBank,
    store: BlockStore,
    admin: Option<QueuePair>,
    io: Vec<QueuePair>,
    fetched: u64,
    errors: u64,
    /// End LBA of the most recent read (sequential-stream detection for
    /// mechanical profiles).
    last_read_end: u64,
    service: ServiceStats,
    faults: FaultState,
    /// Torn-write candidates, newest last. Only populated in
    /// [`DataMode::Full`]; empty (and free) in timing-only runs.
    recent_writes: VecDeque<RecentWrite>,
}

impl fmt::Debug for Ssd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ssd")
            .field("id", &self.cfg.id)
            .field("capacity", &self.cfg.capacity_bytes)
            .field("firmware", &self.firmware.running().0)
            .field("io_queues", &self.io.len())
            .finish()
    }
}

impl Ssd {
    /// Creates a device from its configuration.
    pub fn new(cfg: SsdConfig) -> Self {
        let ns = Namespace::from_bytes(Nsid::ONE, cfg.capacity_bytes, cfg.block_size);
        let mut rng = SimRng::seed_from(cfg.seed);
        let perf = PerfModel::new(cfg.profile.clone(), rng.fork(1));
        let store = BlockStore::new(
            cfg.id.0 as u64,
            cfg.block_size,
            matches!(cfg.data_mode, DataMode::Full),
        );
        let firmware = FirmwareBank::new(&cfg.firmware);
        Ssd {
            ns,
            perf,
            firmware,
            store,
            admin: None,
            io: Vec::new(),
            fetched: 0,
            errors: 0,
            last_read_end: u64::MAX,
            service: ServiceStats::default(),
            faults: FaultState::default(),
            recent_writes: VecDeque::new(),
            cfg,
        }
    }

    /// Device identity.
    pub fn id(&self) -> SsdId {
        self.cfg.id
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cfg.capacity_bytes
    }

    /// The device's single physical namespace.
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// The performance model (e.g. to query the freeze horizon).
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// The firmware bank.
    pub fn firmware(&self) -> &FirmwareBank {
        &self.firmware
    }

    /// The block store.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Commands fetched so far.
    pub fn fetched(&self) -> u64 {
        self.fetched
    }

    /// Commands completed with error status.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Cumulative service-time accounting (see [`ServiceStats`]).
    pub fn service_stats(&self) -> ServiceStats {
        self.service
    }

    /// Arms a latency spike: completions of commands arriving before
    /// `until` take `extra` longer.
    pub fn inject_latency_spike(&mut self, extra: SimDuration, until: SimTime) {
        self.faults.extra_latency = extra;
        self.faults.extra_until = until;
    }

    /// Stalls the device: no command issued before `until` completes
    /// earlier than `until` (maps onto the performance model's freeze
    /// horizon, the same machinery firmware activation uses).
    pub fn inject_stall(&mut self, until: SimTime) {
        self.perf.freeze_until(until);
    }

    /// Kills the device permanently (surprise removal): every
    /// subsequent I/O completes quickly with [`Status::InternalError`].
    pub fn inject_death(&mut self) {
        self.faults.dead = true;
    }

    /// True once [`Ssd::inject_death`] has fired.
    pub fn is_dead(&self) -> bool {
        self.faults.dead
    }

    /// Arms a probabilistic error window: until `until`, each I/O
    /// independently fails with `probability`, sampled from `rng`
    /// (fork it from the fault plan seed so device timing streams stay
    /// untouched).
    pub fn inject_error_burst(&mut self, probability: f64, until: SimTime, rng: SimRng) {
        self.faults.error_probability = probability;
        self.faults.error_until = until;
        self.faults.error_rng = Some(rng);
    }

    /// Arms silent command loss: the next `count` I/O submissions are
    /// consumed from the queue but never complete.
    pub fn inject_command_drops(&mut self, count: u32) {
        self.faults.drop_remaining += count;
    }

    /// Total I/O commands silently swallowed by injected drops.
    pub fn dropped_commands(&self) -> u64 {
        self.faults.dropped
    }

    /// Power loss at `now`: up to `torn_writes` of the newest *un-acked*
    /// writes (device completion not yet fired at `now`) are torn —
    /// persisted content reverts to the pre-write bytes from a
    /// 512-byte-aligned cut point to the end of the write, modelling a
    /// capacitor-backed flush that stopped mid-stripe. Writes whose
    /// completion already fired are durable and never touched, so a
    /// read-back oracle over host-acked writes stays exact. Returns the
    /// number of writes actually torn (always 0 in timing-only mode).
    ///
    /// `rng` must be forked from the fault plan's seed: the tear
    /// geometry is fault-plan state, not device-timing state.
    pub fn power_loss(&mut self, now: SimTime, torn_writes: u32, mut rng: SimRng) -> u32 {
        let mut victims = Vec::new();
        while let Some(w) = self.recent_writes.pop_back() {
            if victims.len() as u32 >= torn_writes {
                break;
            }
            if w.complete_at > now {
                victims.push(w);
            }
        }
        // The rest of the log is moot: the outage reboots the device.
        self.recent_writes.clear();
        let bs = self.ns.block_size();
        let sectors_per_block = (bs / 512).max(1);
        let torn = victims.len() as u32;
        for w in victims {
            let nblocks = w.old.len() as u64;
            if nblocks == 0 {
                continue;
            }
            // New data persisted up to the cut; old bytes resurface
            // from the cut sector to the end of the write.
            let cut_block = rng.below(nblocks);
            let cut_off = (rng.below(sectors_per_block) * 512) as usize;
            for i in cut_block..nblocks {
                let lba = w.slba + i;
                let old = &w.old[i as usize];
                if i == cut_block && cut_off > 0 {
                    let mut merged = self.store.read_block(lba).to_vec();
                    if merged.len() == old.len() && cut_off < merged.len() {
                        merged[cut_off..].copy_from_slice(&old[cut_off..]);
                        self.store.write_block(lba, &merged);
                    }
                } else {
                    self.store.write_block(lba, old);
                }
            }
        }
        torn
    }

    /// Re-inserts a previously dead device (surprise-removal undo): the
    /// dead flag clears; queue attachment is the caller's job (the
    /// engine resets rings and re-attaches, as for a fresh hot-plug).
    pub fn revive(&mut self) {
        self.faults.dead = false;
    }

    /// Attaches the admin queue pair (replacing any previous one).
    pub fn attach_admin_queues(&mut self, sq: SubmissionQueue, cq: CompletionQueue) {
        self.admin = Some(QueuePair { sq, cq });
    }

    /// Attaches an I/O queue pair; returns its queue id (1-based).
    pub fn attach_io_queues(&mut self, sq: SubmissionQueue, cq: CompletionQueue) -> QueueId {
        self.io.push(QueuePair { sq, cq });
        QueueId(self.io.len() as u16)
    }

    /// Number of attached I/O queues.
    pub fn io_queue_count(&self) -> usize {
        self.io.len()
    }

    /// Resets the controller: queues detach, in-flight state drops, the
    /// content store and firmware bank survive (hot-plug replacement
    /// constructs a new `Ssd` instead).
    pub fn reset(&mut self) {
        self.admin = None;
        self.io.clear();
    }

    fn pair_mut(&mut self, qid: QueueId) -> Option<&mut QueuePair> {
        if qid.is_admin() {
            self.admin.as_mut()
        } else {
            self.io.get_mut(qid.0 as usize - 1)
        }
    }

    /// Handles an SQ tail doorbell: fetches every newly published SQE
    /// and returns their timed completions, in fetch order.
    ///
    /// # Panics
    ///
    /// Panics if `qid` has no attached queue pair or the doorbell value
    /// is out of range (hardware would raise an async error; the
    /// simulation treats both as harness bugs).
    pub fn ring_sq_doorbell(
        &mut self,
        now: SimTime,
        qid: QueueId,
        tail: u32,
        mut dma: &mut dyn DmaContext,
    ) -> Vec<CompletedIo> {
        {
            let pair = self.pair_mut(qid).expect("doorbell for unattached queue");
            pair.sq.doorbell_tail(tail).expect("doorbell in range");
        }
        let mut out = Vec::new();
        loop {
            let fetch = {
                let pair = self.pair_mut(qid).expect("attached");
                if pair.sq.is_empty() {
                    break;
                }
                pair.sq.fetch(&mut dma)
            };
            self.fetched += 1;
            match fetch {
                Ok(Some(sqe)) => {
                    if self.faults.drop_remaining > 0 && matches!(sqe.opcode, Opcode::Io(_)) {
                        // Injected loss: the SQE is consumed but no
                        // completion will ever be posted.
                        self.faults.drop_remaining -= 1;
                        self.faults.dropped += 1;
                        continue;
                    }
                    out.push(self.process(now, qid, sqe, dma));
                }
                Ok(None) => break,
                Err(status) => {
                    // Unparseable entry: complete with error immediately.
                    self.errors += 1;
                    out.push(CompletedIo {
                        at: now + SimDuration::from_us(1),
                        submitted_at: now,
                        qid,
                        cid: Cid(0),
                        status,
                        bytes: 0,
                        is_write: false,
                        read_payload: None,
                        fw_activation: None,
                    });
                }
            }
        }
        for io in &out {
            self.service.ops += 1;
            self.service.bytes += io.bytes;
            self.service.busy += io.at.saturating_since(io.submitted_at);
        }
        out
    }

    fn process(
        &mut self,
        now: SimTime,
        qid: QueueId,
        sqe: Sqe,
        dma: &mut dyn DmaContext,
    ) -> CompletedIo {
        let mut done = match sqe.opcode {
            Opcode::Io(op) => self.process_io(now, qid, op, sqe, dma),
            Opcode::Admin(op) => self.process_admin(now, qid, op, sqe, dma),
        };
        if now < self.faults.extra_until {
            done.at += self.faults.extra_latency;
        }
        done
    }

    fn fail(&mut self, now: SimTime, qid: QueueId, cid: Cid, status: Status) -> CompletedIo {
        self.errors += 1;
        CompletedIo {
            at: now + SimDuration::from_us(2),
            submitted_at: now,
            qid,
            cid,
            status,
            bytes: 0,
            is_write: false,
            read_payload: None,
            fw_activation: None,
        }
    }

    fn process_io(
        &mut self,
        now: SimTime,
        qid: QueueId,
        op: IoOpcode,
        sqe: Sqe,
        mut dma: &mut dyn DmaContext,
    ) -> CompletedIo {
        if self.faults.dead {
            return self.fail(now, qid, sqe.cid, Status::InternalError);
        }
        if now < self.faults.error_until {
            let fires = self
                .faults
                .error_rng
                .as_mut()
                .is_some_and(|rng| rng.chance(self.faults.error_probability));
            if fires {
                return self.fail(now, qid, sqe.cid, Status::InternalError);
            }
        }
        if sqe.nsid != Some(self.ns.nsid()) {
            return self.fail(now, qid, sqe.cid, Status::InvalidNamespace);
        }
        if op == IoOpcode::Flush {
            return CompletedIo {
                at: self.perf.flush_completion(now),
                submitted_at: now,
                qid,
                cid: sqe.cid,
                status: Status::Success,
                bytes: 0,
                is_write: false,
                read_payload: None,
                fw_activation: None,
            };
        }
        let nblocks = sqe.nlb_blocks();
        if let Err(status) = self.ns.check_range(sqe.slba, nblocks) {
            return self.fail(now, qid, sqe.cid, status);
        }
        let bytes = sqe.transfer_len(self.ns.block_size());
        let full_data = matches!(self.cfg.data_mode, DataMode::Full);
        let prp = PrpPair {
            prp1: sqe.prp1,
            prp2: sqe.prp2,
            len: bytes,
        };
        match op {
            IoOpcode::Write => {
                let mut old = Vec::new();
                if full_data {
                    let segments = match prp.segments(&mut dma) {
                        Ok(s) => s,
                        Err(_) => return self.fail(now, qid, sqe.cid, Status::InvalidField),
                    };
                    let mut data = Vec::with_capacity(bytes as usize);
                    for (addr, len) in segments {
                        let mut buf = vec![0u8; len as usize];
                        dma.dma_read(addr, &mut buf);
                        data.extend_from_slice(&buf);
                    }
                    let bs = self.ns.block_size() as usize;
                    old.reserve(nblocks as usize);
                    for (i, block) in data.chunks(bs).enumerate() {
                        // Cheap refcounted view of the overwritten
                        // content, kept so a power loss can tear the
                        // write back (see [`Ssd::power_loss`]).
                        old.push(self.store.read_block(sqe.slba + i as u64));
                        self.store.write_block(sqe.slba + i as u64, block);
                    }
                }
                let at = self.perf.write_completion(now, bytes);
                if full_data {
                    if self.recent_writes.len() >= TORN_WRITE_LOG_DEPTH {
                        self.recent_writes.pop_front();
                    }
                    self.recent_writes.push_back(RecentWrite {
                        slba: sqe.slba,
                        old,
                        complete_at: at,
                    });
                }
                CompletedIo {
                    at,
                    submitted_at: now,
                    qid,
                    cid: sqe.cid,
                    status: Status::Success,
                    bytes,
                    is_write: true,
                    read_payload: None,
                    fw_activation: None,
                }
            }
            IoOpcode::Read => {
                let sequential = sqe.slba.raw() == self.last_read_end;
                self.last_read_end = sqe.slba.raw() + nblocks as u64;
                let read_payload = if full_data {
                    let segments = match prp.segments(&mut dma) {
                        Ok(s) => s,
                        Err(_) => return self.fail(now, qid, sqe.cid, Status::InvalidField),
                    };
                    if nblocks == 1 && segments.len() == 1 && segments[0].1 == bytes {
                        // 4 KiB random read: hand the host a view of the
                        // stored block, no copies at all.
                        Some(vec![(segments[0].0, self.store.read_block(sqe.slba))])
                    } else {
                        let mut data = Vec::with_capacity(bytes as usize);
                        for i in 0..nblocks as u64 {
                            data.extend_from_slice(&self.store.read_block(sqe.slba + i));
                        }
                        let data = Bytes::from(data);
                        let mut payload = Vec::with_capacity(segments.len());
                        let mut cursor = 0usize;
                        for (addr, len) in segments {
                            payload.push((addr, data.slice(cursor..cursor + len as usize)));
                            cursor += len as usize;
                        }
                        Some(payload)
                    }
                } else {
                    None
                };
                CompletedIo {
                    at: self.perf.read_completion(now, bytes, sequential),
                    submitted_at: now,
                    qid,
                    cid: sqe.cid,
                    status: Status::Success,
                    bytes,
                    is_write: false,
                    read_payload,
                    fw_activation: None,
                }
            }
            IoOpcode::Flush => unreachable!("handled above"),
        }
    }

    fn process_admin(
        &mut self,
        now: SimTime,
        qid: QueueId,
        op: AdminOpcode,
        sqe: Sqe,
        dma: &mut dyn DmaContext,
    ) -> CompletedIo {
        let admin_latency = SimDuration::from_us(20);
        let mut fw_activation = None;
        let status = match op {
            AdminOpcode::Identify => {
                // CNS 01h = controller, 00h = namespace.
                let page = if sqe.cdw10 & 0xFF == 1 {
                    let mut idc = IdentifyController::bm_store_front_end(self.cfg.id.0);
                    idc.model = "INTEL SSDPE2KX020T8".to_string();
                    idc.firmware = self.firmware.running().0.clone();
                    idc.nn = 1;
                    idc.to_page()
                } else {
                    IdentifyNamespace::from_namespace(&self.ns).to_page()
                };
                if !sqe.prp1.is_null() {
                    dma.dma_write(sqe.prp1, &page);
                }
                Status::Success
            }
            AdminOpcode::FirmwareDownload => {
                // CDW10 = NUMD (dwords, 0-based), CDW11 = OFST (dwords).
                let numd = (sqe.cdw10 as u64 + 1) * 4;
                let ofst = sqe.cdw11 as u64 * 4;
                let mut buf = vec![0u8; numd as usize];
                if !sqe.prp1.is_null() {
                    dma.dma_read(sqe.prp1, &mut buf);
                }
                match self.firmware.download_chunk(ofst, &buf) {
                    Ok(()) => Status::Success,
                    Err(s) => s,
                }
            }
            AdminOpcode::FirmwareCommit => {
                let slot = (sqe.cdw10 & 0x7) as usize;
                let action = CommitAction::from_code((sqe.cdw10 >> 3) & 0x7);
                match action {
                    Some(action) => match self.firmware.commit(slot, action) {
                        Ok(true) => {
                            let dur = self.perf.sample_fw_activation();
                            self.perf.freeze_until(now + dur);
                            fw_activation = Some(dur);
                            Status::Success
                        }
                        Ok(false) => Status::Success,
                        Err(s) => s,
                    },
                    None => Status::InvalidField,
                }
            }
            AdminOpcode::GetLogPage | AdminOpcode::GetFeatures | AdminOpcode::SetFeatures => {
                Status::Success
            }
            AdminOpcode::CreateIoSq
            | AdminOpcode::CreateIoCq
            | AdminOpcode::DeleteIoSq
            | AdminOpcode::DeleteIoCq => {
                // Queue lifecycle is managed structurally by the
                // attachment point in this model; acknowledge.
                Status::Success
            }
        };
        if !status.is_success() {
            self.errors += 1;
        }
        CompletedIo {
            at: now + admin_latency,
            submitted_at: now,
            qid,
            cid: sqe.cid,
            status,
            bytes: 0,
            is_write: false,
            read_payload: None,
            fw_activation,
        }
    }

    /// Posts the CQE for a completion into the owning CQ ring (call at
    /// `io.at`). Returns the CQE as posted.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] if the host has not consumed the CQ.
    ///
    /// # Panics
    ///
    /// Panics if the queue pair was detached in the meantime.
    pub fn post_completion(
        &mut self,
        io: &CompletedIo,
        mut dma: &mut dyn DmaContext,
    ) -> Result<Cqe, QueueFull> {
        let pair = self
            .pair_mut(io.qid)
            .expect("completion for attached queue");
        let sq_head = pair.sq.head();
        let cqe = Cqe {
            result: 0,
            sq_head,
            sq_id: io.qid,
            cid: io.cid,
            phase: false, // assigned by the ring
            status: io.status,
        };
        pair.cq.post(&mut dma, cqe)?;
        Ok(cqe)
    }

    /// Delivers a read's payload toward the host (call at completion
    /// time, before posting the CQE).
    pub fn deliver_read_payload(io: &CompletedIo, dma: &mut dyn DmaContext) {
        if let Some(payload) = &io.read_payload {
            for (addr, data) in payload {
                dma.dma_write(*addr, data);
            }
        }
    }

    /// Management-plane firmware download (the BMS-Controller's private
    /// admin channel; the ring-based path is exercised by the admin
    /// queue tests).
    ///
    /// # Errors
    ///
    /// Propagates firmware-bank status errors.
    pub fn mgmt_firmware_download(&mut self, offset: u64, data: &[u8]) -> Result<(), Status> {
        self.firmware.download_chunk(offset, data)
    }

    /// Management-plane firmware commit. On activation, freezes the
    /// device and returns the activation duration.
    ///
    /// # Errors
    ///
    /// Propagates firmware-bank status errors.
    pub fn mgmt_firmware_commit(
        &mut self,
        now: SimTime,
        slot: usize,
        action: CommitAction,
    ) -> Result<Option<SimDuration>, Status> {
        match self.firmware.commit(slot, action)? {
            true => {
                let dur = self.perf.sample_fw_activation();
                self.perf.freeze_until(now + dur);
                Ok(Some(dur))
            }
            false => Ok(None),
        }
    }

    /// Handles a CQ head doorbell (host consumed entries).
    ///
    /// # Panics
    ///
    /// Panics if `qid` has no attached queue pair or the value is out of
    /// range.
    pub fn ring_cq_doorbell(&mut self, qid: QueueId, head: u32) {
        let pair = self.pair_mut(qid).expect("doorbell for unattached queue");
        pair.cq.doorbell_head(head).expect("doorbell in range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_nvme::command::{CQE_SIZE, SQE_SIZE};
    use bm_pcie::HostMemory;

    fn rig(data_mode: DataMode) -> (HostMemory, Ssd) {
        let mut mem = HostMemory::new(64 << 20);
        let mut ssd = Ssd::new(SsdConfig::p4510_2tb(SsdId(0)).with_data_mode(data_mode));
        let sq_base = mem.alloc(1024 * SQE_SIZE).unwrap();
        let cq_base = mem.alloc(1024 * CQE_SIZE).unwrap();
        ssd.attach_io_queues(
            SubmissionQueue::new(QueueId(1), sq_base, 1024),
            CompletionQueue::new(QueueId(1), cq_base, 1024),
        );
        let asq = mem.alloc(16 * SQE_SIZE).unwrap();
        let acq = mem.alloc(16 * CQE_SIZE).unwrap();
        ssd.attach_admin_queues(
            SubmissionQueue::new(QueueId::ADMIN, asq, 16),
            CompletionQueue::new(QueueId::ADMIN, acq, 16),
        );
        (mem, ssd)
    }

    /// Pushes `sqe` onto queue 1 and rings the doorbell; the host-side
    /// SQ state is mirrored through a scratch SubmissionQueue.
    fn submit_io(
        mem: &mut HostMemory,
        ssd: &mut Ssd,
        host_sq: &mut SubmissionQueue,
        now: SimTime,
        sqe: &Sqe,
    ) -> Vec<CompletedIo> {
        host_sq.push(mem, sqe).unwrap();
        ssd.ring_sq_doorbell(now, QueueId(1), host_sq.tail() as u32, mem)
    }

    #[test]
    fn write_then_read_round_trips_data() {
        let mut mem = HostMemory::new(64 << 20);
        let mut ssd = Ssd::new(SsdConfig::p4510_2tb(SsdId(1)).with_data_mode(DataMode::Full));
        let sq_base = mem.alloc(64 * SQE_SIZE).unwrap();
        let cq_base = mem.alloc(64 * CQE_SIZE).unwrap();
        let mut host_sq = SubmissionQueue::new(QueueId(1), sq_base, 64);
        ssd.attach_io_queues(
            SubmissionQueue::new(QueueId(1), sq_base, 64),
            CompletionQueue::new(QueueId(1), cq_base, 64),
        );

        // Host buffer with a pattern.
        let buf = mem.alloc(16 * 4096).unwrap();
        let pattern: Vec<u8> = (0..16 * 4096u32).map(|i| (i % 253) as u8).collect();
        mem.write(buf, &pattern);
        let prp = PrpPair::build(&mut mem, buf, pattern.len() as u64);
        let write = Sqe::io(
            IoOpcode::Write,
            Cid(1),
            Nsid::new(1).unwrap(),
            Lba(100),
            16,
            prp.prp1,
            prp.prp2,
        );
        let done = submit_io(&mut mem, &mut ssd, &mut host_sq, SimTime::ZERO, &write);
        assert_eq!(done.len(), 1);
        assert!(done[0].is_write);
        assert!(done[0].status.is_success());

        // Read into a different buffer.
        let rbuf = mem.alloc(16 * 4096).unwrap();
        let rprp = PrpPair::build(&mut mem, rbuf, pattern.len() as u64);
        let read = Sqe::io(
            IoOpcode::Read,
            Cid(2),
            Nsid::new(1).unwrap(),
            Lba(100),
            16,
            rprp.prp1,
            rprp.prp2,
        );
        let done = submit_io(&mut mem, &mut ssd, &mut host_sq, done[0].at, &read);
        assert_eq!(done.len(), 1);
        Ssd::deliver_read_payload(&done[0], &mut mem);
        let cqe = ssd.post_completion(&done[0], &mut mem).unwrap();
        assert!(cqe.status.is_success());
        assert_eq!(mem.read_vec(rbuf, pattern.len() as u64), pattern);
    }

    #[test]
    fn out_of_range_read_fails() {
        let (mut mem, mut ssd) = rig(DataMode::TimingOnly);
        let blocks = ssd.namespace().blocks();
        let sqe = Sqe::io(
            IoOpcode::Read,
            Cid(3),
            Nsid::new(1).unwrap(),
            Lba(blocks), // first invalid LBA
            1,
            PciAddr::new(0x10_0000),
            PciAddr::NULL,
        );
        // Use a scratch host SQ matching the rig's ring base.
        let sq_base = PciAddr::new(bm_pcie::memory::PAGE_SIZE);
        let mut host_sq = SubmissionQueue::new(QueueId(1), sq_base, 1024);
        let done = submit_io(&mut mem, &mut ssd, &mut host_sq, SimTime::ZERO, &sqe);
        assert_eq!(done[0].status, Status::LbaOutOfRange);
        assert_eq!(ssd.errors(), 1);
    }

    #[test]
    fn wrong_namespace_fails() {
        let (mut mem, mut ssd) = rig(DataMode::TimingOnly);
        let sqe = Sqe::io(
            IoOpcode::Read,
            Cid(4),
            Nsid::new(9).unwrap(),
            Lba(0),
            1,
            PciAddr::new(0x10_0000),
            PciAddr::NULL,
        );
        let sq_base = PciAddr::new(bm_pcie::memory::PAGE_SIZE);
        let mut host_sq = SubmissionQueue::new(QueueId(1), sq_base, 1024);
        let done = submit_io(&mut mem, &mut ssd, &mut host_sq, SimTime::ZERO, &sqe);
        assert_eq!(done[0].status, Status::InvalidNamespace);
    }

    #[test]
    fn identify_returns_model_and_firmware() {
        let (mut mem, mut ssd) = rig(DataMode::TimingOnly);
        let page_buf = mem.alloc(4096).unwrap();
        let sqe = Sqe::admin(AdminOpcode::Identify, Cid(1), 1, page_buf);
        let asq_base = PciAddr::new(bm_pcie::memory::PAGE_SIZE + 1024 * (SQE_SIZE + CQE_SIZE));
        let mut host_asq = SubmissionQueue::new(QueueId::ADMIN, asq_base, 16);
        host_asq.push(&mut mem, &sqe).unwrap();
        let done = ssd.ring_sq_doorbell(
            SimTime::ZERO,
            QueueId::ADMIN,
            host_asq.tail() as u32,
            &mut mem,
        );
        assert!(done[0].status.is_success());
        let page = mem.read_vec(page_buf, 4096);
        let idc = IdentifyController::from_page(&page);
        assert_eq!(idc.model, "INTEL SSDPE2KX020T8");
        assert_eq!(idc.firmware, "VDV10131");
    }

    #[test]
    fn firmware_upgrade_freezes_io() {
        let (mut mem, mut ssd) = rig(DataMode::TimingOnly);
        // Download an image.
        let img_buf = mem.alloc(4096).unwrap();
        mem.write(img_buf, b"NEWFW002");
        let asq_base = PciAddr::new(bm_pcie::memory::PAGE_SIZE + 1024 * (SQE_SIZE + CQE_SIZE));
        let mut host_asq = SubmissionQueue::new(QueueId::ADMIN, asq_base, 16);

        let dl = Sqe {
            cdw11: 0,
            ..Sqe::admin(AdminOpcode::FirmwareDownload, Cid(1), 1, img_buf)
        };
        host_asq.push(&mut mem, &dl).unwrap();
        let done = ssd.ring_sq_doorbell(
            SimTime::ZERO,
            QueueId::ADMIN,
            host_asq.tail() as u32,
            &mut mem,
        );
        assert!(done[0].status.is_success(), "{}", done[0].status);

        // Commit with activate-now on slot 2.
        let commit = Sqe::admin(
            AdminOpcode::FirmwareCommit,
            Cid(2),
            2 | (CommitAction::ActivateNow.code() << 3),
            PciAddr::NULL,
        );
        host_asq.push(&mut mem, &commit).unwrap();
        let done = ssd.ring_sq_doorbell(
            SimTime::ZERO,
            QueueId::ADMIN,
            host_asq.tail() as u32,
            &mut mem,
        );
        assert!(done[0].status.is_success());
        let dur = done[0].fw_activation.expect("activation happened");
        assert!(dur >= SimDuration::from_secs_f64(5.5));
        assert_eq!(ssd.firmware().running().0, "NEWFW002");

        // I/O issued during the freeze completes only after it.
        let sqe = Sqe::io(
            IoOpcode::Read,
            Cid(3),
            Nsid::new(1).unwrap(),
            Lba(0),
            1,
            PciAddr::new(0x10_0000),
            PciAddr::NULL,
        );
        let sq_base = PciAddr::new(bm_pcie::memory::PAGE_SIZE);
        let mut host_sq = SubmissionQueue::new(QueueId(1), sq_base, 1024);
        let done = submit_io(&mut mem, &mut ssd, &mut host_sq, SimTime::ZERO, &sqe);
        assert!(done[0].at >= SimTime::ZERO + dur);
    }

    #[test]
    fn reset_detaches_queues() {
        let (_, mut ssd) = rig(DataMode::TimingOnly);
        assert_eq!(ssd.io_queue_count(), 1);
        ssd.reset();
        assert_eq!(ssd.io_queue_count(), 0);
    }

    /// Writes `fill` over `nblocks` blocks at `slba` and returns the
    /// device-internal completion time.
    fn do_write(
        mem: &mut HostMemory,
        ssd: &mut Ssd,
        host_sq: &mut SubmissionQueue,
        now: SimTime,
        slba: Lba,
        nblocks: u32,
        fill: u8,
    ) -> SimTime {
        let len = nblocks as u64 * 4096;
        let buf = mem.alloc(len).unwrap();
        mem.write(buf, &vec![fill; len as usize]);
        let prp = PrpPair::build(mem, buf, len);
        let sqe = Sqe::io(
            IoOpcode::Write,
            Cid(1),
            Nsid::new(1).unwrap(),
            slba,
            nblocks,
            prp.prp1,
            prp.prp2,
        );
        let done = submit_io(mem, ssd, host_sq, now, &sqe);
        assert!(done[0].status.is_success());
        done[0].at
    }

    #[test]
    fn power_loss_tears_only_unacked_writes() {
        let (mut mem, mut ssd) = rig(DataMode::Full);
        let sq_base = PciAddr::new(bm_pcie::memory::PAGE_SIZE);
        let mut host_sq = SubmissionQueue::new(QueueId(1), sq_base, 1024);

        // First write completes (acked) before the second is issued.
        let acked_at = do_write(
            &mut mem,
            &mut ssd,
            &mut host_sq,
            SimTime::ZERO,
            Lba(0),
            4,
            0xAA,
        );
        let unacked_at = do_write(&mut mem, &mut ssd, &mut host_sq, acked_at, Lba(0), 4, 0xBB);
        assert!(unacked_at > acked_at);

        // Power fails mid-flight: the 0xBB write is still in the air.
        let torn = ssd.power_loss(acked_at, 4, SimRng::seed_from(7));
        assert_eq!(torn, 1, "only the un-acked write is a victim");

        // The tear is sector-aligned and suffix-shaped: the last 512
        // bytes of the last block always revert to the acked 0xAA data.
        let last = ssd.store().read_block(Lba(3));
        assert!(last[4096 - 512..].iter().all(|&b| b == 0xAA));
        // Everything before the cut keeps the new data; the very first
        // bytes of the write are either 0xBB (partial tear) or 0xAA
        // (cut at the start) — never anything else.
        let first = ssd.store().read_block(Lba(0));
        assert!(first[0] == 0xBB || first[0] == 0xAA);

        // A later power loss finds an empty log: nothing left to tear.
        assert_eq!(ssd.power_loss(acked_at, 4, SimRng::seed_from(8)), 0);
    }

    #[test]
    fn power_loss_leaves_acked_writes_durable() {
        let (mut mem, mut ssd) = rig(DataMode::Full);
        let sq_base = PciAddr::new(bm_pcie::memory::PAGE_SIZE);
        let mut host_sq = SubmissionQueue::new(QueueId(1), sq_base, 1024);
        let at = do_write(
            &mut mem,
            &mut ssd,
            &mut host_sq,
            SimTime::ZERO,
            Lba(10),
            2,
            0xCC,
        );
        // Power fails after the completion fired: nothing tears.
        assert_eq!(ssd.power_loss(at, 8, SimRng::seed_from(9)), 0);
        assert!(ssd.store().read_block(Lba(10)).iter().all(|&b| b == 0xCC));
        assert!(ssd.store().read_block(Lba(11)).iter().all(|&b| b == 0xCC));
    }

    #[test]
    fn timing_only_mode_has_nothing_to_tear() {
        let (mut mem, mut ssd) = rig(DataMode::TimingOnly);
        let sq_base = PciAddr::new(bm_pcie::memory::PAGE_SIZE);
        let mut host_sq = SubmissionQueue::new(QueueId(1), sq_base, 1024);
        let sqe = Sqe::io(
            IoOpcode::Write,
            Cid(1),
            Nsid::new(1).unwrap(),
            Lba(0),
            4,
            PciAddr::new(0x10_0000),
            PciAddr::NULL,
        );
        let done = submit_io(&mut mem, &mut ssd, &mut host_sq, SimTime::ZERO, &sqe);
        assert!(done[0].status.is_success());
        assert_eq!(ssd.power_loss(SimTime::ZERO, 4, SimRng::seed_from(3)), 0);
    }

    #[test]
    fn revive_undoes_surprise_removal() {
        let (mut mem, mut ssd) = rig(DataMode::TimingOnly);
        ssd.inject_death();
        assert!(ssd.is_dead());
        let sq_base = PciAddr::new(bm_pcie::memory::PAGE_SIZE);
        let mut host_sq = SubmissionQueue::new(QueueId(1), sq_base, 1024);
        let sqe = Sqe::io(
            IoOpcode::Read,
            Cid(1),
            Nsid::new(1).unwrap(),
            Lba(0),
            1,
            PciAddr::new(0x10_0000),
            PciAddr::NULL,
        );
        let done = submit_io(&mut mem, &mut ssd, &mut host_sq, SimTime::ZERO, &sqe);
        assert_eq!(done[0].status, Status::InternalError);
        ssd.revive();
        assert!(!ssd.is_dead());
        let done = submit_io(&mut mem, &mut ssd, &mut host_sq, SimTime::ZERO, &sqe);
        assert!(done[0].status.is_success());
    }
}
