//! Firmware slots, download, and activation.
//!
//! The hot-upgrade flow (paper §IV-D, Table IX, Fig. 15) is: the
//! BMS-Controller pushes a new image via `Firmware Image Download`
//! admin commands, then issues `Firmware Commit`; activation freezes the
//! device for several seconds while the controller masks the outage from
//! the host. This module models the SSD half of that contract.

use bm_nvme::Status;
use std::fmt;

/// Number of firmware slots (NVMe allows up to 7; the P4510 has 3).
pub const SLOTS: usize = 3;

/// Firmware-commit action (CDW10 bits 5:3 of the commit command).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitAction {
    /// Store the downloaded image to a slot without activating.
    Store,
    /// Store to a slot and activate it on the next reset.
    StoreAndActivateOnReset,
    /// Activate the image in the slot immediately (device-initiated
    /// reset — the path hot-upgrade uses).
    ActivateNow,
}

impl CommitAction {
    /// Encodes to the CDW10 action field.
    pub fn code(self) -> u32 {
        match self {
            CommitAction::Store => 0,
            CommitAction::StoreAndActivateOnReset => 1,
            CommitAction::ActivateNow => 3,
        }
    }

    /// Decodes the CDW10 action field.
    pub fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(CommitAction::Store),
            1 => Some(CommitAction::StoreAndActivateOnReset),
            3 => Some(CommitAction::ActivateNow),
            _ => None,
        }
    }
}

/// A firmware version, carried in identify data and health reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareVersion(pub String);

impl fmt::Display for FirmwareVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The firmware bank of one SSD: slots, the download staging buffer, and
/// the running version.
///
/// # Examples
///
/// ```
/// use bm_ssd::firmware::{CommitAction, FirmwareBank};
///
/// let mut bank = FirmwareBank::new("VDV10131");
/// bank.download_chunk(0, b"new-firmware-image-bytes").unwrap();
/// bank.commit(2, CommitAction::ActivateNow).unwrap();
/// assert_eq!(bank.running().0, "new-firmware-im"); // version = image prefix
/// ```
#[derive(Debug, Clone)]
pub struct FirmwareBank {
    slots: [Option<Vec<u8>>; SLOTS],
    staging: Vec<u8>,
    running: FirmwareVersion,
    active_slot: usize,
    activations: u64,
}

impl FirmwareBank {
    /// Creates a bank running `initial_version` from slot 1.
    pub fn new(initial_version: &str) -> Self {
        let mut slots: [Option<Vec<u8>>; SLOTS] = [None, None, None];
        slots[0] = Some(initial_version.as_bytes().to_vec());
        FirmwareBank {
            slots,
            staging: Vec::new(),
            running: FirmwareVersion(initial_version.to_string()),
            active_slot: 1,
            activations: 0,
        }
    }

    /// Appends an image chunk at `offset` (must be contiguous — the
    /// simulation's controller always streams in order).
    ///
    /// # Errors
    ///
    /// Returns [`Status::InvalidField`] on a non-contiguous offset.
    pub fn download_chunk(&mut self, offset: u64, data: &[u8]) -> Result<(), Status> {
        if offset != self.staging.len() as u64 {
            return Err(Status::InvalidField);
        }
        self.staging.extend_from_slice(data);
        Ok(())
    }

    /// Commits the staged image to `slot` (1-based) with `action`.
    /// Returns whether the commit *activated* new firmware (and thus the
    /// device must freeze).
    ///
    /// # Errors
    ///
    /// Returns [`Status::InvalidFirmwareSlot`] for slot 0 or out-of-range
    /// slots and [`Status::InvalidFirmwareImage`] if nothing was staged
    /// when storing.
    pub fn commit(&mut self, slot: usize, action: CommitAction) -> Result<bool, Status> {
        if slot == 0 || slot > SLOTS {
            return Err(Status::InvalidFirmwareSlot);
        }
        let idx = slot - 1;
        match action {
            CommitAction::Store | CommitAction::StoreAndActivateOnReset => {
                if self.staging.is_empty() {
                    return Err(Status::InvalidFirmwareImage);
                }
                self.slots[idx] = Some(std::mem::take(&mut self.staging));
                Ok(false)
            }
            CommitAction::ActivateNow => {
                // Activate the staged image if present, else the slot's.
                if !self.staging.is_empty() {
                    self.slots[idx] = Some(std::mem::take(&mut self.staging));
                }
                let image = self.slots[idx]
                    .as_ref()
                    .ok_or(Status::InvalidFirmwareImage)?;
                let version: String = String::from_utf8_lossy(image).chars().take(15).collect();
                self.running = FirmwareVersion(version);
                self.active_slot = slot;
                self.activations += 1;
                Ok(true)
            }
        }
    }

    /// The running firmware version.
    pub fn running(&self) -> &FirmwareVersion {
        &self.running
    }

    /// The active slot (1-based).
    pub fn active_slot(&self) -> usize {
        self.active_slot
    }

    /// Number of activations performed (each one froze the device).
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Bytes currently staged for download.
    pub fn staged_len(&self) -> usize {
        self.staging.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_must_be_contiguous() {
        let mut bank = FirmwareBank::new("v1");
        bank.download_chunk(0, &[1, 2, 3]).unwrap();
        assert_eq!(bank.download_chunk(10, &[4]), Err(Status::InvalidField));
        bank.download_chunk(3, &[4, 5]).unwrap();
        assert_eq!(bank.staged_len(), 5);
    }

    #[test]
    fn store_then_activate_flow() {
        let mut bank = FirmwareBank::new("v1");
        bank.download_chunk(0, b"v2-image").unwrap();
        assert_eq!(bank.commit(2, CommitAction::Store), Ok(false));
        assert_eq!(bank.running().0, "v1");
        assert_eq!(bank.commit(2, CommitAction::ActivateNow), Ok(true));
        assert_eq!(bank.running().0, "v2-image");
        assert_eq!(bank.active_slot(), 2);
        assert_eq!(bank.activations(), 1);
    }

    #[test]
    fn activate_with_staged_image() {
        let mut bank = FirmwareBank::new("v1");
        bank.download_chunk(0, b"v3").unwrap();
        assert_eq!(bank.commit(3, CommitAction::ActivateNow), Ok(true));
        assert_eq!(bank.running().0, "v3");
    }

    #[test]
    fn bad_slots_and_empty_images_rejected() {
        let mut bank = FirmwareBank::new("v1");
        assert_eq!(
            bank.commit(0, CommitAction::Store),
            Err(Status::InvalidFirmwareSlot)
        );
        assert_eq!(
            bank.commit(4, CommitAction::ActivateNow),
            Err(Status::InvalidFirmwareSlot)
        );
        assert_eq!(
            bank.commit(2, CommitAction::Store),
            Err(Status::InvalidFirmwareImage)
        );
        // Slot 2 holds nothing to activate.
        assert_eq!(
            bank.commit(2, CommitAction::ActivateNow),
            Err(Status::InvalidFirmwareImage)
        );
    }

    #[test]
    fn commit_action_codes_round_trip() {
        for a in [
            CommitAction::Store,
            CommitAction::StoreAndActivateOnReset,
            CommitAction::ActivateNow,
        ] {
            assert_eq!(CommitAction::from_code(a.code()), Some(a));
        }
        assert_eq!(CommitAction::from_code(7), None);
    }
}
