//! # bm-ssd — NVMe SSD device model
//!
//! A behavioural and performance model of the Intel P4510-class NVMe
//! SSDs the paper's testbed attaches behind the BM-Store card:
//!
//! * [`calibration`] — named performance profiles with provenance; the
//!   default reproduces the P4510 2 TB envelope implied by the paper's
//!   own measurements (Table V / Fig. 8),
//! * [`perf`] — the queueing model: die-level read parallelism, a read
//!   bandwidth ceiling, and a write-cache drain pipe,
//! * [`store`] — logical block contents (full capture for integrity
//!   tests, deterministic patterns otherwise),
//! * [`firmware`] — firmware slots, image download/commit, and the
//!   activation freeze that hot-upgrade must mask,
//! * [`device`] — the controller: fetches SQEs from its rings through a
//!   [`DmaContext`](bm_pcie::DmaContext), walks PRPs, moves real bytes,
//!   and emits timed completions.
//!
//! # Examples
//!
//! ```
//! use bm_ssd::{Ssd, SsdConfig, SsdId};
//!
//! let ssd = Ssd::new(SsdConfig::p4510_2tb(SsdId(0)));
//! assert_eq!(ssd.capacity_bytes(), 2_000_000_000_000);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod calibration;
pub mod device;
pub mod firmware;
pub mod perf;
pub mod store;

pub use calibration::PerfProfile;
pub use device::{CompletedIo, DataMode, ServiceStats, Ssd, SsdConfig, SsdId};
pub use firmware::{CommitAction, FirmwareBank};
pub use perf::PerfModel;
pub use store::BlockStore;
