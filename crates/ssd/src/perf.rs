//! The SSD queueing model.
//!
//! Three resources, composed per command:
//!
//! * **Read path** — a command occupies one of `read_dies` flash units
//!   for a log-normal media service time *and* the shared read pipe for
//!   its transfer bytes; it completes when the later of the two is done.
//!   At low queue depth latency is the media time; at high depth the
//!   die pool (4 KiB random) or the pipe (128 KiB sequential) saturates,
//!   which reproduces both Fig. 8 regimes with one mechanism.
//! * **Write path** — admission into the DRAM write cache is fast
//!   (~5 µs) but the drain pipe runs at the sustained flash write rate;
//!   a command completes when its bytes have a slot in the drain, which
//!   is why 4-deep random writes already sit at 11.6 µs and 64-deep at
//!   ~180 µs, exactly as in Table V.
//! * **Flush** — waits for the drain pipe plus a fixed penalty.
//!
//! A `frozen_until` horizon models firmware activation: commands simply
//! cannot complete before it, producing the hot-upgrade I/O pause of
//! Fig. 15 without any special-casing in the harness.

use crate::calibration::PerfProfile;
use bm_sim::resource::{BandwidthLink, MultiServer};
use bm_sim::{SimDuration, SimRng, SimTime};

/// Stateful performance model for one SSD.
///
/// # Examples
///
/// ```
/// use bm_ssd::{PerfModel, PerfProfile};
/// use bm_sim::{SimRng, SimTime};
///
/// let mut perf = PerfModel::new(PerfProfile::p4510_2tb(), SimRng::seed_from(1));
/// let done = perf.read_completion(SimTime::ZERO, 4096, false);
/// // A lone 4 KiB read takes roughly the media time.
/// let us = (done - SimTime::ZERO).as_micros_f64();
/// assert!(us > 40.0 && us < 110.0);
/// ```
#[derive(Debug, Clone)]
pub struct PerfModel {
    profile: PerfProfile,
    dies: MultiServer,
    read_pipe: BandwidthLink,
    write_pipe: BandwidthLink,
    /// Present for remote (NVMe-oF) targets: the NIC link.
    net_pipe: Option<BandwidthLink>,
    rng: SimRng,
    frozen_until: SimTime,
    reads: u64,
    writes: u64,
}

impl PerfModel {
    /// Creates a model from a profile and a dedicated RNG stream.
    pub fn new(profile: PerfProfile, rng: SimRng) -> Self {
        PerfModel {
            dies: MultiServer::new(profile.read_dies),
            read_pipe: BandwidthLink::new(profile.read_bw_bytes_per_sec),
            write_pipe: BandwidthLink::new(profile.write_bw_bytes_per_sec),
            net_pipe: profile.net_bw_bytes_per_sec.map(BandwidthLink::new),
            profile,
            rng,
            frozen_until: SimTime::ZERO,
            reads: 0,
            writes: 0,
        }
    }

    /// Applies the remote-target network cost, if any: a fabric round
    /// trip plus the payload's slot on the NIC link.
    fn network(&mut self, now: SimTime, done: SimTime, bytes: u64) -> SimTime {
        match &mut self.net_pipe {
            Some(link) => {
                let wire = link.transfer(now, bytes.max(64));
                done.max(wire) + self.profile.net_rtt
            }
            None => done,
        }
    }

    /// The profile in use.
    pub fn profile(&self) -> &PerfProfile {
        &self.profile
    }

    /// Completion time for a read of `bytes` arriving at `now`.
    /// `sequential` selects the streaming media time (only differs from
    /// random access on mechanical profiles).
    pub fn read_completion(&mut self, now: SimTime, bytes: u64, sequential: bool) -> SimTime {
        self.reads += 1;
        let now = self.thaw(now);
        let median = if sequential {
            self.profile.seq_read_media_median
        } else {
            self.profile.read_media_median
        };
        let service = self.rng.lognormal(median, self.profile.read_sigma);
        let die_done = self.dies.occupy(now, service);
        let xfer_done = self.read_pipe.transfer(now, bytes);
        let done = die_done.max(xfer_done);
        self.network(now, done, bytes)
    }

    /// Completion time for a write of `bytes` arriving at `now`.
    pub fn write_completion(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.writes += 1;
        let now = self.thaw(now);
        let admit = self
            .rng
            .jitter(self.profile.write_admit, self.profile.write_jitter);
        let drain_done = self.write_pipe.transfer(now, bytes);
        let done = (now + admit).max(drain_done);
        self.network(now, done, bytes)
    }

    /// Completion time for a flush arriving at `now` (drain residue).
    pub fn flush_completion(&mut self, now: SimTime) -> SimTime {
        let now = self.thaw(now);
        self.write_pipe.free_at().max(now) + self.profile.flush_extra
    }

    /// Freezes the device until `until` (firmware activation): no command
    /// arriving before then can start service earlier.
    pub fn freeze_until(&mut self, until: SimTime) {
        self.frozen_until = self.frozen_until.max(until);
    }

    /// When the current freeze (if any) ends.
    pub fn frozen_until(&self) -> SimTime {
        self.frozen_until
    }

    /// Samples a firmware activation duration from the profile's bounds.
    pub fn sample_fw_activation(&mut self) -> SimDuration {
        let lo = self.profile.fw_activate_min.as_nanos();
        let hi = self.profile.fw_activate_max.as_nanos();
        SimDuration::from_nanos(self.rng.range(lo, hi.max(lo + 1)))
    }

    /// Reads served so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes served so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    fn thaw(&self, now: SimTime) -> SimTime {
        now.max(self.frozen_until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PerfModel {
        PerfModel::new(PerfProfile::p4510_2tb(), SimRng::seed_from(42))
    }

    /// Drives the model closed-loop at a fixed queue depth and returns
    /// (throughput ops/s, mean latency µs).
    fn closed_loop(
        perf: &mut PerfModel,
        qd: usize,
        bytes: u64,
        write: bool,
        ops: usize,
    ) -> (f64, f64) {
        // Each "slot" resubmits immediately on completion.
        let mut slots: Vec<SimTime> = vec![SimTime::ZERO; qd];
        let mut total_lat = 0.0;
        let mut last = SimTime::ZERO;
        for i in 0..ops {
            let slot = i % qd;
            let submit = slots[slot];
            let done = if write {
                perf.write_completion(submit, bytes)
            } else {
                perf.read_completion(submit, bytes, false)
            };
            total_lat += (done - submit).as_micros_f64();
            slots[slot] = done;
            last = last.max(done);
        }
        let thr = ops as f64 / last.as_secs_f64();
        (thr, total_lat / ops as f64)
    }

    #[test]
    fn qd1_read_latency_is_media_time() {
        let mut perf = model();
        let (_, lat) = closed_loop(&mut perf, 1, 4096, false, 2000);
        assert!((60.0..80.0).contains(&lat), "latency {lat}");
    }

    #[test]
    fn deep_random_read_hits_iops_ceiling() {
        let mut perf = model();
        let (thr, lat) = closed_loop(&mut perf, 512, 4096, false, 200_000);
        assert!((600e3..700e3).contains(&thr), "iops {thr}");
        // Little's law: 512 outstanding at ~650K → ~790 µs.
        assert!((700.0..900.0).contains(&lat), "latency {lat}");
    }

    #[test]
    fn deep_sequential_read_hits_bandwidth_ceiling() {
        let mut perf = model();
        let (thr, lat) = closed_loop(&mut perf, 1024, 128 * 1024, false, 60_000);
        let bw = thr * 128.0 * 1024.0;
        assert!((3.0e9..3.4e9).contains(&bw), "bw {bw}");
        // Paper: 40 579 µs at this depth.
        assert!((36_000.0..46_000.0).contains(&lat), "latency {lat}");
    }

    #[test]
    fn shallow_write_latency_is_drain_bound_at_qd4() {
        let mut perf = model();
        let (_, lat) = closed_loop(&mut perf, 4, 4096, true, 50_000);
        // Paper: 11.6 µs native (incl. ~4 µs host stack we don't model here).
        assert!((7.0..14.0).contains(&lat), "latency {lat}");
    }

    #[test]
    fn deep_write_latency_matches_drain() {
        let mut perf = model();
        let (thr, lat) = closed_loop(&mut perf, 64, 4096, true, 100_000);
        assert!((330e3..370e3).contains(&thr), "iops {thr}");
        assert!((160.0..200.0).contains(&lat), "latency {lat}");
    }

    #[test]
    fn sequential_write_bandwidth() {
        let mut perf = model();
        let (thr, _) = closed_loop(&mut perf, 1024, 128 * 1024, true, 30_000);
        let bw = thr * 128.0 * 1024.0;
        assert!((1.3e9..1.5e9).contains(&bw), "bw {bw}");
    }

    #[test]
    fn freeze_delays_commands() {
        let mut perf = model();
        perf.freeze_until(SimTime::from_nanos(5_000_000_000));
        let done = perf.read_completion(SimTime::ZERO, 4096, false);
        assert!(done >= SimTime::from_nanos(5_000_000_000));
        assert_eq!(perf.frozen_until(), SimTime::from_nanos(5_000_000_000));
    }

    #[test]
    fn fw_activation_sample_in_bounds() {
        let mut perf = model();
        for _ in 0..100 {
            let d = perf.sample_fw_activation();
            assert!(d >= perf.profile().fw_activate_min);
            assert!(d <= perf.profile().fw_activate_max);
        }
    }

    #[test]
    fn flush_waits_for_drain() {
        let mut perf = model();
        let w = perf.write_completion(SimTime::ZERO, 10 << 20); // 10 MB backlog
        let f = perf.flush_completion(SimTime::ZERO);
        assert!(f >= w);
        assert_eq!(perf.writes(), 1);
    }
}
