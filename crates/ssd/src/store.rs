//! Logical block contents.
//!
//! Integrity tests need the bytes a host wrote to come back on read,
//! through every hop of the DMA path. Performance runs push hundreds of
//! thousands of I/Os and must not accumulate gigabytes, so the store has
//! two modes:
//!
//! * **capture** — written blocks are retained verbatim,
//! * **pattern** — writes are discarded; reads of any block return a
//!   deterministic pattern derived from `(ssd, lba)`, so data still
//!   flows (checksums remain reproducible) at O(1) memory.

use bm_nvme::types::Lba;
use bytes::Bytes;
use std::collections::BTreeMap;

/// Content store for one SSD's physical LBA space.
///
/// # Examples
///
/// ```
/// use bm_ssd::BlockStore;
/// use bm_nvme::Lba;
///
/// let mut store = BlockStore::new(0, 4096, true);
/// store.write_block(Lba(7), &vec![0xAB; 4096]);
/// assert_eq!(store.read_block(Lba(7))[0], 0xAB);
/// ```
#[derive(Debug)]
pub struct BlockStore {
    ssd_seed: u64,
    block_size: u64,
    capture: bool,
    /// Captured blocks are refcounted so reads hand out views, not
    /// copies (readbacks on the hot path would otherwise clone 4 KiB
    /// per block).
    blocks: BTreeMap<u64, Bytes>,
}

impl BlockStore {
    /// Creates a store. `capture` selects retain-vs-pattern mode.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two ≥ 512.
    pub fn new(ssd_seed: u64, block_size: u64, capture: bool) -> Self {
        assert!(
            block_size.is_power_of_two() && block_size >= 512,
            "block size must be a power of two >= 512"
        );
        BlockStore {
            ssd_seed,
            block_size,
            capture,
            blocks: BTreeMap::new(),
        }
    }

    /// The logical block size.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Whether written data is retained.
    pub fn captures(&self) -> bool {
        self.capture
    }

    /// Writes one block. In pattern mode the data is accounted but not
    /// retained.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block.
    pub fn write_block(&mut self, lba: Lba, data: &[u8]) {
        assert_eq!(data.len() as u64, self.block_size, "partial block write");
        if self.capture {
            self.blocks.insert(lba.raw(), Bytes::copy_from_slice(data));
        }
    }

    /// Reads one block: captured bytes if present (a zero-copy view),
    /// else the deterministic pattern for this `(ssd, lba)`.
    pub fn read_block(&self, lba: Lba) -> Bytes {
        if let Some(data) = self.blocks.get(&lba.raw()) {
            return data.clone();
        }
        self.pattern_block(lba)
    }

    /// The pattern an unwritten block reads as.
    pub fn pattern_block(&self, lba: Lba) -> Bytes {
        let mut out = vec![0u8; self.block_size as usize];
        let mut state = self
            .ssd_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(lba.raw())
            | 1;
        for chunk in out.chunks_mut(8) {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Bytes::from(out)
    }

    /// Number of captured blocks resident.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_mode_round_trips() {
        let mut s = BlockStore::new(3, 4096, true);
        let data: Vec<u8> = (0..4096).map(|i| (i % 256) as u8).collect();
        s.write_block(Lba(42), &data);
        assert_eq!(s.read_block(Lba(42)), data);
        assert_eq!(s.resident_blocks(), 1);
    }

    #[test]
    fn pattern_mode_discards_but_stays_deterministic() {
        let mut s = BlockStore::new(3, 4096, false);
        s.write_block(Lba(42), &vec![1u8; 4096]);
        assert_eq!(s.resident_blocks(), 0);
        let a = s.read_block(Lba(42));
        let b = s.read_block(Lba(42));
        assert_eq!(a, b);
        assert_ne!(a, vec![1u8; 4096]);
    }

    #[test]
    fn patterns_differ_by_lba_and_ssd() {
        let s0 = BlockStore::new(0, 4096, false);
        let s1 = BlockStore::new(1, 4096, false);
        assert_ne!(s0.pattern_block(Lba(5)), s0.pattern_block(Lba(6)));
        assert_ne!(s0.pattern_block(Lba(5)), s1.pattern_block(Lba(5)));
    }

    #[test]
    fn unwritten_blocks_read_pattern_in_capture_mode() {
        let s = BlockStore::new(9, 4096, true);
        assert_eq!(s.read_block(Lba(1)), s.pattern_block(Lba(1)));
    }

    #[test]
    #[should_panic(expected = "partial block")]
    fn partial_write_rejected() {
        let mut s = BlockStore::new(0, 4096, true);
        s.write_block(Lba(0), &[1, 2, 3]);
    }
}
