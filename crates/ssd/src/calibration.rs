//! Performance profiles with provenance.
//!
//! Every number here is derived from the paper's own measurements so
//! that the *simulated native disk* reproduces Table V / Fig. 8, which
//! in turn anchors every comparison in the evaluation:
//!
//! * `rand-r-1` (4 jobs, QD1): 77.2 µs ⇒ media read ≈ 68 µs once the
//!   host stack (~9 µs) is subtracted.
//! * `rand-r-128` (512 outstanding): 786.7 µs average latency ⇒ by
//!   Little's law the device sustains ≈ 650 K IOPS ⇒ with 68 µs service
//!   that is ≈ 44 concurrently busy flash units.
//! * `seq-r-256` (1024 × 128 KiB outstanding): 40 579 µs ⇒ read
//!   bandwidth ceiling ≈ 3.23 GB/s (matches Intel's 3.2 GB/s spec).
//! * `rand-w-1`: 11.6 µs ⇒ the write cache admits at ~5 µs and the
//!   drain pipe (below) already binds at 4 outstanding writes.
//! * `rand-w-16` (64 outstanding): 179.8 µs ⇒ drain ≈ 356 K × 4 KiB ≈
//!   1.43 GB/s; `seq-w-256`: 92 502 µs ⇒ 1.42 GB/s. One drain rate
//!   explains both, so the model uses a single write pipe.

use bm_sim::SimDuration;

/// A named SSD performance envelope.
///
/// # Examples
///
/// ```
/// use bm_ssd::PerfProfile;
/// let p = PerfProfile::p4510_2tb();
/// assert!((p.read_bw_bytes_per_sec - 3.23e9).abs() < 1e7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerfProfile {
    /// Human-readable profile name.
    pub name: &'static str,
    /// Median media read service time per command (random access).
    pub read_media_median: SimDuration,
    /// Median media service for *sequential* reads (next LBA follows
    /// the previous command). Equal to `read_media_median` for SSDs;
    /// far smaller for HDDs, whose head stays on track.
    pub seq_read_media_median: SimDuration,
    /// Log-normal sigma for read service jitter.
    pub read_sigma: f64,
    /// Number of concurrently busy flash units (dies) for reads.
    pub read_dies: usize,
    /// Read bandwidth ceiling in bytes/second.
    pub read_bw_bytes_per_sec: f64,
    /// Write-cache admission latency (DRAM landing).
    pub write_admit: SimDuration,
    /// Jitter fraction for write admission.
    pub write_jitter: f64,
    /// Sustained write drain in bytes/second.
    pub write_bw_bytes_per_sec: f64,
    /// Extra latency of a flush (drain write cache residue).
    pub flush_extra: SimDuration,
    /// Firmware activation time bounds (min, max) — the paper reports
    /// 6–9 s total hot-upgrade with ~100 ms of BM-Store processing, so
    /// the SSD-side activation dominates (Table IX).
    pub fw_activate_min: SimDuration,
    /// Upper bound of firmware activation time.
    pub fw_activate_max: SimDuration,
    /// Network round trip to the device, when it is a *remote* NVMe-oF
    /// target rather than a local drive (the paper's §VI-D future work:
    /// "we plan to add remote storage support"). Zero for local devices.
    pub net_rtt: SimDuration,
    /// Network link bandwidth toward the remote target (`None` = local).
    pub net_bw_bytes_per_sec: Option<f64>,
}

impl PerfProfile {
    /// The Intel P4510 2 TB profile calibrated to the paper (see module
    /// docs for the derivation of each constant).
    pub fn p4510_2tb() -> Self {
        PerfProfile {
            name: "intel-p4510-2tb",
            read_media_median: SimDuration::from_us(68),
            seq_read_media_median: SimDuration::from_us(68),
            read_sigma: 0.06,
            read_dies: 44,
            read_bw_bytes_per_sec: 3.23e9,
            write_admit: SimDuration::from_us(2),
            write_jitter: 0.15,
            write_bw_bytes_per_sec: 1.43e9,
            flush_extra: SimDuration::from_us(400),
            fw_activate_min: SimDuration::from_secs_f64(5.5),
            fw_activate_max: SimDuration::from_secs_f64(8.5),
            net_rtt: SimDuration::ZERO,
            net_bw_bytes_per_sec: None,
        }
    }

    /// A 7200-rpm SATA HDD profile, supporting the paper's compatibility
    /// discussion (§VI-A): one actuator (no internal parallelism), seek-
    /// dominated service, ~200 MB/s streaming.
    pub fn sata_hdd_7200() -> Self {
        PerfProfile {
            name: "sata-hdd-7200rpm",
            read_media_median: SimDuration::from_us(8_000),
            seq_read_media_median: SimDuration::from_us(200),
            read_sigma: 0.35,
            read_dies: 1,
            read_bw_bytes_per_sec: 0.2e9,
            write_admit: SimDuration::from_us(50), // write cache on DRAM
            write_jitter: 0.2,
            write_bw_bytes_per_sec: 0.18e9,
            flush_extra: SimDuration::from_ms(8),
            fw_activate_min: SimDuration::from_secs(10),
            fw_activate_max: SimDuration::from_secs(15),
            net_rtt: SimDuration::ZERO,
            net_bw_bytes_per_sec: None,
        }
    }

    /// A faster Gen4-class profile (future-work headroom experiments).
    pub fn gen4_fast() -> Self {
        PerfProfile {
            name: "gen4-fast",
            read_media_median: SimDuration::from_us(55),
            seq_read_media_median: SimDuration::from_us(55),
            read_sigma: 0.06,
            read_dies: 96,
            read_bw_bytes_per_sec: 6.8e9,
            write_admit: SimDuration::from_us(4),
            write_jitter: 0.15,
            write_bw_bytes_per_sec: 4.0e9,
            flush_extra: SimDuration::from_us(200),
            fw_activate_min: SimDuration::from_secs_f64(4.0),
            fw_activate_max: SimDuration::from_secs_f64(6.0),
            net_rtt: SimDuration::ZERO,
            net_bw_bytes_per_sec: None,
        }
    }

    /// A remote P4510 reached over NVMe-oF on 25 GbE (§VI-D future
    /// work): the local flash envelope plus a data-center RTT and the
    /// NIC's usable bandwidth.
    pub fn remote_nvmeof_25g() -> Self {
        PerfProfile {
            name: "remote-p4510-nvmeof-25g",
            net_rtt: SimDuration::from_us(30),
            net_bw_bytes_per_sec: Some(2.9e9),
            ..Self::p4510_2tb()
        }
    }

    /// Peak 4 KiB random-read IOPS this profile can sustain
    /// (`dies / service`, capped by read bandwidth).
    pub fn peak_read_iops_4k(&self) -> f64 {
        let die_limit = self.read_dies as f64 / self.read_media_median.as_secs_f64();
        let bw_limit = self.read_bw_bytes_per_sec / 4096.0;
        die_limit.min(bw_limit)
    }

    /// Peak 4 KiB random-write IOPS (drain-limited).
    pub fn peak_write_iops_4k(&self) -> f64 {
        self.write_bw_bytes_per_sec / 4096.0
    }
}

impl Default for PerfProfile {
    fn default() -> Self {
        Self::p4510_2tb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4510_peaks_match_paper_implications() {
        let p = PerfProfile::p4510_2tb();
        // ~650K read IOPS (Little's law on rand-r-128).
        let iops = p.peak_read_iops_4k();
        assert!((600e3..700e3).contains(&iops), "read iops {iops}");
        // ~350K drain-limited write IOPS (rand-w-16).
        let wiops = p.peak_write_iops_4k();
        assert!((330e3..370e3).contains(&wiops), "write iops {wiops}");
    }

    #[test]
    fn hdd_is_orders_of_magnitude_slower() {
        let ssd = PerfProfile::p4510_2tb();
        let hdd = PerfProfile::sata_hdd_7200();
        assert!(ssd.peak_read_iops_4k() / hdd.peak_read_iops_4k() > 1000.0);
    }

    #[test]
    fn default_is_p4510() {
        assert_eq!(PerfProfile::default().name, "intel-p4510-2tb");
    }
}
