//! CLI for `bm-lint`.
//!
//! ```text
//! bm-lint [check] [--root DIR] [--baseline PATH] [--format text|json]
//!                                                  ratchet check (CI gate)
//! bm-lint list [--root DIR] [--format text|json]   print every finding
//! bm-lint tighten [--root DIR] [--baseline PATH]   rewrite the baseline floor
//! bm-lint explain <rule>                           why the rule exists
//! bm-lint self-test                                run the embedded fixture suite
//! ```
//!
//! `--format json` emits a stable machine-readable report (see
//! `json_report`): schema version, every finding with rule id, path,
//! line, crate, message, and pragma status (`active`/`suppressed`),
//! per-`(rule, crate)` counts, and — for `check` — the ratchet verdict.
//! Exit codes are identical to text mode: 0 ok, 1 ratchet regression,
//! 2 usage or I/O error.

use bm_lint::{
    baseline::Baseline, count_violations, find_root, ratchet, scan_workspace, selftest,
    RatchetReport, Rule, ScanResult, Violation,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    rule: Option<String>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: "check".to_string(),
        root: None,
        baseline: None,
        rule: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    let mut saw_command = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?))
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                Some(other) => return Err(format!("unknown format `{other}` (text|json)")),
                None => return Err("--format needs a value (text|json)".to_string()),
            },
            "--explain" => {
                args.command = "explain".to_string();
                saw_command = true;
                args.rule = Some(it.next().ok_or("--explain needs a rule id")?);
            }
            "check" | "list" | "tighten" | "explain" | "self-test" if !saw_command => {
                args.command = a;
                saw_command = true;
            }
            other if saw_command && args.command == "explain" && args.rule.is_none() => {
                args.rule = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_finding(v: &Violation) -> String {
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"crate\":\"{}\",\"message\":\"{}\",\"pragma\":\"{}\"}}",
        v.rule.id(),
        json_escape(&v.path),
        v.line,
        json_escape(&v.crate_id),
        json_escape(&v.detail),
        if v.suppressed { "suppressed" } else { "active" }
    )
}

/// The stable JSON schema: bump `schema_version` on shape changes.
fn json_report(scan: &ScanResult, report: Option<&RatchetReport>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", scan.files));
    out.push_str("  \"findings\": [\n");
    let all: Vec<String> = scan
        .violations
        .iter()
        .chain(scan.suppressed.iter())
        .map(|v| format!("    {}", json_finding(v)))
        .collect();
    out.push_str(&all.join(",\n"));
    if !all.is_empty() {
        out.push('\n');
    }
    out.push_str("  ],\n");
    let counts = count_violations(&scan.violations);
    out.push_str("  \"counts\": [\n");
    let rows: Vec<String> = counts
        .iter()
        .map(|((rule, crate_id), n)| {
            format!(
                "    {{\"rule\":\"{}\",\"crate\":\"{}\",\"count\":{}}}",
                json_escape(rule),
                json_escape(crate_id),
                n
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]");
    if let Some(report) = report {
        out.push_str(",\n  \"ratchet\": {\n");
        out.push_str(&format!("    \"ok\": {},\n", report.ok()));
        for (key, deltas) in [
            ("regressions", &report.regressions),
            ("improvements", &report.improvements),
        ] {
            out.push_str(&format!("    \"{key}\": ["));
            let rows: Vec<String> = deltas
                .iter()
                .map(|d| {
                    format!(
                        "{{\"rule\":\"{}\",\"crate\":\"{}\",\"current\":{},\"allowed\":{}}}",
                        json_escape(&d.rule),
                        json_escape(&d.crate_id),
                        d.current,
                        d.allowed
                    )
                })
                .collect();
            out.push_str(&rows.join(","));
            out.push(']');
            if key == "regressions" {
                out.push_str(",\n");
            } else {
                out.push('\n');
            }
        }
        out.push_str("  }");
    }
    out.push_str("\n}\n");
    out
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bm-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    if args.command == "explain" {
        let id = args.rule.as_deref().ok_or("explain needs a rule id")?;
        let Some(rule) = Rule::from_id(id) else {
            let ids: Vec<_> = Rule::ALL.iter().map(|r| r.id()).collect();
            return Err(format!("unknown rule `{id}`; rules: {}", ids.join(", ")));
        };
        println!("{}", rule.explain());
        return Ok(ExitCode::SUCCESS);
    }

    if args.command == "self-test" {
        return match selftest::run() {
            Ok(summary) => {
                println!("bm-lint: {summary}");
                Ok(ExitCode::SUCCESS)
            }
            Err(report) => {
                eprintln!("bm-lint: {report}");
                Ok(ExitCode::FAILURE)
            }
        };
    }

    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match args.root {
        Some(r) => r,
        None => find_root(&cwd).ok_or("no workspace root found (use --root)")?,
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.toml"));

    let scan = scan_workspace(&root).map_err(|e| format!("scan failed: {e}"))?;
    let counts = count_violations(&scan.violations);

    match args.command.as_str() {
        "list" => {
            if args.json {
                print!("{}", json_report(&scan, None));
                return Ok(ExitCode::SUCCESS);
            }
            for v in &scan.violations {
                println!("{v}");
            }
            let total = scan.violations.len();
            println!(
                "bm-lint: {} finding{} across {} files ({} suppressed by pragma)",
                total,
                if total == 1 { "" } else { "s" },
                scan.files,
                scan.suppressed.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "tighten" => {
            let text = Baseline::serialize(&counts);
            std::fs::write(&baseline_path, &text)
                .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
            println!(
                "bm-lint: baseline written to {} ({} findings)",
                baseline_path.display(),
                scan.violations.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
                format!(
                    "cannot read baseline {} ({e}); run `bm-lint tighten` to create it",
                    baseline_path.display()
                )
            })?;
            let base =
                Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?;
            let report = ratchet(&counts, &base);
            if args.json {
                print!("{}", json_report(&scan, Some(&report)));
                return Ok(if report.ok() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                });
            }
            if !report.ok() {
                eprintln!("bm-lint: ratchet REGRESSION — new violations over the baseline:");
                for d in &report.regressions {
                    eprintln!(
                        "  [{}] crate `{}`: {} findings (baseline allows {})",
                        d.rule, d.crate_id, d.current, d.allowed
                    );
                }
                eprintln!();
                for v in &scan.violations {
                    let regressed = report
                        .regressions
                        .iter()
                        .any(|d| d.rule == v.rule.id() && d.crate_id == v.crate_id);
                    if regressed {
                        eprintln!("  {v}");
                    }
                }
                eprintln!();
                eprintln!(
                    "fix the findings, or suppress a single site with a justified pragma:\n\
                     `// bm-lint: allow(<rule>): <why this cannot break determinism>`\n\
                     (`bm-lint explain <rule>` describes the failure mode)"
                );
                return Ok(ExitCode::FAILURE);
            }
            if !report.improvements.is_empty() {
                println!("bm-lint: debt paid down — the ratchet can be tightened:");
                for d in &report.improvements {
                    println!(
                        "  [{}] crate `{}`: now {} (baseline {})",
                        d.rule, d.crate_id, d.current, d.allowed
                    );
                }
                println!(
                    "run `cargo run --release -p bm-lint -- tighten` and commit the new floor"
                );
            }
            println!(
                "bm-lint: OK ({} findings across {} files, all within baseline)",
                scan.violations.len(),
                scan.files
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
