//! CLI for `bm-lint`.
//!
//! ```text
//! bm-lint [check] [--root DIR] [--baseline PATH]   ratchet check (CI gate)
//! bm-lint list [--root DIR]                        print every finding
//! bm-lint tighten [--root DIR] [--baseline PATH]   rewrite the baseline floor
//! bm-lint explain <rule>                           why the rule exists
//! ```
//!
//! Exit codes: 0 ok, 1 ratchet regression, 2 usage or I/O error.

use bm_lint::{baseline::Baseline, count_violations, find_root, ratchet, scan_workspace, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    rule: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: "check".to_string(),
        root: None,
        baseline: None,
        rule: None,
    };
    let mut it = std::env::args().skip(1);
    let mut saw_command = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?))
            }
            "--explain" => {
                args.command = "explain".to_string();
                saw_command = true;
                args.rule = Some(it.next().ok_or("--explain needs a rule id")?);
            }
            "check" | "list" | "tighten" | "explain" if !saw_command => {
                args.command = a;
                saw_command = true;
            }
            other if saw_command && args.command == "explain" && args.rule.is_none() => {
                args.rule = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bm-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    if args.command == "explain" {
        let id = args.rule.as_deref().ok_or("explain needs a rule id")?;
        let Some(rule) = Rule::from_id(id) else {
            let ids: Vec<_> = Rule::ALL.iter().map(|r| r.id()).collect();
            return Err(format!("unknown rule `{id}`; rules: {}", ids.join(", ")));
        };
        println!("{}", rule.explain());
        return Ok(ExitCode::SUCCESS);
    }

    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match args.root {
        Some(r) => r,
        None => find_root(&cwd).ok_or("no workspace root found (use --root)")?,
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.toml"));

    let scan = scan_workspace(&root).map_err(|e| format!("scan failed: {e}"))?;
    let counts = count_violations(&scan.violations);

    match args.command.as_str() {
        "list" => {
            for v in &scan.violations {
                println!("{v}");
            }
            let total = scan.violations.len();
            println!(
                "bm-lint: {} finding{} across {} files",
                total,
                if total == 1 { "" } else { "s" },
                scan.files
            );
            Ok(ExitCode::SUCCESS)
        }
        "tighten" => {
            let text = Baseline::serialize(&counts);
            std::fs::write(&baseline_path, &text)
                .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
            println!(
                "bm-lint: baseline written to {} ({} findings)",
                baseline_path.display(),
                scan.violations.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
                format!(
                    "cannot read baseline {} ({e}); run `bm-lint tighten` to create it",
                    baseline_path.display()
                )
            })?;
            let base =
                Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?;
            let report = ratchet(&counts, &base);
            if !report.ok() {
                eprintln!("bm-lint: ratchet REGRESSION — new violations over the baseline:");
                for d in &report.regressions {
                    eprintln!(
                        "  [{}] crate `{}`: {} findings (baseline allows {})",
                        d.rule, d.crate_id, d.current, d.allowed
                    );
                }
                eprintln!();
                for v in &scan.violations {
                    let regressed = report
                        .regressions
                        .iter()
                        .any(|d| d.rule == v.rule.id() && d.crate_id == v.crate_id);
                    if regressed {
                        eprintln!("  {v}");
                    }
                }
                eprintln!();
                eprintln!(
                    "fix the findings, or suppress a single site with a justified pragma:\n\
                     `// bm-lint: allow(<rule>): <why this cannot break determinism>`\n\
                     (`bm-lint explain <rule>` describes the failure mode)"
                );
                return Ok(ExitCode::FAILURE);
            }
            if !report.improvements.is_empty() {
                println!("bm-lint: debt paid down — the ratchet can be tightened:");
                for d in &report.improvements {
                    println!(
                        "  [{}] crate `{}`: now {} (baseline {})",
                        d.rule, d.crate_id, d.current, d.allowed
                    );
                }
                println!(
                    "run `cargo run --release -p bm-lint -- tighten` and commit the new floor"
                );
            }
            println!(
                "bm-lint: OK ({} findings across {} files, all within baseline)",
                scan.violations.len(),
                scan.files
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
