//! The rule set: what `bm-lint` enforces and where.
//!
//! Every rule exists to protect one property of the discrete-event
//! simulation: **same seed, same bytes**. See [`Rule::explain`] for the
//! failure mode each rule guards against, in DES terms.

use crate::mask::{mask_source, MaskedLine};

/// Crates whose code is on the simulated data/control path. Iteration
/// order, panics, and hidden nondeterminism in these crates change
/// simulated *behaviour*, not just logging.
pub const SIM_CRITICAL: &[&str] = &["sim", "core", "ssd", "pcie", "nvme", "testbed", "chaos"];

/// The rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no wall-clock reads outside `compat`/`bench`.
    WallClock,
    /// R2: no `HashMap`/`HashSet` in sim-critical crates.
    IterOrder,
    /// R3: no unseeded randomness anywhere outside `compat`.
    UnseededRng,
    /// R4: no `unwrap`/`expect`/`panic!` in sim-critical library code.
    PanicPath,
    /// R5: no `println!`-family output from library crates.
    Println,
    /// R6: no wildcard `_ =>` arms in matches over load-bearing enums.
    WildcardArm,
    /// A malformed or justification-less `bm-lint:` pragma.
    BadPragma,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 7] = [
        Rule::WallClock,
        Rule::IterOrder,
        Rule::UnseededRng,
        Rule::PanicPath,
        Rule::Println,
        Rule::WildcardArm,
        Rule::BadPragma,
    ];

    /// Stable string id (used in pragmas, baselines, and reports).
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::IterOrder => "iter-order",
            Rule::UnseededRng => "unseeded-rng",
            Rule::PanicPath => "panic-path",
            Rule::Println => "println",
            Rule::WildcardArm => "wildcard-arm",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// Parses a rule id.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// Why the rule exists, in discrete-event-simulation terms.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "R1 wall-clock: `Instant::now()`/`SystemTime` read the host's clock. \
                 Any value derived from wall time differs between runs, so a branch or \
                 latency computed from it diverges from the seed-replay: two runs with \
                 the same seed produce different event orders and different figures. \
                 All time must come from `bm_sim::SimTime` handed down by the scheduler. \
                 Exempt: `crates/compat` (vendored benchmarking shims) and `crates/bench` \
                 (host-side harness reporting)."
            }
            Rule::IterOrder => {
                "R2 iter-order: `HashMap`/`HashSet` iteration order depends on \
                 `RandomState`'s per-process seed. If any sim-critical crate iterates \
                 one — even to drain completions or roll up stats — event ordering \
                 (or float summation order) changes run-to-run and seed replay breaks \
                 byte-identically-reproduced figures (fig08/09/12). Use `BTreeMap`, \
                 `BTreeSet`, an index-ordered `Vec`, or suppress with \
                 `// bm-lint: allow(iter-order): <why order cannot leak>`."
            }
            Rule::UnseededRng => {
                "R3 unseeded-rng: `thread_rng()`/`rand::random()`/`OsRng` draw entropy \
                 from the OS. A single unseeded draw anywhere in the pipeline makes the \
                 run unreproducible — fault plans, workload generators, and perturbation \
                 models must derive from the run's root seed (`bm_sim::rng`)."
            }
            Rule::PanicPath => {
                "R4 panic-path: `unwrap`/`expect`/`panic!` in sim-critical library code \
                 turns a recoverable modelling bug into an abort that takes the whole \
                 testbed (and every tenant's pending I/O) with it. The fault-injection \
                 suite deliberately drives error paths; library code must return typed \
                 errors or document the invariant with an assert at the boundary. \
                 Existing debt is ratcheted by `lint-baseline.toml`: it may shrink, \
                 never grow."
            }
            Rule::Println => {
                "R5 println: direct stdout/stderr writes from library crates bypass the \
                 telemetry layer, interleave nondeterministically with harness output, \
                 and corrupt the byte-compared experiment tables. Record a telemetry \
                 event or return the string to the caller; binaries, tests, and \
                 examples may print."
            }
            Rule::WildcardArm => {
                "R6 wildcard-arm: `Effect`, `FaultKind`, and `BmsCommand` are the \
                 load-bearing enums of the scheme pipeline, the fault plan, and the \
                 management plane. A `_ =>` arm in a match over them swallows every \
                 future variant silently: a new fault kind injects nothing, a new \
                 effect never executes, and the run *passes* while simulating the \
                 wrong thing. Enumerate the variants so the compiler flags new ones."
            }
            Rule::BadPragma => {
                "bad-pragma: a `// bm-lint: allow(<rule>)` suppression must carry a \
                 justification (`// bm-lint: allow(iter-order): keys are replayed in \
                 sorted order below`). A bare pragma, an unknown rule id, or malformed \
                 syntax does not suppress anything and is itself a finding — silent \
                 exemptions are how determinism discipline rots."
            }
        }
    }
}

/// How a file participates in the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of the crate's library target.
    Lib,
    /// A binary target (`src/bin`, `src/main.rs`).
    Bin,
    /// An integration test (`tests/`).
    Test,
    /// An example (`examples/`).
    Example,
    /// A benchmark (`benches/`).
    Bench,
}

/// Where a file lives, for rule applicability.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Crate directory name (`sim`, `core`, …, `compat` for vendored
    /// subsets, `bmstore` for the root package).
    pub crate_id: String,
    /// Target kind.
    pub kind: FileKind,
}

impl FileCtx {
    /// Convenience constructor.
    pub fn new(crate_id: &str, kind: FileKind) -> Self {
        FileCtx {
            crate_id: crate_id.to_string(),
            kind,
        }
    }

    fn sim_critical(&self) -> bool {
        SIM_CRITICAL.contains(&self.crate_id.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule violated.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// Crate the file belongs to (baseline bucket).
    pub crate_id: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable detail (the needle that matched).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.detail
        )
    }
}

/// Whether `rule` applies at all to files with this context. Per-line
/// test-region exclusion is handled separately.
fn applies(rule: Rule, ctx: &FileCtx) -> bool {
    match rule {
        Rule::WallClock => ctx.crate_id != "compat" && ctx.crate_id != "bench",
        Rule::IterOrder => ctx.sim_critical() && matches!(ctx.kind, FileKind::Lib | FileKind::Bin),
        Rule::UnseededRng => ctx.crate_id != "compat",
        Rule::PanicPath => ctx.sim_critical() && ctx.kind == FileKind::Lib,
        Rule::Println => {
            ctx.crate_id != "compat" && ctx.crate_id != "bench" && ctx.kind == FileKind::Lib
        }
        Rule::WildcardArm => {
            ctx.crate_id != "compat" && matches!(ctx.kind, FileKind::Lib | FileKind::Bin)
        }
        Rule::BadPragma => true,
    }
}

/// Whether `rule` also fires inside `#[cfg(test)]` regions and
/// test-kind files. Determinism of the *model* matters even in tests
/// for R1/R3 (a wall-clock seed makes a proptest unreproducible), but
/// panics/collections in test assertions are fine.
fn applies_in_tests(rule: Rule) -> bool {
    matches!(rule, Rule::WallClock | Rule::UnseededRng | Rule::BadPragma)
}

/// Substring needles per rule, with the display name reported.
fn needles(rule: Rule) -> &'static [(&'static str, &'static str)] {
    match rule {
        Rule::WallClock => &[
            ("Instant::now", "wall-clock read via Instant::now()"),
            ("SystemTime", "wall-clock type SystemTime"),
        ],
        Rule::IterOrder => &[
            (
                "HashMap",
                "HashMap in sim-critical crate (iteration order is seeded per-process)",
            ),
            (
                "HashSet",
                "HashSet in sim-critical crate (iteration order is seeded per-process)",
            ),
        ],
        Rule::UnseededRng => &[
            ("thread_rng", "unseeded thread_rng()"),
            ("rand::random", "unseeded rand::random()"),
            ("from_entropy", "OS-entropy-seeded RNG"),
            ("OsRng", "OS entropy source OsRng"),
        ],
        Rule::PanicPath => &[
            (".unwrap()", "unwrap() on sim-critical library path"),
            (".expect(", "expect() on sim-critical library path"),
            ("panic!", "panic! on sim-critical library path"),
        ],
        Rule::Println => &[
            ("eprintln!", "eprintln! in library code"),
            ("println!", "println! in library code"),
            ("eprint!", "eprint! in library code"),
            ("print!", "print! in library code"),
            ("dbg!", "dbg! in library code"),
        ],
        Rule::WildcardArm | Rule::BadPragma => &[],
    }
}

/// A parsed `bm-lint: allow(...)` pragma occurrence.
#[derive(Debug, Clone)]
struct PragmaParse {
    rule: String,
    justified: bool,
}

/// Extracts pragmas from one comment string.
///
/// Only `bm-lint: allow(<rule-id>)` with a plausible rule id (lowercase
/// letters and dashes) counts as a pragma; anything else — prose that
/// merely mentions `bm-lint:`, or a `<rule>` placeholder in docs — is
/// ignored rather than diagnosed, so documentation can describe the
/// syntax without tripping the scanner.
fn parse_pragmas(comment: &str) -> Vec<PragmaParse> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("bm-lint:") {
        let after = &rest[pos + "bm-lint:".len()..];
        rest = after;
        let trimmed = after.trim_start();
        let Some(args) = trimmed.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            continue;
        };
        let rule = args[..close].trim().to_string();
        if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            continue;
        }
        let tail = args[close + 1..].trim_start();
        let justified = tail
            .strip_prefix(':')
            .map(|j| !j.trim().is_empty())
            .unwrap_or(false);
        out.push(PragmaParse { rule, justified });
        rest = &args[close + 1..];
    }
    out
}

/// Marks, per line, whether the line is inside a `#[cfg(test)]` block.
///
/// Heuristic: after seeing `#[cfg(test)]` in code, the next brace-block
/// opened is the test region (this matches the workspace convention of
/// `#[cfg(test)] mod tests { … }`).
fn test_regions(lines: &[MaskedLine]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut region_floor: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        if region_floor.is_some() || armed {
            out[idx] = true;
        }
        if line.code.contains("cfg(test") {
            armed = true;
            out[idx] = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if armed && region_floor.is_none() {
                        region_floor = Some(depth);
                        armed = false;
                    }
                }
                '}' => {
                    if region_floor == Some(depth) {
                        region_floor = None;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
    }
    out
}

/// Match-expression context for R6.
struct MatchCtx {
    /// Brace depth of the arms (depth just inside the match's `{`).
    arm_depth: i64,
    /// Paren/bracket depth outside the match expression.
    group_base: i64,
    /// Whether the cursor is currently in an arm *pattern* (between
    /// `{`/`,` and `=>` at arm depth).
    in_pattern: bool,
    /// Identifier tokens seen in the current arm pattern.
    pat_tokens: u32,
    /// The current pattern is (so far) a bare `_` — no other tokens,
    /// no grouping, no alternatives, no guard.
    pat_bare: bool,
    /// A watched-enum path appeared in pattern position.
    has_watched: bool,
    /// Lines of bare `_ =>` arms.
    wildcard_lines: Vec<usize>,
}

impl MatchCtx {
    fn start_arm(&mut self) {
        self.in_pattern = true;
        self.pat_tokens = 0;
        self.pat_bare = true;
    }
}

const WATCHED_ENUMS: &[&str] = &["Effect", "FaultKind", "BmsCommand"];

/// Detects bare wildcard `_ =>` arms in matches whose patterns name one
/// of the load-bearing enums. Returns `(line, detail)` pairs.
fn wildcard_arms(lines: &[MaskedLine], in_test: &[bool]) -> Vec<(usize, String)> {
    let mut found = Vec::new();
    let mut stack: Vec<MatchCtx> = Vec::new();
    let mut depth: i64 = 0;
    let mut group: i64 = 0;
    let mut pending_match = false;
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            // Reset any half-open scrutinee state; test matches are out
            // of scope (asserting on a single variant is idiomatic).
            pending_match = false;
        }
        let chars: Vec<char> = line.code.chars().collect();
        let mut ident = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let is_ident = c.is_alphanumeric() || c == '_' || c == ':';
            if is_ident {
                ident.push(c);
                i += 1;
                continue;
            }
            let word = std::mem::take(&mut ident);
            flush_word(&word, &mut stack, depth, &mut pending_match, in_test[idx]);
            let at_arm_level = stack
                .last()
                .map(|t| t.arm_depth == depth && t.group_base == group)
                .unwrap_or(false);
            match c {
                '{' => {
                    depth += 1;
                    if pending_match {
                        let mut ctx = MatchCtx {
                            arm_depth: depth,
                            group_base: group,
                            in_pattern: false,
                            pat_tokens: 0,
                            pat_bare: false,
                            has_watched: false,
                            wildcard_lines: Vec::new(),
                        };
                        ctx.start_arm();
                        stack.push(ctx);
                        pending_match = false;
                    }
                }
                '}' => {
                    if stack.last().map(|t| t.arm_depth == depth) == Some(true) {
                        let ctx = stack.pop().expect("stack top checked above");
                        if ctx.has_watched {
                            for l in ctx.wildcard_lines {
                                found.push((
                                    l,
                                    "wildcard `_ =>` arm in match over a load-bearing enum"
                                        .to_string(),
                                ));
                            }
                        }
                    }
                    depth -= 1;
                }
                '(' | '[' => {
                    if at_arm_level {
                        if let Some(top) = stack.last_mut() {
                            if top.in_pattern {
                                top.pat_bare = false;
                            }
                        }
                    }
                    group += 1;
                }
                ')' | ']' => group -= 1,
                ',' if at_arm_level => {
                    if let Some(top) = stack.last_mut() {
                        top.start_arm();
                    }
                }
                '|' | '&' | '@' if at_arm_level => {
                    if let Some(top) = stack.last_mut() {
                        if top.in_pattern {
                            top.pat_bare = false;
                        }
                    }
                }
                '=' if chars.get(i + 1) == Some(&'>') => {
                    if at_arm_level {
                        if let Some(top) = stack.last_mut() {
                            if top.in_pattern
                                && top.pat_tokens == 1
                                && top.pat_bare
                                && !in_test[idx]
                            {
                                top.wildcard_lines.push(idx + 1);
                            }
                            top.in_pattern = false;
                        }
                    }
                    i += 2;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
        let word = std::mem::take(&mut ident);
        flush_word(&word, &mut stack, depth, &mut pending_match, in_test[idx]);
    }
    found
}

/// Processes one completed identifier-ish token for the R6 machine.
fn flush_word(
    word: &str,
    stack: &mut [MatchCtx],
    depth: i64,
    pending_match: &mut bool,
    in_test: bool,
) {
    if word.is_empty() {
        return;
    }
    if word == "match" && !in_test {
        *pending_match = true;
        return;
    }
    if let Some(top) = stack.last_mut() {
        if top.arm_depth == depth && top.in_pattern && !in_test {
            top.pat_tokens += 1;
            if word != "_" {
                top.pat_bare = false;
            }
            let watched = WATCHED_ENUMS
                .iter()
                .any(|e| word.starts_with(&format!("{e}::")) || word.contains(&format!("::{e}::")));
            if watched {
                top.has_watched = true;
            }
        }
    }
}

/// Scans one file's source, returning unsuppressed violations.
///
/// Suppression: a well-formed, justified pragma on the violation's line
/// or on the line directly above it.
pub fn scan_source(rel_path: &str, src: &str, ctx: &FileCtx) -> Vec<Violation> {
    let lines = mask_source(src);
    let in_test = test_regions(&lines);
    let mut raw: Vec<Violation> = Vec::new();

    let mk = |rule: Rule, line: usize, detail: String| Violation {
        rule,
        path: rel_path.to_string(),
        crate_id: ctx.crate_id.clone(),
        line,
        detail,
    };

    // Needle rules.
    for rule in [
        Rule::WallClock,
        Rule::IterOrder,
        Rule::UnseededRng,
        Rule::PanicPath,
        Rule::Println,
    ] {
        if !applies(rule, ctx) {
            continue;
        }
        let in_test_files = matches!(
            ctx.kind,
            FileKind::Test | FileKind::Bench | FileKind::Example
        );
        for (idx, line) in lines.iter().enumerate() {
            if (in_test[idx] || in_test_files) && !applies_in_tests(rule) {
                continue;
            }
            for (needle, detail) in needles(rule) {
                if line.code.contains(needle) {
                    raw.push(mk(rule, idx + 1, (*detail).to_string()));
                    break; // one finding per (rule, line)
                }
            }
        }
    }

    // R6.
    if applies(Rule::WildcardArm, ctx) {
        for (line, detail) in wildcard_arms(&lines, &in_test) {
            raw.push(mk(Rule::WildcardArm, line, detail));
        }
    }

    // Pragmas: collect per line, emit bad-pragma findings.
    let mut allows: Vec<(usize, String)> = Vec::new(); // justified allows
    for (idx, line) in lines.iter().enumerate() {
        for comment in &line.comments {
            for p in parse_pragmas(comment) {
                if Rule::from_id(&p.rule).is_none() {
                    raw.push(mk(
                        Rule::BadPragma,
                        idx + 1,
                        format!("pragma names unknown rule `{}`", p.rule),
                    ));
                } else if !p.justified {
                    raw.push(mk(
                        Rule::BadPragma,
                        idx + 1,
                        format!(
                            "allow({0}) pragma has no justification \
                             (write `bm-lint: allow({0}): <reason>`)",
                            p.rule
                        ),
                    ));
                } else {
                    allows.push((idx + 1, p.rule));
                }
            }
        }
    }

    raw.retain(|v| {
        v.rule == Rule::BadPragma
            || !allows
                .iter()
                .any(|(l, rule)| rule == v.rule.id() && (*l == v.line || *l + 1 == v.line))
    });
    raw.sort_by_key(|v| (v.line, v.rule));
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx() -> FileCtx {
        FileCtx::new("core", FileKind::Lib)
    }

    #[test]
    fn needles_in_comments_and_strings_do_not_fire() {
        let src = "// HashMap in a comment\nlet s = \"Instant::now()\";\n";
        assert!(scan_source("x.rs", src, &lib_ctx()).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt_for_panic_rules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(scan_source("x.rs", src, &lib_ctx()).is_empty());
        let src2 = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        let v = scan_source("x.rs", src2, &lib_ctx());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::PanicPath);
    }

    #[test]
    fn pragma_on_same_or_previous_line_suppresses() {
        let src = "use std::collections::HashMap; // bm-lint: allow(iter-order): lookup-only\n";
        assert!(scan_source("x.rs", src, &lib_ctx()).is_empty());
        let src2 = "// bm-lint: allow(iter-order): lookup-only\nuse std::collections::HashMap;\n";
        assert!(scan_source("x.rs", src2, &lib_ctx()).is_empty());
    }

    #[test]
    fn unjustified_pragma_does_not_suppress() {
        let src = "use std::collections::HashMap; // bm-lint: allow(iter-order)\n";
        let v = scan_source("x.rs", src, &lib_ctx());
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::IterOrder));
        assert!(rules.contains(&Rule::BadPragma));
    }

    #[test]
    fn wildcard_arm_only_for_watched_enums() {
        let src = "fn f(e: Effect) -> u8 {\n    match e {\n        Effect::A => 1,\n        _ => 0,\n    }\n}\n";
        let v = scan_source("x.rs", src, &FileCtx::new("testbed", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::WildcardArm);
        assert_eq!(v[0].line, 4);
        let benign =
            "fn f(x: u8) -> u8 {\n    match x {\n        1 => 1,\n        _ => 0,\n    }\n}\n";
        assert!(scan_source("x.rs", benign, &FileCtx::new("testbed", FileKind::Lib)).is_empty());
    }

    #[test]
    fn wildcard_in_nested_unwatched_match_is_clean() {
        let src = "fn f(e: Effect, n: u8) -> u8 {\n    match e {\n        Effect::A => match n {\n            1 => 1,\n            _ => 0,\n        },\n        Effect::B => 2,\n    }\n}\n";
        assert!(scan_source("x.rs", src, &FileCtx::new("testbed", FileKind::Lib)).is_empty());
    }

    #[test]
    fn watched_enum_in_arm_body_does_not_mark_outer_match() {
        let src = "fn f(x: u8) -> Effect {\n    match x {\n        1 => Effect::A,\n        _ => Effect::B,\n    }\n}\n";
        assert!(scan_source("x.rs", src, &FileCtx::new("testbed", FileKind::Lib)).is_empty());
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_id(r.id()), Some(r));
        }
        assert_eq!(Rule::from_id("nope"), None);
    }
}
