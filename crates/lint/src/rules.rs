//! The rule set: what `bm-lint` enforces and where.
//!
//! Every rule exists to protect one property of the discrete-event
//! simulation: **same seed, same bytes**. See [`Rule::explain`] for the
//! failure mode each rule guards against, in DES terms.
//!
//! Rules run over the token stream produced by [`crate::lexer`] (pass
//! 2), with the workspace-wide [`SymbolTable`] from pass 1 in scope so
//! the exhaustiveness rule can resolve a `match` in one crate against
//! an enum defined in another.

use crate::lexer::{lex, Tok, TokKind};
use crate::symbols::SymbolTable;
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose code is on the simulated data/control path. Iteration
/// order, panics, and hidden nondeterminism in these crates change
/// simulated *behaviour*, not just logging.
pub const SIM_CRITICAL: &[&str] = &["sim", "core", "ssd", "pcie", "nvme", "testbed", "chaos"];

/// The rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no wall-clock reads outside `compat`/`bench`.
    WallClock,
    /// R2: no `HashMap`/`HashSet` in sim-critical crates.
    IterOrder,
    /// R3: no unseeded randomness anywhere outside `compat`.
    UnseededRng,
    /// R4: no `unwrap`/`expect`/`panic!` in sim-critical library code.
    PanicPath,
    /// R5: no `println!`-family output from library crates.
    Println,
    /// R6: matches over load-bearing enums must handle every variant —
    /// wildcard and catch-all arms are resolved against the cross-file
    /// enum definition and reported with the variants they hide.
    WildcardArm,
    /// R7: float ordering/accumulation hazards in sim-critical code.
    FloatDet,
    /// R8: raw integer literals mixed with nanosecond-denominated
    /// values without a named unit constructor.
    TimeUnit,
    /// R9: process-global or thread-affine state that blocks running
    /// one `World` per shard thread (ROADMAP item 1).
    ShardSafety,
    /// A malformed or justification-less `bm-lint:` pragma.
    BadPragma,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 10] = [
        Rule::WallClock,
        Rule::IterOrder,
        Rule::UnseededRng,
        Rule::PanicPath,
        Rule::Println,
        Rule::WildcardArm,
        Rule::FloatDet,
        Rule::TimeUnit,
        Rule::ShardSafety,
        Rule::BadPragma,
    ];

    /// Stable string id (used in pragmas, baselines, and reports).
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::IterOrder => "iter-order",
            Rule::UnseededRng => "unseeded-rng",
            Rule::PanicPath => "panic-path",
            Rule::Println => "println",
            Rule::WildcardArm => "wildcard-arm",
            Rule::FloatDet => "float-determinism",
            Rule::TimeUnit => "time-unit",
            Rule::ShardSafety => "shard-safety",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// Parses a rule id.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// Why the rule exists, in discrete-event-simulation terms.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "R1 wall-clock: `Instant::now()`/`SystemTime` read the host's clock. \
                 Any value derived from wall time differs between runs, so a branch or \
                 latency computed from it diverges from the seed-replay: two runs with \
                 the same seed produce different event orders and different figures. \
                 All time must come from `bm_sim::SimTime` handed down by the scheduler. \
                 Exempt: `crates/compat` (vendored benchmarking shims), `crates/bench` \
                 (host-side harness reporting) and `crates/prof` (the wall-clock \
                 self-profiler — its `monotonic_ns()` is the sanctioned audit point; \
                 sim crates must never feed its readings back into scheduling)."
            }
            Rule::IterOrder => {
                "R2 iter-order: `HashMap`/`HashSet` iteration order depends on \
                 `RandomState`'s per-process seed. If any sim-critical crate iterates \
                 one — even to drain completions or roll up stats — event ordering \
                 (or float summation order) changes run-to-run and seed replay breaks \
                 byte-identically-reproduced figures (fig08/09/12). Use `BTreeMap`, \
                 `BTreeSet`, an index-ordered `Vec`, or suppress with \
                 `// bm-lint: allow(iter-order): <why order cannot leak>`."
            }
            Rule::UnseededRng => {
                "R3 unseeded-rng: `thread_rng()`/`rand::random()`/`OsRng` draw entropy \
                 from the OS. A single unseeded draw anywhere in the pipeline makes the \
                 run unreproducible — fault plans, workload generators, and perturbation \
                 models must derive from the run's root seed (`bm_sim::rng`)."
            }
            Rule::PanicPath => {
                "R4 panic-path: `unwrap`/`expect`/`panic!` in sim-critical library code \
                 turns a recoverable modelling bug into an abort that takes the whole \
                 testbed (and every tenant's pending I/O) with it. The fault-injection \
                 suite deliberately drives error paths; library code must return typed \
                 errors or document the invariant with an assert at the boundary. \
                 Existing debt is ratcheted by `lint-baseline.toml`: it may shrink, \
                 never grow."
            }
            Rule::Println => {
                "R5 println: direct stdout/stderr writes from library crates bypass the \
                 telemetry layer, interleave nondeterministically with harness output, \
                 and corrupt the byte-compared experiment tables. Record a telemetry \
                 event or return the string to the caller; binaries, tests, and \
                 examples may print."
            }
            Rule::WildcardArm => {
                "R6 wildcard-arm: `Effect`, `FaultKind`, `BmsCommand`, and `Stage` are \
                 the load-bearing enums of the scheme pipeline, the fault plan, the \
                 management plane, and the event loop. A `_ =>` or catch-all binding \
                 arm in a match over them swallows every future variant silently: a \
                 new fault kind injects nothing, a new effect never executes, and the \
                 run *passes* while simulating the wrong thing. The analyzer resolves \
                 the scrutinee against the enum's definition (across crates) and lists \
                 the variants the arm hides; enumerate them so the compiler flags new \
                 ones."
            }
            Rule::FloatDet => {
                "R7 float-determinism: floats only admit a partial order, and float \
                 addition is not associative. `partial_cmp` in a sort, a `.sum()` or \
                 float `fold` over an iteration-order-sensitive sequence, or an `as \
                 f64` cast of a nanosecond counter (precision loss past 2^53) each \
                 produce results that depend on ordering or magnitude, not on the \
                 seed. Use `total_cmp`, accumulate over deterministically ordered \
                 sequences, and route ns→float conversions through the `SimTime`/\
                 `SimDuration` float accessors."
            }
            Rule::TimeUnit => {
                "R8 time-unit: a bare integer literal added to or compared against a \
                 `_ns` field hides its unit — `deadline_ns + 500` reads as \"500 \
                 what?\" and a µs-vs-ns slip shifts every downstream event by 1000×. \
                 Build durations with `SimDuration::from_us`/`from_ms`/`from_nanos` \
                 at the literal site, or name the constant so the unit is in the \
                 identifier."
            }
            Rule::ShardSafety => {
                "R9 shard-safety: ROADMAP item 1 runs one `World` per shard thread \
                 with a deterministic cross-shard merge. Any process-global mutable \
                 state (a `static` with interior mutability, `static mut`, a \
                 process-wide registry), `thread_local!` storage, or single-thread \
                 `Rc`/`RefCell` ownership in sim-critical code either breaks under \
                 concurrent shards or silently couples them, making the merge \
                 nondeterministic. This category must ratchet to zero before any \
                 parallel-shard code lands."
            }
            Rule::BadPragma => {
                "bad-pragma: a `// bm-lint: allow(<rule>)` suppression must carry a \
                 justification (`// bm-lint: allow(iter-order): keys are replayed in \
                 sorted order below`). A bare pragma, an unknown rule id, or malformed \
                 syntax does not suppress anything and is itself a finding — silent \
                 exemptions are how determinism discipline rots."
            }
        }
    }
}

/// How a file participates in the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of the crate's library target.
    Lib,
    /// A binary target (`src/bin`, `src/main.rs`).
    Bin,
    /// An integration test (`tests/`).
    Test,
    /// An example (`examples/`).
    Example,
    /// A benchmark (`benches/`).
    Bench,
}

/// Where a file lives, for rule applicability.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Crate directory name (`sim`, `core`, …, `compat` for vendored
    /// subsets, `bmstore` for the root package).
    pub crate_id: String,
    /// Target kind.
    pub kind: FileKind,
}

impl FileCtx {
    /// Convenience constructor.
    pub fn new(crate_id: &str, kind: FileKind) -> Self {
        FileCtx {
            crate_id: crate_id.to_string(),
            kind,
        }
    }

    fn sim_critical(&self) -> bool {
        SIM_CRITICAL.contains(&self.crate_id.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule violated.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// Crate the file belongs to (baseline bucket).
    pub crate_id: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable detail.
    pub detail: String,
    /// Whether a justified pragma suppresses this finding. Suppressed
    /// findings are excluded from the ratchet but reported (with their
    /// pragma status) by `--format json`.
    pub suppressed: bool,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.detail
        )
    }
}

/// Whether `rule` applies at all to files with this context. Per-line
/// test-region exclusion is handled separately.
fn applies(rule: Rule, ctx: &FileCtx) -> bool {
    match rule {
        Rule::WallClock => {
            ctx.crate_id != "compat" && ctx.crate_id != "bench" && ctx.crate_id != "prof"
        }
        Rule::IterOrder => ctx.sim_critical() && matches!(ctx.kind, FileKind::Lib | FileKind::Bin),
        Rule::UnseededRng => ctx.crate_id != "compat",
        Rule::PanicPath => ctx.sim_critical() && ctx.kind == FileKind::Lib,
        Rule::Println => {
            ctx.crate_id != "compat" && ctx.crate_id != "bench" && ctx.kind == FileKind::Lib
        }
        Rule::WildcardArm => {
            ctx.crate_id != "compat" && matches!(ctx.kind, FileKind::Lib | FileKind::Bin)
        }
        Rule::FloatDet | Rule::TimeUnit | Rule::ShardSafety => {
            ctx.sim_critical() && matches!(ctx.kind, FileKind::Lib | FileKind::Bin)
        }
        Rule::BadPragma => true,
    }
}

/// Whether `rule` also fires inside `#[cfg(test)]` regions and
/// test-kind files. Determinism of the *model* matters even in tests
/// for R1/R3 (a wall-clock seed makes a proptest unreproducible), but
/// panics/collections in test assertions are fine.
fn applies_in_tests(rule: Rule) -> bool {
    matches!(rule, Rule::WallClock | Rule::UnseededRng | Rule::BadPragma)
}

/// A parsed `bm-lint: allow(...)` pragma occurrence.
#[derive(Debug, Clone)]
struct PragmaParse {
    rule: String,
    justified: bool,
}

/// Extracts pragmas from one comment string.
///
/// Only `bm-lint: allow(<rule-id>)` with a plausible rule id (lowercase
/// letters and dashes) counts as a pragma; anything else — prose that
/// merely mentions `bm-lint:`, or a `<rule>` placeholder in docs — is
/// ignored rather than diagnosed, so documentation can describe the
/// syntax without tripping the scanner.
fn parse_pragmas(comment: &str) -> Vec<PragmaParse> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("bm-lint:") {
        let after = &rest[pos + "bm-lint:".len()..];
        rest = after;
        let trimmed = after.trim_start();
        let Some(args) = trimmed.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            continue;
        };
        let rule = args[..close].trim().to_string();
        if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            continue;
        }
        let tail = args[close + 1..].trim_start();
        let justified = tail
            .strip_prefix(':')
            .map(|j| !j.trim().is_empty())
            .unwrap_or(false);
        out.push(PragmaParse { rule, justified });
        rest = &args[close + 1..];
    }
    out
}

/// Marks, per token, whether the token sits inside a `#[cfg(test)]`
/// region. Heuristic (matching the workspace convention of
/// `#[cfg(test)] mod tests { … }`): after a `#[cfg(… test …)]`
/// attribute, the next brace block is the test region.
fn test_marks(toks: &[Tok]) -> Vec<bool> {
    let mut out = vec![false; toks.len()];
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut floor: Option<i64> = None;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("#") && toks.get(i + 1).map(|x| x.is_punct("[")).unwrap_or(false) {
            let mut j = i + 2;
            let mut d = 1i64;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while j < toks.len() && d > 0 {
                let u = &toks[j];
                if u.is_punct("[") {
                    d += 1;
                } else if u.is_punct("]") {
                    d -= 1;
                } else if u.is_ident("cfg") {
                    saw_cfg = true;
                } else if u.is_ident("test") {
                    saw_test = true;
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                armed = true;
                for slot in out.iter_mut().take(j).skip(i) {
                    *slot = true;
                }
                i = j;
                continue;
            }
        }
        if floor.is_some() || armed {
            out[i] = true;
        }
        if t.is_punct("{") {
            depth += 1;
            if armed && floor.is_none() {
                floor = Some(depth);
                armed = false;
            }
        } else if t.is_punct("}") {
            if floor == Some(depth) {
                floor = None;
            }
            depth -= 1;
        }
        i += 1;
    }
    out
}

/// Enums whose matches must be exhaustive (R6).
const WATCHED_ENUMS: &[&str] = &["Effect", "FaultKind", "BmsCommand", "Stage"];

/// Type names with interior mutability (R9, judged on `static` items).
const INTERIOR_MUTABLE: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// How a catch-all arm was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CatchAll {
    /// A bare `_` token.
    Underscore,
    /// A single lowercase/underscore-prefixed binding (`other => …`).
    Binding,
}

/// One `match` expression being tracked by the R6 stack machine.
struct Frame {
    /// Brace depth of the arms (depth just inside the match's `{`).
    arm_depth: i64,
    /// Paren/bracket depth outside the match expression.
    group_base: i64,
    /// Line of the `match` keyword.
    match_line: u32,
    /// Whether the cursor is in an arm *pattern* (before `=>`).
    in_pattern: bool,
    /// Whether an `if` guard started (pattern collection stops).
    in_guard: bool,
    /// Token count of the current pattern at arm level.
    pat_count: u32,
    /// If the pattern's first (and so far only) token could be a
    /// catch-all, what kind, and on what line.
    pat_first: Option<(CatchAll, u32)>,
    /// The pattern contains structure (`(`, `{`, `|`, `&`, `@`, guard)
    /// and cannot be a bare catch-all.
    pat_broken: bool,
    /// Watched-enum variants named in pattern position: enum → set.
    seen: BTreeMap<String, BTreeSet<String>>,
    /// Catch-all arms found: (line, description).
    wildcards: Vec<(u32, &'static str)>,
}

impl Frame {
    fn new(arm_depth: i64, group_base: i64, match_line: u32) -> Frame {
        let mut f = Frame {
            arm_depth,
            group_base,
            match_line,
            in_pattern: false,
            in_guard: false,
            pat_count: 0,
            pat_first: None,
            pat_broken: false,
            seen: BTreeMap::new(),
            wildcards: Vec::new(),
        };
        f.start_arm();
        f
    }

    fn start_arm(&mut self) {
        self.in_pattern = true;
        self.in_guard = false;
        self.pat_count = 0;
        self.pat_first = None;
        self.pat_broken = false;
    }

    fn end_pattern(&mut self) {
        if self.in_pattern && self.pat_count == 1 && !self.pat_broken {
            match self.pat_first {
                Some((CatchAll::Underscore, line)) => {
                    self.wildcards.push((line, "wildcard `_` arm"));
                }
                Some((CatchAll::Binding, line)) => {
                    self.wildcards.push((line, "catch-all binding arm"));
                }
                None => {}
            }
        }
        self.in_pattern = false;
        self.in_guard = false;
    }
}

/// Runs the R6 exhaustiveness machine over the token stream. Emits
/// `(line, detail)` pairs.
fn exhaustiveness(toks: &[Tok], in_test: &[bool], table: &SymbolTable) -> Vec<(u32, String)> {
    let mut found = Vec::new();
    let mut frames: Vec<Frame> = Vec::new();
    let mut depth: i64 = 0;
    let mut group: i64 = 0;
    // (group, depth, line) at the `match` keyword, awaiting its `{`.
    let mut pending: Option<(i64, i64, u32)> = None;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let at_arm = frames
            .last()
            .map(|f| f.arm_depth == depth && f.group_base == group)
            .unwrap_or(false);
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "{" => {
                    if at_arm {
                        if let Some(f) = frames.last_mut() {
                            if f.in_pattern && !f.in_guard {
                                f.pat_count += 1;
                                f.pat_broken = true;
                            }
                        }
                    }
                    depth += 1;
                    if let Some((pg, pd, pl)) = pending {
                        if pg == group && pd == depth - 1 {
                            pending = None;
                            frames.push(Frame::new(depth, group, pl));
                        }
                    }
                }
                "}" => {
                    if frames.last().map(|f| f.arm_depth == depth) == Some(true) {
                        let f = frames.pop().expect("frame top checked above");
                        finalize_frame(f, table, &mut found);
                    }
                    depth -= 1;
                    // A `}` landing back at arm level closed a brace
                    // arm body (`=> { … }`, no trailing comma): the
                    // next token starts the next arm's pattern. Payload
                    // braces inside a pattern also land here, but with
                    // `in_pattern` still set — leave those alone.
                    if let Some(f) = frames.last_mut() {
                        if f.arm_depth == depth && f.group_base == group && !f.in_pattern {
                            f.start_arm();
                        }
                    }
                }
                "(" | "[" => {
                    if at_arm {
                        if let Some(f) = frames.last_mut() {
                            if f.in_pattern && !f.in_guard {
                                f.pat_count += 1;
                                f.pat_broken = true;
                            }
                        }
                    }
                    group += 1;
                }
                ")" | "]" => group -= 1,
                "," if at_arm => {
                    if let Some(f) = frames.last_mut() {
                        f.start_arm();
                    }
                }
                "=>" if at_arm => {
                    if let Some(f) = frames.last_mut() {
                        f.end_pattern();
                    }
                }
                "|" | "&" | "@" if at_arm => {
                    if let Some(f) = frames.last_mut() {
                        if f.in_pattern && !f.in_guard {
                            f.pat_broken = true;
                        }
                    }
                }
                ";" if pending.map(|(pg, pd, _)| pg == group && pd == depth) == Some(true) => {
                    pending = None;
                }
                _ => {}
            },
            TokKind::Ident => {
                if t.text == "match" && !in_test[i] {
                    pending = Some((group, depth, t.line));
                } else if at_arm {
                    let watched = WATCHED_ENUMS.contains(&t.text.as_str())
                        && toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false)
                        && toks
                            .get(i + 2)
                            .map(|n| n.kind == TokKind::Ident)
                            .unwrap_or(false);
                    if let Some(f) = frames.last_mut() {
                        if f.in_pattern {
                            if t.text == "if" {
                                f.in_guard = true;
                                f.pat_broken = true;
                            } else if !f.in_guard {
                                f.pat_count += 1;
                                if f.pat_count == 1 {
                                    let first = t.text.chars().next().unwrap_or('A');
                                    f.pat_first = if t.text == "_" {
                                        Some((CatchAll::Underscore, t.line))
                                    } else if first.is_ascii_lowercase() || first == '_' {
                                        Some((CatchAll::Binding, t.line))
                                    } else {
                                        None
                                    };
                                }
                                if watched {
                                    f.seen
                                        .entry(t.text.clone())
                                        .or_default()
                                        .insert(toks[i + 2].text.clone());
                                }
                            }
                        }
                    }
                }
            }
            _ => {
                if at_arm {
                    if let Some(f) = frames.last_mut() {
                        if f.in_pattern && !f.in_guard {
                            f.pat_count += 1;
                        }
                    }
                }
            }
        }
        i += 1;
    }
    found
}

/// Judges one closed match frame against the symbol table.
fn finalize_frame(f: Frame, table: &SymbolTable, found: &mut Vec<(u32, String)>) {
    if f.seen.is_empty() {
        return;
    }
    let has_catch_all = !f.wildcards.is_empty();
    for (ename, seen) in &f.seen {
        let seen_vec: Vec<String> = seen.iter().cloned().collect();
        let def = table.resolve_enum(ename, &seen_vec);
        let missing: Vec<&str> = def
            .map(|d| {
                d.variants
                    .iter()
                    .filter(|v| !seen.contains(*v))
                    .map(|v| v.as_str())
                    .collect()
            })
            .unwrap_or_default();
        if has_catch_all {
            for (line, kind) in &f.wildcards {
                let detail = match def {
                    Some(d) if !missing.is_empty() => format!(
                        "{kind} in match over `{ename}` hides unhandled variants: {} \
                         (defined at {}:{})",
                        missing.join(", "),
                        d.path,
                        d.line
                    ),
                    Some(_) => format!(
                        "{kind} in match over `{ename}` — every variant is already \
                         handled; enumerate them and drop the catch-all"
                    ),
                    None => format!("{kind} in match over load-bearing enum `{ename}`"),
                };
                found.push((*line, detail));
            }
        } else if !missing.is_empty() {
            found.push((
                f.match_line,
                format!(
                    "match over `{ename}` is missing variants: {}",
                    missing.join(", ")
                ),
            ));
        }
    }
}

/// Whether a float literal's value is an exemption for comparisons:
/// `0.0` and `1.0` are exact in IEEE 754 and comparing against them is
/// a guard, not an ordering.
fn exempt_float(text: &str) -> bool {
    matches!(text.parse::<f64>(), Ok(v) if v == 0.0 || v == 1.0)
}

/// Whether an Int token is a nonzero literal (R8 ignores 0: `x_ns != 0`
/// is a presence check, not unit arithmetic).
fn nonzero_int(text: &str) -> bool {
    matches!(text.parse::<u128>(), Ok(v) if v != 0)
}

fn is_cmp(t: &Tok) -> bool {
    t.kind == TokKind::Punct && matches!(t.text.as_str(), "<" | ">" | "<=" | ">=" | "==" | "!=")
}

/// R7 float-determinism detectors. Emits `(line, detail)` pairs.
fn float_det(toks: &[Tok], in_test: &[bool]) -> Vec<(u32, String)> {
    let mut found = Vec::new();
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_punct(".") {
            if let (Some(a), Some(b)) = (toks.get(i + 1), toks.get(i + 2)) {
                if a.is_ident("partial_cmp") && b.is_punct("(") {
                    found.push((
                        t.line,
                        "partial_cmp() admits NaN incomparability; use total_cmp for a \
                         total, deterministic float order"
                            .to_string(),
                    ));
                }
                if a.is_ident("sum")
                    && b.is_punct("::")
                    && toks.get(i + 3).map(|x| x.is_punct("<")).unwrap_or(false)
                    && toks
                        .get(i + 4)
                        .map(|x| x.is_ident("f64") || x.is_ident("f32"))
                        .unwrap_or(false)
                {
                    found.push((
                        t.line,
                        "float .sum() — float addition is not associative, so the \
                         result depends on iteration order"
                            .to_string(),
                    ));
                }
                if a.is_ident("fold")
                    && b.is_punct("(")
                    && toks
                        .get(i + 3)
                        .map(|x| x.kind == TokKind::Float)
                        .unwrap_or(false)
                {
                    found.push((
                        t.line,
                        "float fold() accumulator — the result depends on iteration \
                         order unless the sequence order is pinned"
                            .to_string(),
                    ));
                }
            }
        }
        if is_cmp(t) {
            let float_operand = [i.wrapping_sub(1), i + 1]
                .iter()
                .filter_map(|&j| toks.get(j))
                .any(|n| n.kind == TokKind::Float && !exempt_float(&n.text));
            if float_operand {
                found.push((
                    t.line,
                    "ordering comparison against a float literal; thresholds on sim \
                     paths should be integers/fixed-point or carry a pragma \
                     explaining why the float compare is exact"
                        .to_string(),
                ));
            }
        }
        if t.is_ident("as") {
            if let Some(n) = toks.get(i + 1) {
                if n.is_ident("f64") || n.is_ident("f32") {
                    // The cast *operand* must be ns-typed: either the
                    // ident right before `as` carries a `_ns` suffix, or
                    // the expression chains off `.as_nanos()` within a
                    // short lookback. A nearby `_ns` variable alone does
                    // not taint an unrelated cast (`arrivals as f64`).
                    let operand_ns = i
                        .checked_sub(1)
                        .and_then(|j| toks.get(j))
                        .map(|p| p.kind == TokKind::Ident && p.text.ends_with("_ns"))
                        .unwrap_or(false);
                    let ns_source = operand_ns
                        || (i.saturating_sub(8)..i).any(|j| toks[j].is_ident("as_nanos"));
                    if ns_source {
                        found.push((
                            t.line,
                            format!(
                                "nanosecond count cast with `as {}` loses precision past \
                                 2^53; use SimTime/SimDuration's as_nanos_f64()/\
                                 as_micros_f64() accessors",
                                n.text
                            ),
                        ));
                    }
                }
            }
        }
    }
    found
}

/// R8 time-unit detectors. Emits `(line, detail)` pairs.
fn time_unit(toks: &[Tok], in_test: &[bool]) -> Vec<(u32, String)> {
    let mut found = Vec::new();
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        if (t.kind == TokKind::Punct && matches!(t.text.as_str(), "+" | "-" | "+=" | "-="))
            || is_cmp(t)
        {
            let prev = i.checked_sub(1).and_then(|j| toks.get(j));
            let next = toks.get(i + 1);
            let ns = |x: Option<&Tok>| {
                x.map(|x| x.kind == TokKind::Ident && x.text.ends_with("_ns"))
                    .unwrap_or(false)
            };
            let lit = |x: Option<&Tok>| {
                x.map(|x| x.kind == TokKind::Int && nonzero_int(&x.text))
                    .unwrap_or(false)
            };
            // A literal whose far-side neighbour is `*`/`/`/`%` is a
            // scale factor (`t_ns * 2 > other_ns`), not a raw time.
            let scaled = |j: Option<usize>| {
                j.and_then(|j| toks.get(j))
                    .map(|x| x.kind == TokKind::Punct && matches!(x.text.as_str(), "*" | "/" | "%"))
                    .unwrap_or(false)
            };
            let lit_next = lit(next) && !scaled(Some(i + 2));
            let lit_prev = lit(prev) && !scaled(i.checked_sub(2));
            if (ns(prev) && lit_next) || (lit_prev && ns(next)) {
                found.push((
                    t.line,
                    "raw integer literal in arithmetic/comparison against a `_ns` \
                     value hides its unit; use SimDuration::from_us/from_ms/\
                     from_nanos or a named `_NS` constant"
                        .to_string(),
                ));
            }
        }
        if t.is_ident("from_nanos") && toks.get(i + 1).map(|x| x.is_punct("(")).unwrap_or(false) {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Int
                    && matches!(arg.text.parse::<u128>(), Ok(v) if v >= 1000)
                    && toks.get(i + 3).map(|x| x.is_punct(")")).unwrap_or(false)
                {
                    found.push((
                        t.line,
                        "from_nanos(<literal ≥ 1µs>) obscures the magnitude; write \
                         from_us/from_ms so the unit is visible at the call site"
                            .to_string(),
                    ));
                }
            }
        }
    }
    found
}

/// R9 shard-safety detectors: statics/thread_locals come from the
/// pass-1 symbol table (filtered to this file); `Rc<`/`RefCell<` type
/// positions are detected token-locally. Emits `(line, detail)` pairs.
fn shard_safety(
    rel_path: &str,
    toks: &[Tok],
    in_test: &[bool],
    table: &SymbolTable,
) -> Vec<(u32, String)> {
    let mut found = Vec::new();
    let test_lines: BTreeSet<u32> = toks
        .iter()
        .zip(in_test.iter())
        .filter(|(_, &m)| m)
        .map(|(t, _)| t.line)
        .collect();
    for s in table.statics.iter().filter(|s| s.path == rel_path) {
        if test_lines.contains(&s.line) {
            continue;
        }
        if s.mutable {
            found.push((
                s.line,
                format!(
                    "`static mut {}` is process-global mutable state; parallel \
                     shards (ROADMAP 1) require per-World ownership",
                    s.name
                ),
            ));
        } else if let Some(ty) = s.ty.iter().find(|t| INTERIOR_MUTABLE.contains(&t.as_str())) {
            found.push((
                s.line,
                format!(
                    "static `{}` has interior mutability ({}); process-global \
                     state couples shards and breaks the deterministic merge \
                     (ROADMAP 1)",
                    s.name, ty
                ),
            ));
        }
    }
    for tl in table.thread_locals.iter().filter(|t| t.path == rel_path) {
        if test_lines.contains(&tl.line) {
            continue;
        }
        found.push((
            tl.line,
            "thread_local! state outlives a `World` and is invisible to the \
             cross-shard merge; shards must own their state (ROADMAP 1)"
                .to_string(),
        ));
    }
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        if (t.is_ident("Rc") || t.is_ident("RefCell"))
            && toks.get(i + 1).map(|n| n.is_punct("<")).unwrap_or(false)
        {
            found.push((
                t.line,
                format!(
                    "`{}<…>` is single-thread-only; state crossing a shard \
                     boundary (ROADMAP 1) needs exclusive per-World ownership \
                     (or a pragma documenting confinement)",
                    t.text
                ),
            ));
        }
    }
    found
}

/// Scans one file's source, returning **all** findings; suppressed ones
/// carry `suppressed: true` (a well-formed, justified pragma on the
/// finding's line or the line directly above).
pub fn scan_source(
    rel_path: &str,
    src: &str,
    ctx: &FileCtx,
    table: &SymbolTable,
) -> Vec<Violation> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let marks = test_marks(toks);
    let in_test_file = matches!(
        ctx.kind,
        FileKind::Test | FileKind::Bench | FileKind::Example
    );
    let mut raw: Vec<Violation> = Vec::new();

    let mk = |rule: Rule, line: u32, detail: String| Violation {
        rule,
        path: rel_path.to_string(),
        crate_id: ctx.crate_id.clone(),
        line: line as usize,
        detail,
        suppressed: false,
    };

    // Token-sequence needle rules.
    for i in 0..toks.len() {
        let t = &toks[i];
        let next = toks.get(i + 1);
        let nn = toks.get(i + 2);
        let in_test = marks[i] || in_test_file;
        let mut hit = |rule: Rule, detail: &str| {
            if applies(rule, ctx) && (!in_test || applies_in_tests(rule)) {
                raw.push(mk(rule, t.line, detail.to_string()));
            }
        };
        if t.is_ident("Instant")
            && next.map(|n| n.is_punct("::")).unwrap_or(false)
            && nn.map(|n| n.is_ident("now")).unwrap_or(false)
        {
            hit(Rule::WallClock, "wall-clock read via Instant::now()");
        } else if t.is_ident("SystemTime") {
            hit(Rule::WallClock, "wall-clock type SystemTime");
        }
        if t.is_ident("HashMap") {
            hit(
                Rule::IterOrder,
                "HashMap in sim-critical crate (iteration order is seeded per-process)",
            );
        } else if t.is_ident("HashSet") {
            hit(
                Rule::IterOrder,
                "HashSet in sim-critical crate (iteration order is seeded per-process)",
            );
        }
        if t.is_ident("thread_rng") {
            hit(Rule::UnseededRng, "unseeded thread_rng()");
        } else if t.is_ident("rand")
            && next.map(|n| n.is_punct("::")).unwrap_or(false)
            && nn.map(|n| n.is_ident("random")).unwrap_or(false)
        {
            hit(Rule::UnseededRng, "unseeded rand::random()");
        } else if t.is_ident("from_entropy") {
            hit(Rule::UnseededRng, "OS-entropy-seeded RNG");
        } else if t.is_ident("OsRng") {
            hit(Rule::UnseededRng, "OS entropy source OsRng");
        }
        if t.is_punct(".")
            && next.map(|n| n.is_ident("unwrap")).unwrap_or(false)
            && nn.map(|n| n.is_punct("(")).unwrap_or(false)
        {
            hit(Rule::PanicPath, "unwrap() on sim-critical library path");
        } else if t.is_punct(".")
            && next.map(|n| n.is_ident("expect")).unwrap_or(false)
            && nn.map(|n| n.is_punct("(")).unwrap_or(false)
        {
            hit(Rule::PanicPath, "expect() on sim-critical library path");
        } else if t.is_ident("panic") && next.map(|n| n.is_punct("!")).unwrap_or(false) {
            hit(Rule::PanicPath, "panic! on sim-critical library path");
        }
        if next.map(|n| n.is_punct("!")).unwrap_or(false) {
            match t.text.as_str() {
                "println" if t.kind == TokKind::Ident => {
                    hit(Rule::Println, "println! in library code")
                }
                "eprintln" if t.kind == TokKind::Ident => {
                    hit(Rule::Println, "eprintln! in library code")
                }
                "print" if t.kind == TokKind::Ident => hit(Rule::Println, "print! in library code"),
                "eprint" if t.kind == TokKind::Ident => {
                    hit(Rule::Println, "eprint! in library code")
                }
                "dbg" if t.kind == TokKind::Ident => hit(Rule::Println, "dbg! in library code"),
                _ => {}
            }
        }
    }

    // Structured rules (never fire in test-kind files by applicability).
    if applies(Rule::WildcardArm, ctx) && !in_test_file {
        for (line, detail) in exhaustiveness(toks, &marks, table) {
            raw.push(mk(Rule::WildcardArm, line, detail));
        }
    }
    if applies(Rule::FloatDet, ctx) && !in_test_file {
        for (line, detail) in float_det(toks, &marks) {
            raw.push(mk(Rule::FloatDet, line, detail));
        }
    }
    if applies(Rule::TimeUnit, ctx) && !in_test_file {
        for (line, detail) in time_unit(toks, &marks) {
            raw.push(mk(Rule::TimeUnit, line, detail));
        }
    }
    if applies(Rule::ShardSafety, ctx) && !in_test_file {
        for (line, detail) in shard_safety(rel_path, toks, &marks, table) {
            raw.push(mk(Rule::ShardSafety, line, detail));
        }
    }

    // Pragmas: emit bad-pragma findings, collect justified allows.
    let mut allows: Vec<(usize, String)> = Vec::new();
    for (line, comment) in &lexed.comments {
        for p in parse_pragmas(comment) {
            if Rule::from_id(&p.rule).is_none() {
                raw.push(mk(
                    Rule::BadPragma,
                    *line,
                    format!("pragma names unknown rule `{}`", p.rule),
                ));
            } else if !p.justified {
                raw.push(mk(
                    Rule::BadPragma,
                    *line,
                    format!(
                        "allow({0}) pragma has no justification \
                         (write `bm-lint: allow({0}): <reason>`)",
                        p.rule
                    ),
                ));
            } else {
                allows.push((*line as usize, p.rule));
            }
        }
    }

    raw.sort_by_key(|a| (a.line, a.rule));
    raw.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    for v in &mut raw {
        if v.rule != Rule::BadPragma
            && allows
                .iter()
                .any(|(l, rule)| rule == v.rule.id() && (*l == v.line || *l + 1 == v.line))
        {
            v.suppressed = true;
        }
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str, ctx: &FileCtx) -> Vec<Violation> {
        let mut table = SymbolTable::default();
        table.harvest("x.rs", &ctx.crate_id, &lex(src));
        scan_source("x.rs", src, ctx, &table)
    }

    fn active(src: &str, ctx: &FileCtx) -> Vec<Violation> {
        scan(src, ctx)
            .into_iter()
            .filter(|v| !v.suppressed)
            .collect()
    }

    fn lib_ctx() -> FileCtx {
        FileCtx::new("core", FileKind::Lib)
    }

    #[test]
    fn needles_in_comments_and_strings_do_not_fire() {
        let src = "// HashMap in a comment\nlet s = \"Instant::now()\";\n";
        assert!(active(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn idents_containing_needles_do_not_fire() {
        // The old substring masker flagged these.
        let src = "struct MyHashMapLike;\nfn print_lnish() {}\nlet systemtime_like = 1;\n";
        assert!(active(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn split_token_sequences_fire() {
        let src = "let t = Instant ::\n    now();\n";
        let v = active(src, &lib_ctx());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::WallClock);
    }

    #[test]
    fn cfg_test_regions_are_exempt_for_panic_rules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(active(src, &lib_ctx()).is_empty());
        let src2 = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        let v = active(src2, &lib_ctx());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::PanicPath);
    }

    #[test]
    fn pragma_on_same_or_previous_line_suppresses_with_flag() {
        let src = "use std::collections::HashMap; // bm-lint: allow(iter-order): lookup-only\n";
        let all = scan(src, &lib_ctx());
        assert_eq!(all.len(), 1);
        assert!(all[0].suppressed);
        let src2 = "// bm-lint: allow(iter-order): lookup-only\nuse std::collections::HashMap;\n";
        assert!(active(src2, &lib_ctx()).is_empty());
    }

    #[test]
    fn unjustified_pragma_does_not_suppress() {
        let src = "use std::collections::HashMap; // bm-lint: allow(iter-order)\n";
        let v = active(src, &lib_ctx());
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::IterOrder));
        assert!(rules.contains(&Rule::BadPragma));
    }

    #[test]
    fn wildcard_arm_only_for_watched_enums() {
        let src = "fn f(e: Effect) -> u8 {\n    match e {\n        Effect::A => 1,\n        _ => 0,\n    }\n}\n";
        let v = active(src, &FileCtx::new("testbed", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::WildcardArm);
        assert_eq!(v[0].line, 4);
        let benign =
            "fn f(x: u8) -> u8 {\n    match x {\n        1 => 1,\n        _ => 0,\n    }\n}\n";
        assert!(active(benign, &FileCtx::new("testbed", FileKind::Lib)).is_empty());
    }

    #[test]
    fn wildcard_names_unhandled_variants_from_definition() {
        let src = "enum Effect { Alpha, Beta, Gamma }\n\
                   fn f(e: Effect) -> u8 {\n    match e {\n        Effect::Alpha => 1,\n        _ => 0,\n    }\n}\n";
        let v = active(src, &FileCtx::new("testbed", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
        assert!(v[0].detail.contains("Beta, Gamma"), "{}", v[0].detail);
        assert!(!v[0].detail.contains("Alpha"));
    }

    #[test]
    fn catch_all_binding_is_flagged_like_wildcard() {
        let src = "enum Stage { A, B }\nfn f(s: Stage) -> u8 {\n    match s {\n        Stage::A => 1,\n        other => 0,\n    }\n}\n";
        let v = active(src, &FileCtx::new("sim", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
        assert!(v[0].detail.contains("catch-all binding"), "{}", v[0].detail);
        assert!(v[0].detail.contains("B"));
    }

    #[test]
    fn missing_arm_without_wildcard_is_reported_at_match() {
        // The compiler would reject this, but the analyzer sees it when
        // a variant is added to the definition after the match was
        // written (the cross-crate fixture case).
        let src = "enum FaultKind { X, Y, Z }\nfn f(k: FaultKind) -> u8 {\n    match k {\n        FaultKind::X => 1,\n        FaultKind::Y => 2,\n    }\n}\n";
        let v = active(src, &FileCtx::new("sim", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(
            v[0].detail.contains("missing variants: Z"),
            "{}",
            v[0].detail
        );
    }

    #[test]
    fn nested_payload_patterns_do_not_leak_into_arm_level() {
        // `Stage::…` inside an Effect payload must not register a Stage
        // frame, and the inner wildcard-free match stays clean.
        let src = "enum Effect { ScheduleAt, Done }\n\
                   fn f(e: Effect) -> u8 {\n    match e {\n        Effect::ScheduleAt { stage: Stage::Doorbell, .. } => 1,\n        Effect::Done => 2,\n    }\n}\n";
        assert!(active(src, &FileCtx::new("testbed", FileKind::Lib)).is_empty());
    }

    #[test]
    fn wildcard_in_nested_unwatched_match_is_clean() {
        let src = "fn f(e: Effect, n: u8) -> u8 {\n    match e {\n        Effect::A => match n {\n            1 => 1,\n            _ => 0,\n        },\n        Effect::B => 2,\n    }\n}\n";
        assert!(active(src, &FileCtx::new("testbed", FileKind::Lib)).is_empty());
    }

    #[test]
    fn watched_enum_in_arm_body_does_not_mark_outer_match() {
        let src = "fn f(x: u8) -> Effect {\n    match x {\n        1 => Effect::A,\n        _ => Effect::B,\n    }\n}\n";
        assert!(active(src, &FileCtx::new("testbed", FileKind::Lib)).is_empty());
    }

    #[test]
    fn guarded_underscore_is_not_a_catch_all() {
        let src = "fn f(e: Effect) -> u8 {\n    match e {\n        Effect::A => 1,\n        _ if cheap() => 2,\n        Effect::B => 3,\n    }\n}\n";
        assert!(active(src, &FileCtx::new("testbed", FileKind::Lib)).is_empty());
    }

    #[test]
    fn float_rules_fire_in_sim_critical_only() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        let v = active(src, &FileCtx::new("sim", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::FloatDet);
        assert!(active(src, &FileCtx::new("host", FileKind::Lib)).is_empty());
    }

    #[test]
    fn float_partial_cmp_and_fold_flagged_definitions_exempt() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b); }\n";
        let v = active(src, &FileCtx::new("sim", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("total_cmp"));
        // A trait-impl *definition* delegating to cmp is not a call.
        let def =
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { Some(self.cmp(other)) }\n";
        assert!(active(def, &FileCtx::new("sim", FileKind::Lib)).is_empty());
        let fold = "fn g(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, b| a + b) }\n";
        let v = active(fold, &FileCtx::new("sim", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("fold"));
    }

    #[test]
    fn float_literal_comparisons_exempt_zero_and_one() {
        let guard = "fn f(x: f64) -> bool { x > 0.0 && x != 1.0 }\n";
        assert!(active(guard, &FileCtx::new("sim", FileKind::Lib)).is_empty());
        let threshold = "fn f(x: f64) -> bool { x > 0.95 }\n";
        let v = active(threshold, &FileCtx::new("sim", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::FloatDet);
    }

    #[test]
    fn ns_to_float_cast_flagged_other_casts_exempt() {
        let bad = "fn f(lat_ns: u64) -> f64 { lat_ns as f64 / 1000.0 }\n";
        let v = active(bad, &FileCtx::new("ssd", FileKind::Lib));
        assert!(v
            .iter()
            .any(|v| v.rule == Rule::FloatDet && v.detail.contains("as_nanos_f64")));
        let ok = "fn f(count: u64) -> f64 { count as f64 }\n";
        assert!(active(ok, &FileCtx::new("ssd", FileKind::Lib)).is_empty());
    }

    #[test]
    fn time_unit_flags_literal_arithmetic_not_scaling() {
        let bad = "fn f(deadline_ns: u64) -> u64 { deadline_ns + 500 }\n";
        let v = active(bad, &FileCtx::new("sim", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::TimeUnit);
        // Scaling and zero-checks are fine.
        let ok = "fn f(t_ns: u64) -> bool { t_ns * 2 > other_ns && t_ns != 0 }\n";
        assert!(active(ok, &FileCtx::new("sim", FileKind::Lib)).is_empty());
    }

    #[test]
    fn from_nanos_large_literal_flagged() {
        let bad = "let d = SimDuration::from_nanos(5000);\n";
        let v = active(bad, &FileCtx::new("sim", FileKind::Lib));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::TimeUnit);
        let ok = "let d = SimDuration::from_nanos(750);\n";
        assert!(active(ok, &FileCtx::new("sim", FileKind::Lib)).is_empty());
    }

    #[test]
    fn shard_safety_statics_thread_locals_and_rc() {
        let src = "static REG: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n\
                   static TABLE: [u8; 4] = [0; 4];\n\
                   thread_local! { static TL: u32 = 0; }\n\
                   struct S { inner: Rc<RefCell<u32>> }\n";
        let v = active(src, &FileCtx::new("testbed", FileKind::Lib));
        let lines: Vec<usize> = v
            .iter()
            .filter(|v| v.rule == Rule::ShardSafety)
            .map(|v| v.line)
            .collect();
        assert_eq!(lines, vec![1, 3, 4], "{v:?}");
        // Not sim-critical → silent.
        assert!(active(src, &FileCtx::new("host", FileKind::Lib)).is_empty());
    }

    #[test]
    fn new_rules_suppressible_with_justified_pragma() {
        for (src, rule) in [
            (
                "// bm-lint: allow(float-determinism): order pinned by sorted keys\nfn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
                Rule::FloatDet,
            ),
            (
                "// bm-lint: allow(time-unit): protocol-defined 500ns hold-off\nfn f(t_ns: u64) -> u64 { t_ns + 500 }\n",
                Rule::TimeUnit,
            ),
            (
                "// bm-lint: allow(shard-safety): const lookup table, never written\nstatic T: AtomicU64 = AtomicU64::new(0);\n",
                Rule::ShardSafety,
            ),
            (
                "enum Effect { A, B }\nfn f(e: Effect) -> u8 {\n    match e {\n        Effect::A => 1,\n        // bm-lint: allow(wildcard-arm): forward-compat shim\n        _ => 0,\n    }\n}\n",
                Rule::WildcardArm,
            ),
        ] {
            let all = scan(src, &FileCtx::new("sim", FileKind::Lib));
            let ours: Vec<_> = all.iter().filter(|v| v.rule == rule).collect();
            assert_eq!(ours.len(), 1, "{rule:?}: {all:?}");
            assert!(ours[0].suppressed, "{rule:?} not suppressed");
            assert!(all.iter().all(|v| v.rule != Rule::BadPragma));
        }
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_id(r.id()), Some(r));
        }
        assert_eq!(Rule::from_id("nope"), None);
    }
}
