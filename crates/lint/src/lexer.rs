//! A dependency-free Rust tokenizer.
//!
//! Replaces the old `mask.rs` character-level masker: instead of
//! blanking literal contents and handing rules a per-line string to
//! substring-match, the lexer produces a real token stream (idents,
//! lifetimes, numeric literals with float/int kind, string/char
//! literals, multi-character operators) plus per-line comment text for
//! pragma parsing. Rules match token *sequences*, so `Instant :: now`
//! split across lines, `.unwrap ()` with interior whitespace, and
//! identifiers that merely *contain* a needle (`MyHashMapLike`) are all
//! classified correctly.
//!
//! The lexer fixes three edge-case families the old masker
//! misclassified (regression-pinned in `tests/lexer.rs`):
//!
//! * **raw strings vs. lifetimes** — `'r"x"` (a lifetime immediately
//!   followed by a string literal, as appears in `macro_rules!`
//!   matchers) was consumed as a raw string `r"…"`, swallowing
//!   following code;
//! * **escaped-quote char literals** — `'\''` left the closing quote
//!   behind as a phantom lifetime token;
//! * **nested block comments** — per-line comment text dropped the
//!   nested `*/` delimiter and emitted empty phantom comment entries
//!   for lines where a multi-line comment merely continued, so pragmas
//!   inside nested comments could be mis-attributed.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`match`, `enum`, `as`, names, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e9`, `2f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation / operator, possibly multi-character (`::`, `=>`).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text. Empty for `Str`/`Char` (contents are literal data
    /// the rules must never match against); for `Int`/`Float`, the
    /// digits without `_` separators or suffix (rules compare values).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// A lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, literal contents stripped.
    pub tokens: Vec<Tok>,
    /// Comment text by 1-based line: every comment that *covers* part
    /// of a line contributes its text for that line, so pragmas in
    /// line comments, block comments, and the interior lines of
    /// multi-line block comments are all findable by line.
    pub comments: Vec<(u32, String)>,
    /// Total number of source lines.
    pub lines: u32,
}

impl Lexed {
    /// All comment text attributed to `line`.
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &str> {
        self.comments
            .iter()
            .filter(move |(l, _)| *l == line)
            .map(|(_, t)| t.as_str())
    }
}

/// Multi-character operators, longest first so maximal munch holds.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Never fails: unrecognized bytes become single-char
/// `Punct` tokens, and unterminated literals/comments run to EOF (the
/// compiler rejects such files anyway; the lexer just stays sane).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            if c == '\n' || c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string();
            } else if let Some((prefix_len, hashes)) = self.raw_string_start() {
                self.raw_string(prefix_len, hashes);
            } else if c == 'b' && matches!(self.peek(1), Some('"') | Some('\'')) {
                // Byte string / byte char: consume the prefix, then the
                // literal proper.
                self.bump();
                if self.peek(0) == Some('"') {
                    self.string();
                } else {
                    self.char_or_lifetime();
                }
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c.is_ascii_digit() {
                self.number();
            } else if is_ident_start(c) {
                self.ident();
            } else {
                self.punct();
            }
        }
        self.out.lines = self.line;
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push((line, text));
    }

    /// Nested block comment; text is attributed per line so pragmas on
    /// interior lines of a multi-line comment resolve to their own
    /// line. Nested delimiters are preserved in the text.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        let mut seg = String::new();
        let mut seg_line = self.line;
        while depth > 0 {
            match self.peek(0) {
                None => break,
                Some('\n') => {
                    if !seg.trim().is_empty() {
                        self.out.comments.push((seg_line, std::mem::take(&mut seg)));
                    } else {
                        seg.clear();
                    }
                    self.bump();
                    seg_line = self.line;
                }
                Some('*') if self.peek(1) == Some('/') => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        seg.push_str("*/");
                    }
                }
                Some('/') if self.peek(1) == Some('*') => {
                    depth += 1;
                    seg.push_str("/*");
                    self.bump();
                    self.bump();
                }
                Some(c) => {
                    seg.push(c);
                    self.bump();
                }
            }
        }
        if !seg.trim().is_empty() {
            self.out.comments.push((seg_line, seg));
        }
    }

    /// A `"…"` string with escapes (the opening quote is current).
    fn string(&mut self) {
        let line = self.line;
        self.bump();
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '"' {
                break;
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// If the cursor starts a raw (byte) string literal, returns
    /// `(prefix_len_through_quote, hash_count)`.
    fn raw_string_start(&self) -> Option<(usize, u32)> {
        let mut j = 0usize;
        if self.peek(j) == Some('b') {
            j += 1;
        }
        if self.peek(j) != Some('r') {
            return None;
        }
        // `r` must begin the token: `var"` and `br` inside an ident are
        // handled by the ident path, and a preceding lifetime (`'r"x"`)
        // is handled by char_or_lifetime before we ever get here.
        j += 1;
        let mut hashes = 0u32;
        while self.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        if self.peek(j) == Some('"') {
            Some((j + 1, hashes))
        } else {
            None
        }
    }

    fn raw_string(&mut self, prefix_len: usize, hashes: u32) {
        let line = self.line;
        for _ in 0..prefix_len {
            self.bump();
        }
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes as usize {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char
    /// literal). The opening `'` is current. Rust's rule: a char
    /// literal always has a closing quote; a lifetime is `'` + ident
    /// with no closing quote.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume the escape, then
                // everything up to and including the closing quote
                // (covers \' \\ \xNN \u{…}).
                self.bump();
                self.bump(); // the escape selector char (', \, n, x, u, …)
                while let Some(c) = self.peek(0) {
                    if c == '\'' {
                        self.bump();
                        break;
                    }
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line);
            }
            Some(c) if self.peek(1) == Some('\'') => {
                // 'x' — a one-char literal (any char, incl. '/' or '"').
                let _ = c;
                self.bump();
                self.bump();
                self.push(TokKind::Char, String::new(), line);
            }
            Some(c) if is_ident_start(c) => {
                // A lifetime: consume the ident. (If it were a char
                // literal the previous arm would have taken it.)
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokKind::Lifetime, text, line);
            }
            _ => {
                // Stray quote (invalid Rust); emit as punctuation.
                self.push(TokKind::Punct, "'".to_string(), line);
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut kind = TokKind::Int;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b')) {
            // Radix literal: 0x/0o/0b digits (+ `_`), then a suffix.
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            // Value rarely matters for radix literals; keep it empty.
            self.push(TokKind::Int, String::new(), line);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: a `.` followed by a digit (or by nothing
        // ident-like — `1.` is a float, `1..2` a range, `1.max` a
        // method call).
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    kind = TokKind::Float;
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() {
                            text.push(c);
                            self.bump();
                        } else if c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    kind = TokKind::Float;
                    text.push('.');
                    self.bump();
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign = matches!(self.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if matches!(self.peek(digit_at), Some(c) if c.is_ascii_digit()) {
                kind = TokKind::Float;
                text.push(self.bump().unwrap_or('e'));
                if sign {
                    text.push(self.bump().unwrap_or('+'));
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else if c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Suffix (`u64`, `f64`, …) — a float suffix flips the kind.
        if matches!(self.peek(0), Some(c) if is_ident_start(c)) {
            let mut suffix = String::new();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                suffix.push(c);
                self.bump();
            }
            if suffix == "f32" || suffix == "f64" {
                kind = TokKind::Float;
            }
        }
        self.push(kind, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Raw identifier `r#match`: the ident path never sees it (the
        // raw-string probe requires a quote after the hashes), so `r`
        // followed by `#` must be glued here.
        if text == "r"
            && self.peek(0) == Some('#')
            && matches!(self.peek(1), Some(c) if is_ident_start(c))
        {
            self.bump(); // '#'
            text.clear();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        for op in MULTI_PUNCT {
            if self
                .chars
                .get(self.i..self.i + op.len())
                .map(|w| w.iter().collect::<String>() == **op)
                .unwrap_or(false)
            {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokKind::Punct, (*op).to_string(), line);
                return;
            }
        }
        let c = self.bump().unwrap_or(' ');
        self.push(TokKind::Punct, c.to_string(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_ops_and_lines() {
        let l = lex("let x = a::b;\nx += 1;");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", "::", "b", ";", "x", "+=", "1", ";"]
        );
        assert_eq!(l.tokens[0].line, 1);
        assert_eq!(l.tokens[7].line, 2);
    }

    #[test]
    fn string_contents_never_tokenize() {
        let toks = kinds(r#"let s = "Instant::now() { HashMap }";"#);
        assert!(toks.iter().all(|(_, t)| t != "HashMap" && t != "Instant"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_close_on_matching_hashes() {
        let toks = kinds(r###"let s = r#"thread_rng "inner" }"#; fin();"###);
        assert!(toks.iter().all(|(_, t)| t != "thread_rng"));
        assert!(toks.iter().any(|(_, t)| t == "fin"));
    }

    #[test]
    fn lifetime_then_string_is_not_a_raw_string() {
        // The old masker consumed `'r"x" swallowed` as a raw string.
        let toks = kinds(r#"m!('r"x" swallowed);"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "r"));
        assert!(toks.iter().any(|(_, t)| t == "swallowed"));
    }

    #[test]
    fn escaped_quote_char_literal_has_no_phantom_lifetime() {
        // The old masker left the closing quote of '\'' behind.
        let l = lex(r"let q = '\''; let h = x;");
        assert!(l.tokens.iter().all(|t| t.kind != TokKind::Lifetime));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
        assert!(l.tokens.iter().any(|t| t.is_ident("h")));
    }

    #[test]
    fn char_literals_with_slashes_do_not_open_comments() {
        let l = lex("let a = ['/', '/']; let live = 1;");
        assert!(l.tokens.iter().any(|t| t.is_ident("live")));
        assert!(l.comments.is_empty());
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments_attribute_text_per_line() {
        let l = lex("a();\n/* one\n two /* nested */ end */ b();\nc();");
        assert!(l.tokens.iter().any(|t| t.is_ident("b")));
        assert!(l.tokens.iter().any(|t| t.is_ident("c")));
        let line2: Vec<&str> = l.comments_on(2).collect();
        assert_eq!(line2, vec![" one"]);
        let line3: Vec<&str> = l.comments_on(3).collect();
        assert_eq!(line3.len(), 1);
        // The nested delimiters survive in the text.
        assert!(line3[0].contains("/* nested */"));
        // No phantom empty comments on code-only lines.
        assert!(l.comments_on(1).next().is_none());
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let toks = kinds("1 + 2.5 - 1e9 * 0xff / 3f64 % 1_000u64 .. 7.max(1.)");
        let floats = toks.iter().filter(|(k, _)| *k == TokKind::Float).count();
        let ints = toks.iter().filter(|(k, _)| *k == TokKind::Int).count();
        assert_eq!(floats, 4, "{toks:?}"); // 2.5, 1e9, 3f64, 1.
        assert_eq!(ints, 4, "{toks:?}"); // 1, 0xff, 1_000u64, 7
        assert!(toks.iter().any(|(_, t)| t == "1000"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks =
            kinds("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; matches!(c, '0'..='9') }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 4);
        // The brace in the char literal never tokenizes.
        let opens = toks.iter().filter(|(_, t)| t == "{").count();
        let closes = toks.iter().filter(|(_, t)| t == "}").count();
        assert_eq!(opens, 1);
        assert_eq!(closes, 1);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#match = 1; r#true");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "match"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "true"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"HashMap"; let c = b'/'; let r = br#"x"#;"##);
        assert!(toks.iter().all(|(_, t)| t != "HashMap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn line_comments_collect_text() {
        let l = lex("let x = 1; // HashMap here\nlet y = 2;");
        assert_eq!(l.comments, vec![(1, " HashMap here".to_string())]);
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
    }
}
