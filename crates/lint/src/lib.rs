//! `bm-lint`: determinism & simulation-safety static analysis for the
//! BM-Store workspace.
//!
//! The whole card — BMS-Engine pipeline, BMS-Controller, fault plans,
//! telemetry — is a *deterministic* discrete-event simulation: same
//! seed, same bytes (the property the figure pipeline byte-compares).
//! Nothing in the compiler enforces that, so this crate does. It is a
//! hand-rolled two-pass token-stream analyzer in the spirit of the
//! vendored `crates/compat` subsets: no dependencies, no proc macros,
//! no network. Pass 1 lexes every workspace file ([`lexer`]) and
//! builds a cross-crate symbol table ([`symbols`]: enum variants,
//! statics, `thread_local!`s); pass 2 runs the rules over each file's
//! token stream with that table in scope:
//!
//! | id | rule |
//! |----|------|
//! | `wall-clock`         | no `Instant::now`/`SystemTime` outside `compat`/`bench`/`prof` |
//! | `iter-order`         | no `HashMap`/`HashSet` in sim-critical crates |
//! | `unseeded-rng`       | no `thread_rng`/`rand::random`/`OsRng` outside `compat` |
//! | `panic-path`         | no `unwrap`/`expect`/`panic!` in sim-critical library code |
//! | `println`            | no `println!`-family output from library crates |
//! | `wildcard-arm`       | matches over `Effect`/`FaultKind`/`BmsCommand`/`Stage` handle every variant (resolved cross-crate) |
//! | `float-determinism`  | no `partial_cmp`, order-sensitive float accumulation, or ns→float casts in sim-critical code |
//! | `time-unit`          | no raw integer literals mixed with `_ns` values without a named unit constructor |
//! | `shard-safety`       | no process-global/thread-affine state blocking parallel shards (ROADMAP 1) |
//!
//! Violations are suppressed per-site with
//! `// bm-lint: allow(<rule>): <justification>` (the justification is
//! mandatory; a bare pragma is itself a `bad-pragma` finding) and
//! budgeted per `(rule, crate)` by the committed `lint-baseline.toml`
//! ratchet: counts may shrink, never grow. Run
//! `cargo run -p bm-lint -- explain <rule>` for the failure mode each
//! rule guards against.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod selftest;
pub mod symbols;

pub use baseline::{count_violations, ratchet, Baseline, Counts, RatchetReport};
pub use rules::{scan_source, FileCtx, FileKind, Rule, Violation, SIM_CRITICAL};
pub use symbols::SymbolTable;

use std::path::{Path, PathBuf};

/// A workspace source file selected for scanning.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path.
    pub abs: PathBuf,
    /// Workspace-relative path (what reports print).
    pub rel: String,
    /// Crate + target-kind classification.
    pub ctx: FileCtx,
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Enumerates the `.rs` files to scan, classified by crate and target
/// kind. Deterministic order (sorted directory walks). Skips `target/`,
/// hidden directories, and this crate's own rule fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for top in ["src", "tests", "examples", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            // The lint crate's fixtures are deliberate violations.
            if name == "fixtures" && path.ends_with("crates/lint/tests/fixtures") {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let Some(ctx) = classify(&rel) else {
                continue;
            };
            out.push(SourceFile {
                abs: path,
                rel,
                ctx,
            });
        }
    }
    Ok(())
}

/// Classifies a workspace-relative path into `(crate, kind)`.
fn classify(rel: &str) -> Option<FileCtx> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_id, rest): (&str, &[&str]) = match parts.as_slice() {
        ["crates", "compat", _name, rest @ ..] => ("compat", rest),
        ["crates", name, rest @ ..] => (name, rest),
        ["src" | "tests" | "examples", ..] => ("bmstore", &parts[..]),
        _ => return None,
    };
    let kind = match rest {
        ["tests", ..] => FileKind::Test,
        ["benches", ..] => FileKind::Bench,
        ["examples", ..] => FileKind::Example,
        ["src", "bin", ..] => FileKind::Bin,
        ["src", "main.rs"] => FileKind::Bin,
        ["src", ..] => FileKind::Lib,
        _ => return None,
    };
    Some(FileCtx::new(crate_id, kind))
}

/// The result of scanning a workspace tree.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// All unsuppressed findings, in path/line order. These count
    /// against the baseline ratchet.
    pub violations: Vec<Violation>,
    /// Findings silenced by a justified pragma, in path/line order.
    /// Excluded from the ratchet; surfaced by `--format json`.
    pub suppressed: Vec<Violation>,
    /// Files scanned.
    pub files: usize,
}

/// Scans every workspace source file under `root`: pass 1 lexes all
/// files and builds the cross-crate [`SymbolTable`]; pass 2 runs the
/// rules per file with the table in scope.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn scan_workspace(root: &Path) -> std::io::Result<ScanResult> {
    let files = workspace_files(root)?;
    let sources: Vec<String> = files
        .iter()
        .map(|f| std::fs::read_to_string(&f.abs))
        .collect::<std::io::Result<_>>()?;
    let mut table = SymbolTable::default();
    for (f, src) in files.iter().zip(&sources) {
        table.harvest(&f.rel, &f.ctx.crate_id, &lexer::lex(src));
    }
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for (f, src) in files.iter().zip(&sources) {
        for v in scan_source(&f.rel, src, &f.ctx, &table) {
            if v.suppressed {
                suppressed.push(v);
            } else {
                violations.push(v);
            }
        }
    }
    let order =
        |a: &Violation, b: &Violation| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule));
    violations.sort_by(order);
    suppressed.sort_by(order);
    Ok(ScanResult {
        violations,
        suppressed,
        files: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_paths_to_crates_and_kinds() {
        let c = classify("crates/sim/src/engine.rs").unwrap();
        assert_eq!((c.crate_id.as_str(), c.kind), ("sim", FileKind::Lib));
        let c = classify("crates/bench/src/bin/fig08_baremetal.rs").unwrap();
        assert_eq!((c.crate_id.as_str(), c.kind), ("bench", FileKind::Bin));
        let c = classify("crates/testbed/tests/resilience.rs").unwrap();
        assert_eq!((c.crate_id.as_str(), c.kind), ("testbed", FileKind::Test));
        let c = classify("crates/compat/rand/src/lib.rs").unwrap();
        assert_eq!((c.crate_id.as_str(), c.kind), ("compat", FileKind::Lib));
        let c = classify("src/lib.rs").unwrap();
        assert_eq!((c.crate_id.as_str(), c.kind), ("bmstore", FileKind::Lib));
        let c = classify("tests/resilience.rs").unwrap();
        assert_eq!((c.crate_id.as_str(), c.kind), ("bmstore", FileKind::Test));
        let c = classify("crates/workloads/examples/apps.rs").unwrap();
        assert_eq!(
            (c.crate_id.as_str(), c.kind),
            ("workloads", FileKind::Example)
        );
    }
}
