//! Source masking: strip comments and literal contents from Rust source
//! so the rule engine can match needles without false positives from
//! strings, doc examples, or commented-out code.
//!
//! The masker is a single character-level pass that understands line
//! comments, nested block comments, string literals (with escapes),
//! raw strings (`r"…"`, `r#"…"#`, any number of `#`s, with optional `b`
//! prefix), and char literals vs. lifetimes. Comment *text* is kept
//! separately per line because `bm-lint` pragmas live in comments.

/// One source line after masking.
#[derive(Debug, Clone, Default)]
pub struct MaskedLine {
    /// The code with comments removed and literal contents blanked to
    /// spaces (quotes are kept so the line stays visually parseable).
    pub code: String,
    /// Text of every comment that begins on this line.
    pub comments: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    /// Nested depth of `/* … */`.
    BlockComment(u32),
    /// Inside `"…"`.
    Str,
    /// Inside a raw string; the payload is the number of `#`s.
    RawStr(u32),
}

/// Masks `src` into per-line code + comment text.
pub fn mask_source(src: &str) -> Vec<MaskedLine> {
    let bytes: Vec<char> = src.chars().collect();
    let mut lines: Vec<MaskedLine> = Vec::new();
    let mut cur = MaskedLine::default();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let mut escaped = false;
    let mut i = 0usize;

    macro_rules! end_line {
        () => {{
            if !comment.is_empty() {
                cur.comments.push(std::mem::take(&mut comment));
            }
            lines.push(std::mem::take(&mut cur));
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            match mode {
                Mode::LineComment => {
                    mode = Mode::Code;
                    cur.comments.push(std::mem::take(&mut comment));
                }
                Mode::BlockComment(_) => {
                    // Keep collecting into the same comment buffer, but
                    // attribute the text gathered so far to this line.
                    cur.comments.push(comment.clone());
                    comment.clear();
                }
                _ => {}
            }
            end_line!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&'/') {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                    escaped = false;
                    i += 1;
                } else if let Some(hashes) = raw_string_start(&bytes, i) {
                    // Emit the prefix so columns stay roughly aligned.
                    cur.code.push_str("r\"");
                    mode = Mode::RawStr(hashes.1);
                    i = hashes.0;
                } else if c == '\'' {
                    // Char literal vs. lifetime.
                    if bytes.get(i + 1) == Some(&'\\') {
                        // '\x7f' / '\n' / '\'' — skip to closing quote.
                        cur.code.push_str("' '");
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != '\'' {
                            j += 1;
                        }
                        i = j + 1;
                    } else if bytes.get(i + 2) == Some(&'\'') && bytes.get(i + 1) != Some(&'\'') {
                        cur.code.push_str("' '");
                        i += 3;
                    } else {
                        // A lifetime such as `'a` — keep the tick.
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        mode = Mode::Code;
                        cur.comments.push(std::mem::take(&mut comment));
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(depth + 1);
                    comment.push_str("/*");
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if escaped {
                    escaped = false;
                    cur.code.push(' ');
                } else if c == '\\' {
                    escaped = true;
                    cur.code.push(' ');
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Code;
                } else {
                    cur.code.push(' ');
                }
                i += 1;
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes, i, hashes) {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    end_line!();
    lines
}

/// If position `i` starts a raw-string literal (`r"`, `r#"`, `br##"`,
/// …), returns `(index_after_opening_quote, hash_count)`.
fn raw_string_start(bytes: &[char], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    // `r` must not be the tail of an identifier (`for"` cannot occur,
    // but `var"` style identifiers would fool a naive check).
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        Some((j + 1, hashes))
    } else {
        None
    }
}

/// Whether the `"` at position `i` closes a raw string with `hashes` `#`s.
fn closes_raw(bytes: &[char], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if bytes.get(i + 1 + k) != Some(&'#') {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_keeps_text() {
        let out = mask_source("let x = 1; // HashMap here\nlet y = 2;");
        assert_eq!(out.len(), 2);
        assert!(!out[0].code.contains("HashMap"));
        assert_eq!(out[0].comments, vec![" HashMap here".to_string()]);
        assert_eq!(out[1].code, "let y = 2;");
    }

    #[test]
    fn blanks_string_contents() {
        let out = mask_source(r#"let s = "Instant::now() { } \" quote";"#);
        assert!(!out[0].code.contains("Instant"));
        assert!(!out[0].code.contains('{'));
        assert!(out[0].code.starts_with("let s = \""));
        assert!(out[0].code.ends_with("\";"));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let src = "let s = r#\"thread_rng \"inner\" }\"#; /* a /* nested */ HashMap */ fin();";
        let out = mask_source(src);
        assert!(!out[0].code.contains("thread_rng"));
        assert!(!out[0].code.contains("HashMap"));
        assert!(out[0].code.contains("fin();"));
        assert_eq!(out[0].comments.len(), 1);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let out = mask_source("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; }");
        // The brace inside the char literal must not leak into code.
        let opens = out[0].code.matches('{').count();
        let closes = out[0].code.matches('}').count();
        assert_eq!(opens, 1);
        assert_eq!(closes, 1);
        assert!(out[0].code.contains("<'a>"));
    }

    #[test]
    fn multiline_block_comment_attributes_per_line() {
        let out = mask_source("a();\n/* one\ntwo */ b();\nc();");
        assert_eq!(out[1].comments, vec![" one".to_string()]);
        assert!(out[2].code.contains("b();"));
        assert_eq!(out[2].comments, vec!["two ".to_string()]);
    }
}
