//! The embedded fixture suite behind `bm-lint self-test`.
//!
//! Every rule fixture under `tests/fixtures/` is compiled into the
//! binary with `include_str!`, together with the exact
//! `(rule, line, suppressed)` triples it must produce. The integration
//! tests run the same table (so the expectations live in one place),
//! and the installed binary can re-verify its own engine on any machine
//! — a deployed lint whose tokenizer regressed fails loudly instead of
//! silently passing a broken tree.

use crate::lexer::lex;
use crate::rules::{scan_source, FileCtx, FileKind};
use crate::symbols::SymbolTable;

/// One fixture case: scan `file` as a `Lib` file of `crate_id`, with
/// `companions` (other fixture files, with their own crate ids)
/// harvested into the symbol table first — that is how the cross-crate
/// `xws/` workspace resolves enums across a crate boundary.
pub struct Case {
    /// Fixture file name (path under `tests/fixtures/`).
    pub file: &'static str,
    /// Crate the fixture pretends to live in.
    pub crate_id: &'static str,
    /// Companion fixtures harvested into the symbol table: `(file,
    /// crate_id)`.
    pub companions: &'static [(&'static str, &'static str)],
    /// Expected findings: `(rule id, line, suppressed)`.
    pub expected: &'static [(&'static str, usize, bool)],
}

/// Embedded fixture sources, by file name.
const SOURCES: &[(&str, &str)] = &[
    (
        "wall_clock_bad.rs",
        include_str!("../tests/fixtures/wall_clock_bad.rs"),
    ),
    (
        "wall_clock_allowed.rs",
        include_str!("../tests/fixtures/wall_clock_allowed.rs"),
    ),
    (
        "iter_order_bad.rs",
        include_str!("../tests/fixtures/iter_order_bad.rs"),
    ),
    (
        "iter_order_allowed.rs",
        include_str!("../tests/fixtures/iter_order_allowed.rs"),
    ),
    (
        "unseeded_rng_bad.rs",
        include_str!("../tests/fixtures/unseeded_rng_bad.rs"),
    ),
    (
        "unseeded_rng_allowed.rs",
        include_str!("../tests/fixtures/unseeded_rng_allowed.rs"),
    ),
    (
        "panic_path_bad.rs",
        include_str!("../tests/fixtures/panic_path_bad.rs"),
    ),
    (
        "panic_path_allowed.rs",
        include_str!("../tests/fixtures/panic_path_allowed.rs"),
    ),
    (
        "println_bad.rs",
        include_str!("../tests/fixtures/println_bad.rs"),
    ),
    (
        "println_allowed.rs",
        include_str!("../tests/fixtures/println_allowed.rs"),
    ),
    (
        "wildcard_arm_bad.rs",
        include_str!("../tests/fixtures/wildcard_arm_bad.rs"),
    ),
    (
        "wildcard_arm_allowed.rs",
        include_str!("../tests/fixtures/wildcard_arm_allowed.rs"),
    ),
    (
        "float_det_bad.rs",
        include_str!("../tests/fixtures/float_det_bad.rs"),
    ),
    (
        "float_det_allowed.rs",
        include_str!("../tests/fixtures/float_det_allowed.rs"),
    ),
    (
        "time_unit_bad.rs",
        include_str!("../tests/fixtures/time_unit_bad.rs"),
    ),
    (
        "time_unit_allowed.rs",
        include_str!("../tests/fixtures/time_unit_allowed.rs"),
    ),
    (
        "shard_safety_bad.rs",
        include_str!("../tests/fixtures/shard_safety_bad.rs"),
    ),
    (
        "shard_safety_allowed.rs",
        include_str!("../tests/fixtures/shard_safety_allowed.rs"),
    ),
    (
        "pragma_bad.rs",
        include_str!("../tests/fixtures/pragma_bad.rs"),
    ),
    (
        "masked_needles.rs",
        include_str!("../tests/fixtures/masked_needles.rs"),
    ),
    (
        "lexer_edge.rs",
        include_str!("../tests/fixtures/lexer_edge.rs"),
    ),
    (
        "xws/effects_def.rs",
        include_str!("../tests/fixtures/xws/effects_def.rs"),
    ),
    (
        "xws/match_effects.rs",
        include_str!("../tests/fixtures/xws/match_effects.rs"),
    ),
    (
        "xws/match_effects_wildcard.rs",
        include_str!("../tests/fixtures/xws/match_effects_wildcard.rs"),
    ),
];

/// The fixture expectation table — the single source of truth shared by
/// `bm-lint self-test` and `tests/rules.rs`.
pub const CASES: &[Case] = &[
    Case {
        file: "wall_clock_bad.rs",
        crate_id: "core",
        companions: &[],
        expected: &[("wall-clock", 5, false), ("wall-clock", 6, false)],
    },
    Case {
        file: "wall_clock_allowed.rs",
        crate_id: "core",
        companions: &[],
        expected: &[("wall-clock", 4, true)],
    },
    // The same clock-reading source is clean inside the sanctioned
    // wall-clock profiler crate (bm-prof exemption, like compat/bench).
    Case {
        file: "wall_clock_bad.rs",
        crate_id: "prof",
        companions: &[],
        expected: &[],
    },
    Case {
        file: "iter_order_bad.rs",
        crate_id: "ssd",
        companions: &[],
        expected: &[
            ("iter-order", 2, false),
            ("iter-order", 5, false),
            ("iter-order", 6, false),
        ],
    },
    Case {
        file: "iter_order_allowed.rs",
        crate_id: "ssd",
        companions: &[],
        expected: &[("iter-order", 4, true)],
    },
    Case {
        file: "unseeded_rng_bad.rs",
        crate_id: "workloads",
        companions: &[],
        expected: &[("unseeded-rng", 3, false), ("unseeded-rng", 4, false)],
    },
    Case {
        file: "unseeded_rng_allowed.rs",
        crate_id: "workloads",
        companions: &[],
        expected: &[("unseeded-rng", 4, true)],
    },
    Case {
        file: "panic_path_bad.rs",
        crate_id: "nvme",
        companions: &[],
        expected: &[
            ("panic-path", 3, false),
            ("panic-path", 4, false),
            ("panic-path", 6, false),
        ],
    },
    Case {
        file: "panic_path_allowed.rs",
        crate_id: "nvme",
        companions: &[],
        expected: &[("panic-path", 4, true)],
    },
    Case {
        file: "println_bad.rs",
        crate_id: "host",
        companions: &[],
        expected: &[("println", 3, false), ("println", 4, false)],
    },
    Case {
        file: "println_allowed.rs",
        crate_id: "host",
        companions: &[],
        expected: &[("println", 4, true)],
    },
    Case {
        file: "wildcard_arm_bad.rs",
        crate_id: "testbed",
        companions: &[],
        expected: &[("wildcard-arm", 5, false)],
    },
    Case {
        file: "wildcard_arm_allowed.rs",
        crate_id: "testbed",
        companions: &[],
        expected: &[("wildcard-arm", 6, true)],
    },
    Case {
        file: "float_det_bad.rs",
        crate_id: "sim",
        companions: &[],
        expected: &[
            ("float-determinism", 3, false),
            ("float-determinism", 6, false),
            ("float-determinism", 9, false),
            ("float-determinism", 12, false),
        ],
    },
    Case {
        file: "float_det_allowed.rs",
        crate_id: "sim",
        companions: &[],
        expected: &[("float-determinism", 4, true)],
    },
    Case {
        file: "time_unit_bad.rs",
        crate_id: "sim",
        companions: &[],
        expected: &[("time-unit", 3, false), ("time-unit", 6, false)],
    },
    Case {
        file: "time_unit_allowed.rs",
        crate_id: "sim",
        companions: &[],
        expected: &[("time-unit", 4, true)],
    },
    Case {
        file: "shard_safety_bad.rs",
        crate_id: "testbed",
        companions: &[],
        expected: &[
            ("shard-safety", 5, false),
            ("shard-safety", 7, false),
            ("shard-safety", 8, false),
            ("shard-safety", 12, false),
        ],
    },
    Case {
        file: "shard_safety_allowed.rs",
        crate_id: "testbed",
        companions: &[],
        expected: &[("shard-safety", 5, true)],
    },
    Case {
        file: "pragma_bad.rs",
        crate_id: "core",
        companions: &[],
        expected: &[
            ("bad-pragma", 3, false),
            ("panic-path", 4, false),
            ("bad-pragma", 5, false),
            ("panic-path", 6, false),
        ],
    },
    Case {
        file: "masked_needles.rs",
        crate_id: "core",
        companions: &[],
        expected: &[],
    },
    Case {
        file: "lexer_edge.rs",
        crate_id: "core",
        companions: &[],
        expected: &[],
    },
    Case {
        file: "xws/effects_def.rs",
        crate_id: "sim",
        companions: &[],
        expected: &[],
    },
    Case {
        file: "xws/match_effects.rs",
        crate_id: "testbed",
        companions: &[("xws/effects_def.rs", "sim")],
        expected: &[("wildcard-arm", 5, false)],
    },
    Case {
        file: "xws/match_effects_wildcard.rs",
        crate_id: "testbed",
        companions: &[("xws/effects_def.rs", "sim")],
        expected: &[("wildcard-arm", 6, false)],
    },
];

/// Looks up an embedded fixture source.
pub fn source(file: &str) -> Option<&'static str> {
    SOURCES
        .iter()
        .find(|(name, _)| *name == file)
        .map(|(_, src)| *src)
}

/// Runs one case, returning the mismatches (empty = pass).
pub fn run_case(case: &Case) -> Vec<String> {
    let Some(src) = source(case.file) else {
        return vec![format!("{}: fixture source not embedded", case.file)];
    };
    let mut table = SymbolTable::default();
    for (file, crate_id) in case.companions {
        match source(file) {
            Some(companion) => table.harvest(file, crate_id, &lex(companion)),
            None => return vec![format!("{}: companion {} not embedded", case.file, file)],
        }
    }
    let ctx = FileCtx::new(case.crate_id, FileKind::Lib);
    table.harvest(case.file, case.crate_id, &lex(src));
    let got: Vec<(String, usize, bool)> = scan_source(case.file, src, &ctx, &table)
        .into_iter()
        .map(|v| (v.rule.id().to_string(), v.line, v.suppressed))
        .collect();
    let want: Vec<(String, usize, bool)> = case
        .expected
        .iter()
        .map(|(r, l, s)| (r.to_string(), *l, *s))
        .collect();
    if got == want {
        return Vec::new();
    }
    vec![format!(
        "{} (as crate `{}`):\n  expected {:?}\n  got      {:?}",
        case.file, case.crate_id, want, got
    )]
}

/// Runs the whole suite. `Ok` carries a summary line; `Err` carries the
/// mismatch report.
pub fn run() -> Result<String, String> {
    let mut failures = Vec::new();
    for case in CASES {
        failures.extend(run_case(case));
    }
    if failures.is_empty() {
        Ok(format!(
            "self-test OK: {} fixtures, {} expectations",
            CASES.len(),
            CASES.iter().map(|c| c.expected.len()).sum::<usize>()
        ))
    } else {
        Err(format!(
            "self-test FAILED ({}/{} fixtures):\n{}",
            failures.len(),
            CASES.len(),
            failures.join("\n")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_file_is_embedded_and_every_case_has_a_source() {
        for case in CASES {
            assert!(source(case.file).is_some(), "{} missing", case.file);
        }
    }

    #[test]
    fn suite_passes() {
        if let Err(report) = run() {
            panic!("{report}");
        }
    }
}
