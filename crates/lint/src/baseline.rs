//! The ratcheted baseline: existing debt may shrink, never grow.
//!
//! `lint-baseline.toml` is a tiny TOML subset — `[rule-id]` sections
//! with `crate = count` entries — parsed by hand so the lint tool stays
//! dependency-free. Missing entries mean zero, so a crate that is clean
//! today can never regress silently.

use crate::rules::{Rule, Violation};
use std::collections::BTreeMap;

/// Per-`(rule, crate)` violation counts. `BTreeMap` so serialization
/// and reports are deterministic.
pub type Counts = BTreeMap<(String, String), u64>;

/// Aggregates violations into baseline buckets.
pub fn count_violations(violations: &[Violation]) -> Counts {
    let mut counts = Counts::new();
    for v in violations {
        *counts
            .entry((v.rule.id().to_string(), v.crate_id.clone()))
            .or_insert(0) += 1;
    }
    counts
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// `(rule id, crate) -> allowed count`.
    pub counts: Counts,
}

impl Baseline {
    /// Allowed count for a bucket (absent = 0).
    pub fn allowed(&self, rule: &str, crate_id: &str) -> u64 {
        self.counts
            .get(&(rule.to_string(), crate_id.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Parses the `[section]` / `key = int` subset.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on unknown rule
    /// sections, bare keys outside a section, or non-integer values.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = Counts::new();
        let mut section: Option<String> = None;
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                if Rule::from_id(name).is_none() {
                    return Err(format!("line {}: unknown rule section [{name}]", no + 1));
                }
                section = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `crate = count`", no + 1));
            };
            let Some(rule) = section.clone() else {
                return Err(format!("line {}: entry outside a [rule] section", no + 1));
            };
            let count: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: count is not an integer", no + 1))?;
            counts.insert((rule, key.trim().to_string()), count);
        }
        Ok(Baseline { counts })
    }

    /// Serializes `counts` in the committed-file format. Zero-count
    /// buckets are omitted, except for `iter-order` in sim-critical
    /// crates, which are written explicitly: R2 at zero *is* the
    /// determinism contract, and the explicit zeros document it.
    pub fn serialize(counts: &Counts) -> String {
        let mut out = String::new();
        out.push_str(
            "# bm-lint ratcheted baseline.\n\
             # Counts are per (rule, crate); absent entries mean zero. CI fails when a\n\
             # count grows; shrink a count here when you pay down debt (or run\n\
             # `cargo run --release -p bm-lint -- tighten`). Never raise one by hand\n\
             # without a justified `bm-lint: allow(...)` alternative being impossible.\n",
        );
        for rule in Rule::ALL {
            out.push('\n');
            out.push_str(&format!("[{}]\n", rule.id()));
            if rule == Rule::ShardSafety {
                out.push_str(
                    "# Path to zero (blocks ROADMAP item 1, parallel shards): replace the\n\
                     # metrics/telemetry Rc<RefCell<…>> handles with per-shard sinks merged\n\
                     # at the barrier, then move chaos/testbed shared state behind &mut\n\
                     # World. Pragmas are acceptable only for state proven shard-confined.\n",
                );
            }
            let mut wrote = false;
            if rule == Rule::IterOrder {
                for cr in crate::rules::SIM_CRITICAL {
                    let n = counts
                        .get(&(rule.id().to_string(), (*cr).to_string()))
                        .copied()
                        .unwrap_or(0);
                    out.push_str(&format!("{cr} = {n}\n"));
                    wrote = true;
                }
            }
            for ((r, cr), n) in counts {
                if r == rule.id()
                    && *n > 0
                    && !(rule == Rule::IterOrder
                        && crate::rules::SIM_CRITICAL.contains(&cr.as_str()))
                {
                    out.push_str(&format!("{cr} = {n}\n"));
                    wrote = true;
                }
            }
            if !wrote {
                out.push_str("# clean\n");
            }
        }
        out
    }
}

/// A bucket whose count moved relative to the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Rule id.
    pub rule: String,
    /// Crate id.
    pub crate_id: String,
    /// Current count.
    pub current: u64,
    /// Baseline (allowed) count.
    pub allowed: u64,
}

/// The ratchet verdict.
#[derive(Debug, Clone, Default)]
pub struct RatchetReport {
    /// Buckets that grew — these fail CI.
    pub regressions: Vec<Delta>,
    /// Buckets that shrank — the baseline can be tightened.
    pub improvements: Vec<Delta>,
}

impl RatchetReport {
    /// Whether the tree passes the ratchet.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares current counts against the baseline.
pub fn ratchet(current: &Counts, baseline: &Baseline) -> RatchetReport {
    let mut report = RatchetReport::default();
    for ((rule, crate_id), &n) in current {
        let allowed = baseline.allowed(rule, crate_id);
        if n > allowed {
            report.regressions.push(Delta {
                rule: rule.clone(),
                crate_id: crate_id.clone(),
                current: n,
                allowed,
            });
        }
    }
    for ((rule, crate_id), &allowed) in &baseline.counts {
        let n = current
            .get(&(rule.clone(), crate_id.clone()))
            .copied()
            .unwrap_or(0);
        if n < allowed {
            report.improvements.push(Delta {
                rule: rule.clone(),
                crate_id: crate_id.clone(),
                current: n,
                allowed,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_of(entries: &[(&str, &str, u64)]) -> Counts {
        entries
            .iter()
            .map(|(r, c, n)| ((r.to_string(), c.to_string()), *n))
            .collect()
    }

    #[test]
    fn parse_round_trips_serialize() {
        let counts = counts_of(&[("panic-path", "core", 3), ("wall-clock", "host", 1)]);
        let text = Baseline::serialize(&counts);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.allowed("panic-path", "core"), 3);
        assert_eq!(parsed.allowed("wall-clock", "host"), 1);
        assert_eq!(parsed.allowed("panic-path", "ssd"), 0);
        // Explicit iter-order zeros survive the round trip.
        assert!(text.contains("[iter-order]"));
        assert!(text.contains("sim = 0"));
    }

    #[test]
    fn parse_rejects_unknown_rules_and_garbage() {
        assert!(Baseline::parse("[no-such-rule]\ncore = 1\n").is_err());
        assert!(Baseline::parse("core = 1\n").is_err());
        assert!(Baseline::parse("[panic-path]\ncore = many\n").is_err());
    }

    #[test]
    fn ratchet_flags_growth_and_improvement() {
        let base = Baseline {
            counts: counts_of(&[("panic-path", "core", 3), ("panic-path", "ssd", 2)]),
        };
        let current = counts_of(&[("panic-path", "core", 4), ("panic-path", "ssd", 1)]);
        let report = ratchet(&current, &base);
        assert!(!report.ok());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].crate_id, "core");
        assert_eq!(report.improvements.len(), 1);
        assert_eq!(report.improvements[0].crate_id, "ssd");
    }

    #[test]
    fn new_bucket_regresses_against_implicit_zero() {
        let base = Baseline::default();
        let current = counts_of(&[("wall-clock", "sim", 1)]);
        assert!(!ratchet(&current, &base).ok());
    }
}
