//! Pass 1: the workspace-wide symbol table.
//!
//! Before any rule runs, every workspace file is lexed once and
//! harvested for the symbols that cross-file rules need:
//!
//! * **enum definitions** with their variant lists — the
//!   enum-exhaustiveness rule resolves `match` arms in one crate
//!   against a definition in another;
//! * **`static` items** with their type tokens — the shard-safety rule
//!   flags process-global state with interior mutability;
//! * **`thread_local!` declarations** — per-thread state breaks the
//!   "one `World` per shard thread" model before it starts.
//!
//! The table is deterministic (BTreeMap, files visited in sorted
//! order) so reports and baselines never depend on walk order.

use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeMap;

/// An enum definition somewhere in the workspace.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name (last path segment).
    pub name: String,
    /// Crate the definition lives in.
    pub crate_id: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
}

/// A `static` item (pass-1 record; judged by the shard-safety rule).
#[derive(Debug, Clone)]
pub struct StaticDef {
    /// Item name.
    pub name: String,
    /// Crate the item lives in.
    pub crate_id: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Whether it is `static mut`.
    pub mutable: bool,
    /// The type's token texts, `=`/`;` exclusive.
    pub ty: Vec<String>,
}

/// A `thread_local!` declaration site.
#[derive(Debug, Clone)]
pub struct ThreadLocalDef {
    /// Crate the declaration lives in.
    pub crate_id: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
}

/// The cross-file symbol table rules run against.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Enum name → all definitions with that name (normally one; the
    /// exhaustiveness rule disambiguates collisions by variant set).
    pub enums: BTreeMap<String, Vec<EnumDef>>,
    /// Every `static` item, in (path, line) order.
    pub statics: Vec<StaticDef>,
    /// Every `thread_local!` site, in (path, line) order.
    pub thread_locals: Vec<ThreadLocalDef>,
}

impl SymbolTable {
    /// Resolves `name` to the definition best matching `seen` variants
    /// (ties and misses fall back to the first definition).
    pub fn resolve_enum(&self, name: &str, seen: &[String]) -> Option<&EnumDef> {
        let defs = self.enums.get(name)?;
        defs.iter()
            .max_by_key(|d| seen.iter().filter(|v| d.variants.contains(v)).count())
            .or_else(|| defs.first())
    }

    /// Harvests one lexed file into the table.
    pub fn harvest(&mut self, rel_path: &str, crate_id: &str, lexed: &Lexed) {
        let toks = &lexed.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_ident("enum") && !prev_is_path_sep(toks, i) {
                if let Some(next) = advance_enum(toks, i, rel_path, crate_id) {
                    self.enums
                        .entry(next.0.name.clone())
                        .or_default()
                        .push(next.0);
                    i = next.1;
                    continue;
                }
            } else if t.is_ident("static") && !prev_is_path_sep(toks, i) {
                if let Some((def, next)) = parse_static(toks, i, rel_path, crate_id) {
                    self.statics.push(def);
                    i = next;
                    continue;
                }
            } else if t.is_ident("thread_local")
                && toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
            {
                self.thread_locals.push(ThreadLocalDef {
                    crate_id: crate_id.to_string(),
                    path: rel_path.to_string(),
                    line: t.line,
                });
            }
            i += 1;
        }
    }
}

/// Whether `toks[i]` is preceded by `::` (a path segment, not a
/// keyword use).
fn prev_is_path_sep(toks: &[Tok], i: usize) -> bool {
    i > 0 && toks[i - 1].is_punct("::")
}

/// Parses `enum Name<…> { V1, V2(…), V3 {…} = d, … }` starting at the
/// `enum` keyword. Returns the definition and the index just past the
/// closing brace.
fn advance_enum(
    toks: &[Tok],
    at: usize,
    rel_path: &str,
    crate_id: &str,
) -> Option<(EnumDef, usize)> {
    let mut i = at + 1;
    let name_tok = toks.get(i)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let line = toks[at].line;
    i += 1;
    // Skip generics: count `<`/`>` (the lexer never emits `->`/`>>`
    // here except `>>` closing nested generics, which counts double).
    if toks.get(i).map(|t| t.is_punct("<")).unwrap_or(false) {
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            match t.text.as_str() {
                "<" | "<<" if t.kind == TokKind::Punct => depth += t.text.len() as i32,
                ">" | ">>" if t.kind == TokKind::Punct => depth -= t.text.len() as i32,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    // Skip a `where` clause.
    while let Some(t) = toks.get(i) {
        if t.is_punct("{") {
            break;
        }
        if t.is_punct(";") {
            return None;
        }
        i += 1;
    }
    if !toks.get(i)?.is_punct("{") {
        return None;
    }
    i += 1;
    let mut variants = Vec::new();
    let mut depth = 1i32; // depth of any bracket kind inside the body
    let mut expect_variant = true;
    while let Some(t) = toks.get(i) {
        match t.text.as_str() {
            "{" | "(" | "[" if t.kind == TokKind::Punct => depth += 1,
            "}" | ")" | "]" if t.kind == TokKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return Some((
                        EnumDef {
                            name,
                            crate_id: crate_id.to_string(),
                            path: rel_path.to_string(),
                            line,
                            variants,
                        },
                        i + 1,
                    ));
                }
            }
            "," if t.kind == TokKind::Punct && depth == 1 => expect_variant = true,
            "#" if t.kind == TokKind::Punct && depth == 1 => {
                // Skip the attribute's bracket group.
                i += 1;
                if toks.get(i).map(|t| t.is_punct("[")).unwrap_or(false) {
                    let mut d = 0i32;
                    while let Some(a) = toks.get(i) {
                        match a.text.as_str() {
                            "[" if a.kind == TokKind::Punct => d += 1,
                            "]" if a.kind == TokKind::Punct => d -= 1,
                            _ => {}
                        }
                        i += 1;
                        if d == 0 {
                            break;
                        }
                    }
                }
                continue;
            }
            _ => {
                if expect_variant && t.kind == TokKind::Ident && depth == 1 {
                    variants.push(t.text.clone());
                    expect_variant = false;
                }
            }
        }
        i += 1;
    }
    None
}

/// Parses `static [mut] NAME: Type = …;` starting at `static`.
fn parse_static(
    toks: &[Tok],
    at: usize,
    rel_path: &str,
    crate_id: &str,
) -> Option<(StaticDef, usize)> {
    let mut i = at + 1;
    let mutable = toks.get(i).map(|t| t.is_ident("mut")).unwrap_or(false);
    if mutable {
        i += 1;
    }
    let name_tok = toks.get(i)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `impl Trait for &'static …` style uses.
    }
    let name = name_tok.text.clone();
    i += 1;
    if !toks.get(i)?.is_punct(":") {
        return None;
    }
    i += 1;
    let mut ty = Vec::new();
    let mut depth = 0i32;
    while let Some(t) = toks.get(i) {
        if depth == 0 && (t.is_punct("=") || t.is_punct(";")) {
            break;
        }
        // `<<`/`>>` close two generic levels at once (`Mutex<Vec<u32>>`).
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokKind::Punct => depth -= 1,
            "<" | "<<" if t.kind == TokKind::Punct => depth += t.text.len() as i32,
            ">" | ">>" if t.kind == TokKind::Punct => depth -= t.text.len() as i32,
            _ => {}
        }
        if t.kind == TokKind::Ident || t.kind == TokKind::Punct {
            ty.push(t.text.clone());
        }
        i += 1;
    }
    Some((
        StaticDef {
            name,
            crate_id: crate_id.to_string(),
            path: rel_path.to_string(),
            line: toks[at].line,
            mutable,
            ty,
        },
        i,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn table_of(src: &str) -> SymbolTable {
        let mut t = SymbolTable::default();
        t.harvest("x.rs", "core", &lex(src));
        t
    }

    #[test]
    fn harvests_enum_variants_with_payloads() {
        let t = table_of(
            "#[derive(Debug)]\npub enum Effect {\n  ScheduleAt { at: SimTime, stage: Stage },\n  Forward(usize, u32),\n  #[doc = \"x\"]\n  Done,\n}\n",
        );
        let def = &t.enums["Effect"][0];
        assert_eq!(def.variants, vec!["ScheduleAt", "Forward", "Done"]);
        assert_eq!(def.line, 2);
    }

    #[test]
    fn harvests_generic_enums_and_discriminants() {
        let t = table_of("enum E<T: Clone, U = Vec<u8>> { A = 1, B(T), C { u: U } }");
        assert_eq!(t.enums["E"][0].variants, vec!["A", "B", "C"]);
    }

    #[test]
    fn nested_enum_in_fn_body_is_found_and_outer_scan_continues() {
        let t = table_of("fn f() { enum Inner { X, Y } }\nenum Outer { Z }");
        assert_eq!(t.enums["Inner"][0].variants, vec!["X", "Y"]);
        assert_eq!(t.enums["Outer"][0].variants, vec!["Z"]);
    }

    #[test]
    fn harvests_statics_and_thread_locals() {
        let t = table_of(
            "static TABLE: [u8; 4] = [0; 4];\npub static REG: Mutex<Vec<u32>> = Mutex::new(Vec::new());\nthread_local! { static TL: RefCell<u32> = RefCell::new(0); }\n",
        );
        assert_eq!(t.statics.len(), 3); // TABLE, REG, and TL inside the macro
        assert_eq!(t.statics[0].name, "TABLE");
        assert!(t.statics[1].ty.contains(&"Mutex".to_string()));
        assert_eq!(t.thread_locals.len(), 1);
        assert_eq!(t.thread_locals[0].line, 3);
    }

    #[test]
    fn static_lifetimes_are_not_static_items() {
        let t = table_of("fn f(x: &'static str) -> &'static [u8] { b\"\" }");
        assert!(t.statics.is_empty());
    }

    #[test]
    fn resolve_prefers_matching_variant_set() {
        let mut t = SymbolTable::default();
        t.harvest("a.rs", "a", &lex("enum Dup { A, B }"));
        t.harvest("b.rs", "b", &lex("enum Dup { X, Y }"));
        let d = t.resolve_enum("Dup", &["X".to_string()]).unwrap();
        assert_eq!(d.crate_id, "b");
    }
}
