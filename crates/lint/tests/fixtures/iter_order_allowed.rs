// R2 fixture: suppressed with a justified pragma.
fn allowed() {
    // bm-lint: allow(iter-order): keys are collected and sorted before any iteration below
    let m: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut keys: Vec<_> = m.keys().collect();
    keys.sort();
}
