// Negative fixture for the lexer edge cases the old char-level masker
// misclassified: raw strings, nested block comments, and char literals
// containing `/`. Every needle below is literal data — zero findings.
pub fn edges() -> usize {
    let raw = r#"HashMap "quoted" Instant::now() thread_rng()"#;
    let nested = 1; /* outer /* HashMap inner panic! */ still comment */
    let slash = '/';
    let quote = '\'';
    let bytes = br"rand::random()";
    raw.len() + nested + (slash as usize) + (quote as usize) + bytes.len()
}
