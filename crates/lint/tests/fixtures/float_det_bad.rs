// R7 fixture: float ordering/accumulation hazards in sim-critical code.
fn sum(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
fn cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}
fn thresh(x: f64) -> bool {
    x > 0.95
}
fn cast(lat_ns: u64) -> f64 {
    lat_ns as f64
}
