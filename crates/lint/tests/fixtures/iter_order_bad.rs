// R2 fixture: hash collections in a sim-critical crate.
use std::collections::HashMap;

struct S {
    by_id: HashMap<u64, u32>,
    seen: std::collections::HashSet<u64>,
}
