// R8 fixture: raw integer literals mixed with nanosecond values.
fn hold(deadline_ns: u64) -> u64 {
    deadline_ns + 500
}
fn wait() -> SimDuration {
    SimDuration::from_nanos(250_000)
}
