// R6 fixture: suppressed with a justified pragma.
fn allowed(k: FaultKind) -> u32 {
    match k {
        FaultKind::SsdDeath => 1,
        // bm-lint: allow(wildcard-arm): summary metric, every other kind intentionally counts as zero
        _ => 0,
    }
}
