// R3 fixture: OS-entropy randomness.
fn bad() -> u64 {
    let mut rng = rand::thread_rng();
    let x: u64 = rand::random();
    x
}
