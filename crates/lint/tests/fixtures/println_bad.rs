// R5 fixture: direct output from library code.
fn bad(v: u64) {
    println!("value = {v}");
    eprintln!("warning!");
}
