// bad-pragma fixture: pragmas that must not suppress anything.
fn nope(x: Option<u32>) -> u32 {
    // bm-lint: allow(panic-path)
    let a = x.unwrap();
    // bm-lint: allow(no-such-rule): justification present but rule unknown
    let b = x.expect("present");
    a + b
}
