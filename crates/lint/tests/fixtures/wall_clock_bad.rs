// R1 fixture: wall-clock reads in simulation code.
use std::time::Instant;

fn bad() -> u64 {
    let t0 = Instant::now();
    let wall = std::time::SystemTime::now();
    drop(wall);
    t0.elapsed().as_nanos() as u64
}
