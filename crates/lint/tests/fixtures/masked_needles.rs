// Negative fixture: needles in comments and strings must not fire.
// A comment mentioning HashMap, Instant::now(), thread_rng and panic!.
fn clean() -> &'static str {
    let s = "HashMap + Instant::now() + println! + thread_rng()";
    /* block comment: rand::random(), SystemTime, _ => swallowed */
    s
}
