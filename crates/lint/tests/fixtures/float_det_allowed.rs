// R7 fixture: suppressed with a justified pragma.
fn allowed(xs: &[f64]) -> f64 {
    // bm-lint: allow(float-determinism): summation order pinned by sorted tenant ids
    xs.iter().sum::<f64>()
}
