// R5 fixture: suppressed with a justified pragma.
fn allowed(v: u64) {
    // bm-lint: allow(println): documented CLI helper, only reachable from the binary target
    println!("value = {v}");
}
