// R9 fixture: process-global and thread-affine state.
use std::cell::RefCell;
use std::rc::Rc;

static REGISTRY: std::sync::Mutex<Vec<u32>> = std::sync::Mutex::new(Vec::new());

thread_local! {
    static SCRATCH: RefCell<Vec<u8>> = RefCell::new(Vec::new());
}

pub struct Shared {
    inner: Rc<RefCell<u32>>,
}
