// R3 fixture: suppressed with a justified pragma.
fn allowed() -> u64 {
    // bm-lint: allow(unseeded-rng): one-shot tool, output never compared across runs
    let x: u64 = rand::random();
    x
}
