// R8 fixture: suppressed with a justified pragma.
fn hold(deadline_ns: u64) -> u64 {
    // bm-lint: allow(time-unit): NVMe spec defines the 500ns doorbell hold-off in ns
    deadline_ns + 500
}
