// R1 fixture: suppressed with a justified pragma.
fn allowed() -> std::time::Duration {
    // bm-lint: allow(wall-clock): progress logging only, value never reaches the model
    let t0 = Instant::now();
    t0.elapsed()
}
