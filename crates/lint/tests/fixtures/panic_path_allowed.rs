// R4 fixture: suppressed with a justified pragma.
fn allowed(x: Option<u32>) -> u32 {
    // bm-lint: allow(panic-path): constructor asserts x is Some before this point
    x.expect("checked by constructor")
}
