// R6 fixture: a wildcard arm over a load-bearing enum.
fn bad(e: Effect) -> u32 {
    match e {
        Effect::Complete { .. } => 1,
        _ => 0,
    }
}
