// R4 fixture: aborts in sim-critical library code.
fn bad(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a != b {
        panic!("impossible");
    }
    a
}
