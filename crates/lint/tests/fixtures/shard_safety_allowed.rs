// R9 fixture: suppressed with a justified pragma.
use std::sync::atomic::AtomicU64;

// bm-lint: allow(shard-safety): debug-only tick counter, read by no sim path
static DEBUG_TICKS: AtomicU64 = AtomicU64::new(0);
