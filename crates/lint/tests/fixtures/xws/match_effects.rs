// Cross-crate fixture workspace, matching side: written before the
// `Trace` variant existed, with no wildcard — the analyzer must name
// the missing variant by resolving the definition from effects_def.rs.
pub fn apply(e: Effect) -> u8 {
    match e {
        Effect::ScheduleAt => 1,
        Effect::ForwardToSsd => 2,
        Effect::RaiseInterrupt => 3,
        Effect::ChargeCpu => 4,
    }
}
