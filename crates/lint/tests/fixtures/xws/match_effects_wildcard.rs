// Cross-crate fixture workspace: the wildcard arm must be reported
// with the concrete variants it hides, resolved from effects_def.rs.
pub fn apply(e: Effect) -> u8 {
    match e {
        Effect::ScheduleAt => 1,
        _ => 0,
    }
}
