// Cross-crate fixture workspace, defining side: the enum lives in
// `sim`; matches over it live in `testbed` (see match_effects*.rs).
// `Trace` was added after the non-wildcard match was written, which is
// exactly the drift the exhaustiveness rule exists to catch.
pub enum Effect {
    ScheduleAt,
    ForwardToSsd,
    RaiseInterrupt,
    ChargeCpu,
    Trace,
}
