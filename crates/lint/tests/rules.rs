//! Fixture-driven rule tests.
//!
//! The exact `(rule, line, suppressed)` expectations live in
//! `bm_lint::selftest::CASES` — the same table the installed binary
//! replays under `bm-lint self-test` — so this file drives that suite
//! and then adds what the embedded table cannot express: scoping checks
//! (same source, different crate/target), message-detail assertions
//! (the wildcard finding must *name* the hidden variants), and a
//! cross-crate exhaustiveness demonstration against the real tree.

use bm_lint::lexer::lex;
use bm_lint::selftest;
use bm_lint::{scan_source, FileCtx, FileKind, Rule, SymbolTable, Violation};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn scan_fixture(name: &str, ctx: &FileCtx) -> Vec<Violation> {
    let src = fixture(name);
    let mut table = SymbolTable::default();
    table.harvest(name, &ctx.crate_id, &lex(&src));
    scan_source(name, &src, ctx, &table)
        .into_iter()
        .filter(|v| !v.suppressed)
        .collect()
}

fn lib(crate_id: &str) -> FileCtx {
    FileCtx::new(crate_id, FileKind::Lib)
}

/// The embedded expectation table passes, and every on-disk fixture
/// matches its embedded copy (so `self-test` really tests what is
/// committed).
#[test]
fn fixture_suite_matches_expectation_table() {
    if let Err(report) = selftest::run() {
        panic!("{report}");
    }
    for case in selftest::CASES {
        let embedded = selftest::source(case.file).unwrap();
        assert_eq!(
            fixture(case.file),
            embedded,
            "{} drifted from its include_str! copy — rebuild bm-lint",
            case.file
        );
    }
}

#[test]
fn every_rule_has_a_fixture_case_and_an_explain_text() {
    for rule in Rule::ALL {
        assert!(!rule.explain().is_empty(), "{} has no explain", rule.id());
        assert_eq!(Rule::from_id(rule.id()), Some(rule));
        // bad-pragma is covered by pragma_bad.rs; every other rule must
        // appear in at least one expectation row.
        let covered = selftest::CASES
            .iter()
            .any(|c| c.expected.iter().any(|(id, _, _)| *id == rule.id()));
        assert!(covered, "{} has no fixture expectation", rule.id());
    }
}

#[test]
fn sim_critical_scoping_is_enforced_per_rule() {
    // iter-order: silent outside sim-critical crates and in test targets.
    assert!(scan_fixture("iter_order_bad.rs", &lib("workloads")).is_empty());
    assert!(scan_fixture("iter_order_bad.rs", &FileCtx::new("ssd", FileKind::Test)).is_empty());
    // panic-path: silent in bench crates and test targets.
    assert!(scan_fixture("panic_path_bad.rs", &lib("bench")).is_empty());
    assert!(scan_fixture("panic_path_bad.rs", &FileCtx::new("nvme", FileKind::Test)).is_empty());
    // println: binaries may print.
    assert!(scan_fixture("println_bad.rs", &FileCtx::new("host", FileKind::Bin)).is_empty());
    // unseeded-rng applies even in tests.
    let vs = scan_fixture("unseeded_rng_bad.rs", &FileCtx::new("sim", FileKind::Test));
    assert_eq!(vs.len(), 2, "{vs:#?}");
    assert!(vs.iter().all(|v| v.rule == Rule::UnseededRng));
    // The three new determinism rules are scoped to sim-critical code.
    assert!(scan_fixture("float_det_bad.rs", &lib("bench")).is_empty());
    assert!(scan_fixture("time_unit_bad.rs", &lib("workloads")).is_empty());
    assert!(scan_fixture("shard_safety_bad.rs", &lib("bench")).is_empty());
    assert!(scan_fixture("float_det_bad.rs", &FileCtx::new("sim", FileKind::Test)).is_empty());
}

/// The wildcard finding must name the concrete variants the `_` arm
/// hides, resolved from the enum definition in a *different* fixture
/// crate.
#[test]
fn cross_crate_wildcard_detail_names_hidden_variants() {
    let def = selftest::source("xws/effects_def.rs").unwrap();
    let src = selftest::source("xws/match_effects_wildcard.rs").unwrap();
    let mut table = SymbolTable::default();
    table.harvest("xws/effects_def.rs", "sim", &lex(def));
    table.harvest("xws/match_effects_wildcard.rs", "testbed", &lex(src));
    let vs = scan_source(
        "xws/match_effects_wildcard.rs",
        src,
        &lib("testbed"),
        &table,
    );
    assert_eq!(vs.len(), 1, "{vs:#?}");
    let detail = &vs[0].detail;
    for variant in ["ForwardToSsd", "RaiseInterrupt", "ChargeCpu", "Trace"] {
        assert!(detail.contains(variant), "{detail}");
    }
    assert!(detail.contains("effects_def.rs"), "{detail}");
}

/// A match with no wildcard that predates a newly added variant is
/// reported as missing exactly that variant.
#[test]
fn cross_crate_missing_arm_names_the_new_variant() {
    let def = selftest::source("xws/effects_def.rs").unwrap();
    let src = selftest::source("xws/match_effects.rs").unwrap();
    let mut table = SymbolTable::default();
    table.harvest("xws/effects_def.rs", "sim", &lex(def));
    table.harvest("xws/match_effects.rs", "testbed", &lex(src));
    let vs = scan_source("xws/match_effects.rs", src, &lib("testbed"), &table);
    assert_eq!(vs.len(), 1, "{vs:#?}");
    assert_eq!(vs[0].rule, Rule::WildcardArm);
    assert_eq!(vs[0].line, 5);
    assert!(
        vs[0].detail.contains("missing variants"),
        "{}",
        vs[0].detail
    );
    assert!(vs[0].detail.contains("Trace"), "{}", vs[0].detail);
    assert!(
        !vs[0].detail.contains("ScheduleAt"),
        "handled variant leaked into the missing list: {}",
        vs[0].detail
    );
}

/// The acceptance demo against the *real* tree: harvest the real
/// `Effect` definition from `crates/testbed`, synthesize a consumer in
/// `crates/chaos` territory with one arm deleted, and the analyzer must
/// name the deleted variant — across the crate boundary.
#[test]
fn real_tree_effect_match_with_deleted_arm_names_missing_variant() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.parent().unwrap().parent().unwrap();
    let def_path = root.join("crates/testbed/src/schemes/mod.rs");
    let def_src = std::fs::read_to_string(&def_path).unwrap();
    let mut table = SymbolTable::default();
    table.harvest(
        "crates/testbed/src/schemes/mod.rs",
        "testbed",
        &lex(&def_src),
    );
    let variants = table
        .enums
        .get("Effect")
        .and_then(|defs| defs.first())
        .expect("real Effect enum harvested from crates/testbed")
        .variants
        .clone();
    assert!(
        variants.len() >= 2,
        "Effect should have several variants: {variants:?}"
    );

    // Build a match that handles every variant but the last.
    let (last, rest) = variants.split_last().unwrap();
    let mut src = String::from("pub fn consume(e: Effect) -> u32 {\n    match e {\n");
    for (i, v) in rest.iter().enumerate() {
        src.push_str(&format!("        Effect::{v} {{ .. }} => {i},\n"));
    }
    src.push_str("    }\n}\n");
    let probe = "crates/chaos/src/probe.rs";
    table.harvest(probe, "chaos", &lex(&src));
    let vs = scan_source(probe, &src, &lib("chaos"), &table);
    let missing: Vec<_> = vs.iter().filter(|v| v.rule == Rule::WildcardArm).collect();
    assert_eq!(missing.len(), 1, "{vs:#?}");
    assert!(
        missing[0].detail.contains(last.as_str()),
        "deleted arm `{last}` not named in: {}",
        missing[0].detail
    );

    // Restore the arm (as a wildcard) and the finding flips to naming
    // what the wildcard hides.
    let wild = src.replace("    }\n}\n", "        _ => 99,\n    }\n}\n");
    let vs = scan_source(probe, &wild, &lib("chaos"), &table);
    let hidden: Vec<_> = vs.iter().filter(|v| v.rule == Rule::WildcardArm).collect();
    assert_eq!(hidden.len(), 1, "{vs:#?}");
    assert!(
        hidden[0].detail.contains(last.as_str()),
        "{}",
        hidden[0].detail
    );
}

/// Suppressed findings keep their pragma status (for `--format json`)
/// instead of disappearing.
#[test]
fn suppressed_findings_are_kept_with_status() {
    let src = fixture("float_det_allowed.rs");
    let mut table = SymbolTable::default();
    table.harvest("float_det_allowed.rs", "sim", &lex(&src));
    let vs = scan_source("float_det_allowed.rs", &src, &lib("sim"), &table);
    assert_eq!(vs.len(), 1, "{vs:#?}");
    assert!(vs[0].suppressed);
    assert_eq!(vs[0].rule, Rule::FloatDet);
}
