//! Fixture-driven rule tests: each known-bad snippet must produce the
//! exact rule id at the exact line, and each pragma-suppressed variant
//! must produce nothing.

use bm_lint::{scan_source, FileCtx, FileKind, Rule, Violation};

fn scan_fixture(name: &str, ctx: &FileCtx) -> Vec<Violation> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"));
    scan_source(name, &src, ctx)
}

fn lib(crate_id: &str) -> FileCtx {
    FileCtx::new(crate_id, FileKind::Lib)
}

fn hits(vs: &[Violation]) -> Vec<(&'static str, usize)> {
    vs.iter().map(|v| (v.rule.id(), v.line)).collect()
}

#[test]
fn wall_clock_bad_fires_at_exact_lines() {
    let vs = scan_fixture("wall_clock_bad.rs", &lib("core"));
    assert_eq!(
        hits(&vs),
        vec![("wall-clock", 5), ("wall-clock", 6)],
        "{vs:#?}"
    );
}

#[test]
fn wall_clock_pragma_suppresses() {
    let vs = scan_fixture("wall_clock_allowed.rs", &lib("core"));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn iter_order_bad_fires_at_exact_lines() {
    let vs = scan_fixture("iter_order_bad.rs", &lib("ssd"));
    assert_eq!(
        hits(&vs),
        vec![("iter-order", 2), ("iter-order", 5), ("iter-order", 6)],
        "{vs:#?}"
    );
}

#[test]
fn iter_order_only_applies_to_sim_critical_crates() {
    // The same source is clean in a non-sim-critical crate…
    let vs = scan_fixture("iter_order_bad.rs", &lib("workloads"));
    assert!(vs.is_empty(), "{vs:#?}");
    // …and in test targets of sim-critical crates.
    let vs = scan_fixture("iter_order_bad.rs", &FileCtx::new("ssd", FileKind::Test));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn iter_order_pragma_suppresses() {
    let vs = scan_fixture("iter_order_allowed.rs", &lib("ssd"));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn unseeded_rng_bad_fires_at_exact_lines() {
    let vs = scan_fixture("unseeded_rng_bad.rs", &lib("workloads"));
    assert_eq!(
        hits(&vs),
        vec![("unseeded-rng", 3), ("unseeded-rng", 4)],
        "{vs:#?}"
    );
}

#[test]
fn unseeded_rng_fires_even_in_tests() {
    let vs = scan_fixture("unseeded_rng_bad.rs", &FileCtx::new("sim", FileKind::Test));
    assert_eq!(vs.len(), 2, "{vs:#?}");
    assert!(vs.iter().all(|v| v.rule == Rule::UnseededRng));
}

#[test]
fn unseeded_rng_pragma_suppresses() {
    let vs = scan_fixture("unseeded_rng_allowed.rs", &lib("workloads"));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn panic_path_bad_fires_at_exact_lines() {
    let vs = scan_fixture("panic_path_bad.rs", &lib("nvme"));
    assert_eq!(
        hits(&vs),
        vec![("panic-path", 3), ("panic-path", 4), ("panic-path", 6)],
        "{vs:#?}"
    );
}

#[test]
fn panic_path_silent_outside_sim_critical_libs() {
    let vs = scan_fixture("panic_path_bad.rs", &lib("bench"));
    assert!(vs.is_empty(), "{vs:#?}");
    let vs = scan_fixture("panic_path_bad.rs", &FileCtx::new("nvme", FileKind::Test));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn panic_path_pragma_suppresses() {
    let vs = scan_fixture("panic_path_allowed.rs", &lib("nvme"));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn println_bad_fires_at_exact_lines() {
    let vs = scan_fixture("println_bad.rs", &lib("host"));
    assert_eq!(hits(&vs), vec![("println", 3), ("println", 4)], "{vs:#?}");
}

#[test]
fn println_allowed_in_binaries() {
    let vs = scan_fixture("println_bad.rs", &FileCtx::new("host", FileKind::Bin));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn println_pragma_suppresses() {
    let vs = scan_fixture("println_allowed.rs", &lib("host"));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn wildcard_arm_bad_fires_at_exact_line() {
    let vs = scan_fixture("wildcard_arm_bad.rs", &lib("testbed"));
    assert_eq!(hits(&vs), vec![("wildcard-arm", 5)], "{vs:#?}");
}

#[test]
fn wildcard_arm_pragma_suppresses() {
    let vs = scan_fixture("wildcard_arm_allowed.rs", &lib("testbed"));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn bare_and_unknown_pragmas_do_not_suppress() {
    let vs = scan_fixture("pragma_bad.rs", &lib("core"));
    // The justification-less pragma and the unknown-rule pragma are each
    // flagged, and the violations they sit above still fire.
    assert_eq!(
        hits(&vs),
        vec![
            ("bad-pragma", 3),
            ("panic-path", 4),
            ("bad-pragma", 5),
            ("panic-path", 6),
        ],
        "{vs:#?}"
    );
}

#[test]
fn needles_in_comments_and_strings_are_masked() {
    let vs = scan_fixture("masked_needles.rs", &lib("core"));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn every_rule_has_a_bad_fixture_and_an_explain_text() {
    for rule in Rule::ALL {
        assert!(!rule.explain().is_empty(), "{} has no explain", rule.id());
        assert_eq!(Rule::from_id(rule.id()), Some(rule));
    }
}
