//! End-to-end ratchet tests: the `bm-lint` binary is run against a
//! synthetic mini-workspace, checking that a regression over the
//! committed baseline exits nonzero, that an improvement passes (and is
//! reported as tightenable), and that `tighten` records the new floor.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A throwaway workspace with one sim-critical crate.
struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    fn new(tag: &str, sim_lib: &str) -> MiniWorkspace {
        let root =
            std::env::temp_dir().join(format!("bm-lint-ratchet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let src = root.join("crates/sim/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(src.join("lib.rs"), sim_lib).unwrap();
        MiniWorkspace { root }
    }

    fn write_baseline(&self, text: &str) -> PathBuf {
        let path = self.root.join("lint-baseline.toml");
        std::fs::write(&path, text).unwrap();
        path
    }

    fn run(&self, args: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_bm-lint"))
            .args(args)
            .arg("--root")
            .arg(&self.root)
            .output()
            .expect("bm-lint binary runs")
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const DIRTY_LIB: &str = "\
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
";

const CLEAN_LIB: &str = "\
pub fn stamp(now_ns: u64) -> u64 {
    now_ns
}
";

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn regression_over_baseline_fails_with_nonzero_exit() {
    let ws = MiniWorkspace::new("regress", DIRTY_LIB);
    ws.write_baseline("# clean\n");
    let out = ws.run(&["check"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("REGRESSION"), "{err}");
    assert!(err.contains("[wall-clock] crate `sim`"), "{err}");
    assert!(err.contains("crates/sim/src/lib.rs:2"), "{err}");
}

#[test]
fn findings_within_baseline_pass() {
    let ws = MiniWorkspace::new("within", DIRTY_LIB);
    ws.write_baseline("[wall-clock]\nsim = 1\n");
    let out = ws.run(&["check"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("bm-lint: OK"), "{}", stdout(&out));
}

#[test]
fn improvement_passes_and_reports_tightenable_floor() {
    let ws = MiniWorkspace::new("improve", CLEAN_LIB);
    ws.write_baseline("[wall-clock]\nsim = 3\n");
    let out = ws.run(&["check"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("debt paid down"), "{text}");
    assert!(
        text.contains("[wall-clock] crate `sim`: now 0 (baseline 3)"),
        "{text}"
    );
}

#[test]
fn tighten_writes_the_new_floor_and_check_accepts_it() {
    let ws = MiniWorkspace::new("tighten", DIRTY_LIB);
    let out = ws.run(&["tighten"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let written = std::fs::read_to_string(ws.root.join("lint-baseline.toml")).unwrap();
    assert!(written.contains("[wall-clock]"), "{written}");
    assert!(written.contains("sim = 1"), "{written}");
    // The freshly tightened floor passes, with no improvement slack left.
    let out = ws.run(&["check"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(!stdout(&out).contains("debt paid down"), "{}", stdout(&out));
}

#[test]
fn missing_baseline_is_a_usage_error() {
    let ws = MiniWorkspace::new("nobase", CLEAN_LIB);
    let out = ws.run(&["check"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("tighten"), "{}", stderr(&out));
}

#[test]
fn malformed_baseline_is_rejected() {
    let ws = MiniWorkspace::new("badbase", CLEAN_LIB);
    ws.write_baseline("[no-such-rule]\nsim = 1\n");
    let out = ws.run(&["check"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn explain_prints_the_failure_mode() {
    let ws = MiniWorkspace::new("explain", CLEAN_LIB);
    let out = ws.run(&["explain", "iter-order"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(!stdout(&out).trim().is_empty());
    let out = ws.run(&["explain", "nonsense"]);
    assert_eq!(out.status.code(), Some(2));
}

/// The real tree must keep the headline invariant of this PR: zero hash
/// collections in sim-critical crates — fixed, not baselined.
#[test]
fn real_workspace_has_zero_iter_order_debt() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.parent().unwrap().parent().unwrap();
    let scan = bm_lint::scan_workspace(root).unwrap();
    let iter_order: Vec<_> = scan
        .violations
        .iter()
        .filter(|v| v.rule == bm_lint::Rule::IterOrder)
        .collect();
    assert!(iter_order.is_empty(), "{iter_order:#?}");

    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml")).unwrap();
    let base = bm_lint::baseline::Baseline::parse(&baseline_text).unwrap();
    for crate_id in bm_lint::SIM_CRITICAL {
        assert_eq!(
            base.allowed("iter-order", crate_id),
            0,
            "baseline must pin iter-order to zero for `{crate_id}`"
        );
    }
    assert!(bm_lint::ratchet(&bm_lint::count_violations(&scan.violations), &base).ok());
}
