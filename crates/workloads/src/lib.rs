//! # bm-workloads — workload generators
//!
//! The drivers that exercise the testbed:
//!
//! * [`fio`] — the Table IV synthetic cases (random/sequential
//!   read/write at block size × queue depth × jobs), closed-loop,
//! * [`kvstore`] — a miniature LSM key-value store (WAL, memtable,
//!   SSTs, compaction) standing in for RocksDB, driven by [`ycsb`],
//! * [`oltp`] — a miniature page-based OLTP engine (buffer pool + redo
//!   log) standing in for MySQL, driven by TPC-C and Sysbench mixes,
//! * [`mixed`] — the §V-E multi-VM mixed-workload scenario.

#![forbid(unsafe_code)]

pub mod fio;
pub mod kvstore;
pub mod mixed;
pub mod oltp;
pub mod ycsb;

pub use fio::{prepare_fio, run_fio, FioResult, FioRig, FioSpec, RwMode};
