//! The fio-like workload generator.
//!
//! Mirrors the paper's Table IV test cases: random/sequential read and
//! write at a block size, queue depth, and job count, driven closed-loop
//! (libaio-style: each completed I/O is immediately replaced). Each job
//! is one [`Client`]; statistics are shared out through an
//! `Rc<RefCell<…>>` so the harness can read them after the run.

use bm_nvme::types::Lba;
use bm_sim::stats::IoStats;
use bm_sim::{SimDuration, SimRng, SimTime};
use bm_testbed::{
    BufferId, Client, ClientOutput, Completion, DeviceId, IoOp, IoRequest, Testbed, World,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Access pattern of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RwMode {
    /// Uniformly random reads.
    RandRead,
    /// Uniformly random writes.
    RandWrite,
    /// Sequential reads (per-job region).
    SeqRead,
    /// Sequential writes (per-job region).
    SeqWrite,
    /// Mixed random: this fraction of reads, rest writes.
    RandRw {
        /// Fraction of reads in `[0, 1]`.
        read_frac: f64,
    },
}

impl RwMode {
    /// Whether the mode is sequential.
    pub fn is_sequential(self) -> bool {
        matches!(self, RwMode::SeqRead | RwMode::SeqWrite)
    }
}

/// One fio test-case specification (one line of Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FioSpec {
    /// Access pattern.
    pub mode: RwMode,
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Outstanding I/Os per job.
    pub iodepth: u32,
    /// Parallel jobs per device.
    pub numjobs: u32,
    /// Warm-up period excluded from statistics.
    pub ramp: SimDuration,
    /// Measured period.
    pub runtime: SimDuration,
}

impl FioSpec {
    fn case(mode: RwMode, block_bytes: u64, iodepth: u32) -> FioSpec {
        // Large sequential cases have ~40–90 ms per-I/O latency at deep
        // queues; give them enough turnarounds to measure steady state.
        let deep_large = block_bytes >= 64 * 1024 && iodepth >= 64;
        FioSpec {
            mode,
            block_bytes,
            iodepth,
            numjobs: 4,
            ramp: if deep_large {
                SimDuration::from_ms(400)
            } else {
                SimDuration::from_ms(50)
            },
            runtime: if deep_large {
                SimDuration::from_ms(2_500)
            } else {
                SimDuration::from_ms(400)
            },
        }
    }

    /// Table IV `rand-r-1`: 4K random read, QD1, 4 jobs.
    pub fn rand_r_1() -> FioSpec {
        Self::case(RwMode::RandRead, 4096, 1)
    }

    /// Table IV `rand-r-128`.
    pub fn rand_r_128() -> FioSpec {
        Self::case(RwMode::RandRead, 4096, 128)
    }

    /// Table IV `rand-w-1`.
    pub fn rand_w_1() -> FioSpec {
        Self::case(RwMode::RandWrite, 4096, 1)
    }

    /// Table IV `rand-w-16`.
    pub fn rand_w_16() -> FioSpec {
        Self::case(RwMode::RandWrite, 4096, 16)
    }

    /// Table IV `seq-r-256`: 128K sequential read, QD256, 4 jobs.
    pub fn seq_r_256() -> FioSpec {
        Self::case(RwMode::SeqRead, 128 * 1024, 256)
    }

    /// Table IV `seq-w-256`.
    pub fn seq_w_256() -> FioSpec {
        Self::case(RwMode::SeqWrite, 128 * 1024, 256)
    }

    /// All six Table IV cases with their names, in table order.
    pub fn table_iv() -> Vec<(&'static str, FioSpec)> {
        vec![
            ("rand-r-1", Self::rand_r_1()),
            ("rand-r-128", Self::rand_r_128()),
            ("rand-w-1", Self::rand_w_1()),
            ("rand-w-16", Self::rand_w_16()),
            ("seq-r-256", Self::seq_r_256()),
            ("seq-w-256", Self::seq_w_256()),
        ]
    }

    /// Scales the measurement windows (e.g. `0.25` for quick runs).
    pub fn scaled(mut self, factor: f64) -> FioSpec {
        self.ramp = SimDuration::from_secs_f64(self.ramp.as_secs_f64() * factor);
        self.runtime = SimDuration::from_secs_f64(self.runtime.as_secs_f64() * factor);
        self
    }

    /// Blocks per I/O at 4 KiB logical blocks.
    pub fn blocks_per_io(&self) -> u32 {
        (self.block_bytes / 4096).max(1) as u32
    }
}

/// Per-second operation counts (the Fig. 15 IOPS trace).
#[derive(Debug, Default)]
pub struct IopsTrace {
    counts: Vec<u64>,
}

impl IopsTrace {
    /// Records a completion at `t`.
    pub fn record(&mut self, t: SimTime) {
        let sec = t.as_secs_f64() as usize;
        if self.counts.len() <= sec {
            self.counts.resize(sec + 1, 0);
        }
        self.counts[sec] += 1;
    }

    /// Per-second IOPS values.
    pub fn per_second(&self) -> &[u64] {
        &self.counts
    }
}

/// Shared measurement sink for one job.
pub type SharedStats = Rc<RefCell<IoStats>>;
/// Shared per-second trace (optional).
pub type SharedTrace = Rc<RefCell<IopsTrace>>;

/// One fio job (one `Client`).
pub struct FioJob {
    dev: DeviceId,
    spec: FioSpec,
    region_start: u64,
    region_blocks: u64,
    buffers: Vec<BufferId>,
    rng: SimRng,
    stats: SharedStats,
    trace: Option<SharedTrace>,
    seq_cursor: u64,
    next_tag: u64,
    measure_start: SimTime,
    measure_end: SimTime,
}

impl FioJob {
    /// Creates a job against `dev`, registering its buffers on the
    /// testbed. `job_index` picks the per-job sequential region and RNG
    /// stream.
    pub fn new(
        tb: &mut Testbed,
        dev: DeviceId,
        spec: FioSpec,
        job_index: u32,
        seed: u64,
        stats: SharedStats,
        trace: Option<SharedTrace>,
    ) -> FioJob {
        let buffers = (0..spec.iodepth)
            .map(|_| tb.register_buffer(spec.block_bytes))
            .collect();
        let total = tb.device_blocks(dev);
        let per_job = total / spec.numjobs as u64;
        let region_start = per_job * job_index as u64;
        FioJob {
            dev,
            spec,
            region_start,
            region_blocks: per_job.max(spec.blocks_per_io() as u64),
            buffers,
            rng: SimRng::seed_from(seed ^ (job_index as u64) << 32 ^ dev.0 as u64),
            stats,
            trace,
            seq_cursor: 0,
            next_tag: 0,
            measure_start: SimTime::ZERO + spec.ramp,
            measure_end: SimTime::ZERO + spec.ramp + spec.runtime,
        }
    }

    fn next_request(&mut self, slot: usize) -> IoRequest {
        let blocks = self.spec.blocks_per_io();
        let span = self.region_blocks.saturating_sub(blocks as u64).max(1);
        let (op, lba) = match self.spec.mode {
            RwMode::RandRead => (IoOp::Read, self.region_start + self.rng.below(span)),
            RwMode::RandWrite => (IoOp::Write, self.region_start + self.rng.below(span)),
            RwMode::SeqRead | RwMode::SeqWrite => {
                let lba = self.region_start + (self.seq_cursor % span);
                self.seq_cursor += blocks as u64;
                let op = if self.spec.mode == RwMode::SeqRead {
                    IoOp::Read
                } else {
                    IoOp::Write
                };
                (op, lba)
            }
            RwMode::RandRw { read_frac } => {
                let op = if self.rng.chance(read_frac) {
                    IoOp::Read
                } else {
                    IoOp::Write
                };
                (op, self.region_start + self.rng.below(span))
            }
        };
        // Random LBAs are block-size aligned, as fio does by default.
        let lba = if self.spec.mode.is_sequential() {
            lba
        } else {
            lba / blocks as u64 * blocks as u64
        };
        self.next_tag += 1;
        IoRequest {
            dev: self.dev,
            op,
            lba: Lba(lba),
            blocks,
            buf: self.buffers[slot],
            tag: ((slot as u64) << 48) | self.next_tag,
        }
    }
}

impl Client for FioJob {
    fn start(&mut self, _now: SimTime) -> ClientOutput {
        let reqs = (0..self.spec.iodepth as usize)
            .map(|slot| self.next_request(slot))
            .collect();
        ClientOutput::submit(reqs)
    }

    fn on_completion(&mut self, now: SimTime, c: Completion) -> ClientOutput {
        if now >= self.measure_start && now < self.measure_end {
            self.stats.borrow_mut().record(c.bytes, c.latency());
            if let Some(trace) = &self.trace {
                trace.borrow_mut().record(now);
            }
        }
        if now >= self.measure_end {
            return ClientOutput::idle(); // drain
        }
        let slot = (c.tag >> 48) as usize;
        ClientOutput::submit(vec![self.next_request(slot)])
    }
}

/// Aggregated result of one fio run.
#[derive(Debug, Clone)]
pub struct FioResult {
    /// Merged latency histogram (for further percentile queries).
    pub latency_hist: bm_sim::stats::LatencyHistogram,
    /// Operations per second over the measured window.
    pub iops: f64,
    /// Bandwidth in MB/s (decimal, as fio reports).
    pub bandwidth_mbps: f64,
    /// Mean completion latency.
    pub avg_latency: SimDuration,
    /// Median latency.
    pub p50: SimDuration,
    /// 99th percentile latency.
    pub p99: SimDuration,
    /// 99.9th percentile latency.
    pub p999: SimDuration,
    /// Operations measured.
    pub ops: u64,
}

impl FioResult {
    fn from_stats(stats: &IoStats, window: SimDuration) -> FioResult {
        FioResult {
            latency_hist: stats.latency().clone(),
            iops: stats.iops(window),
            bandwidth_mbps: stats.bandwidth_mbps(window),
            avg_latency: stats.latency().mean(),
            p50: stats.latency().percentile(0.50),
            p99: stats.latency().percentile(0.99),
            p999: stats.latency().percentile(0.999),
            ops: stats.ops(),
        }
    }
}

/// A fully wired fio experiment that has not started simulating yet.
///
/// Produced by [`prepare_fio`]; consumed by [`FioRig::run`]. The split
/// lets harnesses (e.g. `bench_report`) attribute wall-clock time to
/// setup (testbed construction, job wiring) separately from the event
/// loop without this crate ever reading a clock itself.
pub struct FioRig {
    world: World,
    per_device: Vec<Vec<SharedStats>>,
    spec: FioSpec,
}

/// Builds the testbed from `cfg` and wires one [`FioJob`] per
/// device × numjob, returning the ready-to-run rig.
pub fn prepare_fio(cfg: bm_testbed::TestbedConfig, spec: FioSpec) -> FioRig {
    let seed_base = cfg.seed;
    let mut tb = Testbed::new(cfg);
    let devices = tb.device_count();
    let mut per_device: Vec<Vec<SharedStats>> = Vec::new();
    let mut jobs = Vec::new();
    for d in 0..devices {
        let mut sinks = Vec::new();
        for j in 0..spec.numjobs {
            let stats: SharedStats = Rc::new(RefCell::new(IoStats::new()));
            sinks.push(Rc::clone(&stats));
            jobs.push(FioJob::new(
                &mut tb,
                DeviceId(d),
                spec,
                j,
                seed_base ^ (0x00F1_0000 + d as u64),
                stats,
                None,
            ));
        }
        per_device.push(sinks);
    }
    let mut world = World::new(tb);
    for job in jobs {
        world.add_client(Box::new(job));
    }
    FioRig {
        world,
        per_device,
        spec,
    }
}

impl FioRig {
    /// Runs the event loop to completion and merges per-job stats into
    /// per-device results.
    pub fn run(self) -> (Vec<FioResult>, World) {
        let world = self.world.run(None);
        let spec = self.spec;
        let results = self
            .per_device
            .into_iter()
            .map(|sinks| {
                let mut total = IoStats::new();
                for s in sinks {
                    total.merge(&s.borrow());
                }
                FioResult::from_stats(&total, spec.runtime)
            })
            .collect();
        (results, world)
    }
}

/// Runs `spec` on every device of a fresh testbed built from `cfg`;
/// returns per-device results and the finished world.
pub fn run_fio(cfg: bm_testbed::TestbedConfig, spec: FioSpec) -> (Vec<FioResult>, World) {
    prepare_fio(cfg, spec).run()
}

/// Sums per-device results into one (whole-host view).
pub fn aggregate(results: &[FioResult]) -> FioResult {
    let ops: u64 = results.iter().map(|r| r.ops).sum();
    let iops: f64 = results.iter().map(|r| r.iops).sum();
    let bw: f64 = results.iter().map(|r| r.bandwidth_mbps).sum();
    let weighted: u128 = results
        .iter()
        .map(|r| r.avg_latency.as_nanos() as u128 * r.ops as u128)
        .sum();
    let avg_ns = (weighted.checked_div(ops as u128)).unwrap_or(0) as u64;
    let mut hist = bm_sim::stats::LatencyHistogram::new();
    for r in results {
        hist.merge(&r.latency_hist);
    }
    FioResult {
        iops,
        bandwidth_mbps: bw,
        avg_latency: SimDuration::from_nanos(avg_ns),
        p50: hist.percentile(0.50),
        p99: hist.percentile(0.99),
        p999: hist.percentile(0.999),
        latency_hist: hist,
        ops,
    }
}
