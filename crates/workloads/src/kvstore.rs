//! A miniature LSM key-value store — the RocksDB stand-in.
//!
//! The paper drives RocksDB with YCSB (§V-E). As an I/O workload an LSM
//! tree is: *WAL appends* on every write (small sequential writes),
//! *point reads* that touch one or two SST blocks depending on bloom
//! filters and level depth, and background *flush/compaction* streams
//! (large sequential reads and writes) that kick in every time the
//! memtable fills. The client runs `threads` closed-loop workers for
//! the foreground ops plus one background worker that executes the
//! flush/compaction queue with large (1 MiB) I/Os.

use crate::ycsb::{YcsbOp, YcsbSpec};
use bm_nvme::types::Lba;
use bm_sim::stats::LatencyHistogram;
use bm_sim::{SimDuration, SimRng, SimTime};
use bm_testbed::{BufferId, Client, ClientOutput, Completion, DeviceId, IoOp, IoRequest, Testbed};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// LSM engine tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsmConfig {
    /// Value size in bytes (YCSB default: 1 KiB records).
    pub value_bytes: u64,
    /// Memtable size; a flush triggers when this many bytes of writes
    /// accumulate.
    pub memtable_bytes: u64,
    /// SST data-block size (one point-read I/O).
    pub block_bytes: u64,
    /// Probability a point read is served from one block (bloom filters
    /// short-circuit deeper levels).
    pub single_block_read_prob: f64,
    /// Write amplification of compaction: bytes rewritten per flushed
    /// byte (reads the same amount).
    pub compaction_write_amp: f64,
    /// I/O size of background flush/compaction requests.
    pub background_io_bytes: u64,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            value_bytes: 1024,
            memtable_bytes: 64 << 20,
            block_bytes: 4096,
            single_block_read_prob: 0.9,
            compaction_write_amp: 3.0,
            background_io_bytes: 1 << 20,
        }
    }
}

/// Results of a YCSB-over-LSM run.
#[derive(Debug, Default)]
pub struct KvStats {
    /// Foreground operations completed in the measured window.
    pub ops: u64,
    /// Reads among them.
    pub reads: u64,
    /// Writes among them.
    pub writes: u64,
    /// Operation latency histogram.
    pub latency: LatencyHistogram,
    /// Flushes triggered.
    pub flushes: u64,
    /// Background bytes moved (flush + compaction).
    pub background_bytes: u64,
}

impl KvStats {
    /// Operations per second over `window`.
    pub fn ops_per_sec(&self, window: SimDuration) -> f64 {
        self.ops as f64 / window.as_secs_f64()
    }
}

/// Shared handle to the stats sink.
pub type SharedKvStats = Rc<RefCell<KvStats>>;

#[derive(Debug, Clone, Copy)]
enum FgStep {
    WalAppend,
    BlockRead,
}

struct FgThread {
    steps: Vec<FgStep>,
    next_step: usize,
    started: SimTime,
    is_read: bool,
}

#[derive(Debug, Clone, Copy)]
struct BgIo {
    op: IoOp,
    lba: u64,
    blocks: u32,
}

/// Tag space: background worker uses the top bit.
const BG_TAG: u64 = 1 << 63;

/// The YCSB-over-LSM client.
pub struct KvClient {
    dev: DeviceId,
    spec: YcsbSpec,
    lsm: LsmConfig,
    threads: Vec<FgThread>,
    read_bufs: Vec<BufferId>,
    wal_buf: BufferId,
    bg_buf: BufferId,
    rng: SimRng,
    stats: SharedKvStats,
    /// Bytes in the memtable since the last flush.
    memtable_fill: u64,
    /// Pending background I/Os (flush + compaction streams).
    bg_queue: VecDeque<BgIo>,
    bg_inflight: bool,
    wal_cursor: u64,
    sst_cursor: u64,
    wal_region: (u64, u64),
    sst_region: (u64, u64),
    measure_start: SimTime,
    measure_end: SimTime,
}

impl KvClient {
    /// Creates the client, registering buffers on `tb`.
    pub fn new(
        tb: &mut Testbed,
        dev: DeviceId,
        spec: YcsbSpec,
        lsm: LsmConfig,
        seed: u64,
        stats: SharedKvStats,
    ) -> KvClient {
        let read_bufs = (0..spec.threads)
            .map(|_| tb.register_buffer(lsm.block_bytes.max(4096)))
            .collect();
        let wal_buf = tb.register_buffer(4096);
        let bg_buf = tb.register_buffer(lsm.background_io_bytes);
        let blocks = tb.device_blocks(dev);
        let wal_blocks = ((1u64 << 30) / 4096).min(blocks / 4);
        let sst_blocks = blocks.saturating_sub(wal_blocks).max(1024);
        KvClient {
            dev,
            spec,
            lsm,
            threads: (0..spec.threads)
                .map(|_| FgThread {
                    steps: Vec::new(),
                    next_step: 0,
                    started: SimTime::ZERO,
                    is_read: false,
                })
                .collect(),
            read_bufs,
            wal_buf,
            bg_buf,
            rng: SimRng::seed_from(seed),
            stats,
            memtable_fill: 0,
            bg_queue: VecDeque::new(),
            bg_inflight: false,
            wal_cursor: 0,
            sst_cursor: 0,
            wal_region: (sst_blocks, wal_blocks),
            sst_region: (0, sst_blocks),
            measure_start: SimTime::ZERO + spec.ramp,
            measure_end: SimTime::ZERO + spec.ramp + spec.runtime,
        }
    }

    fn begin_op(&mut self, thread: usize, now: SimTime) -> IoRequest {
        let op = self.spec.next_op(&mut self.rng);
        let steps = match op {
            YcsbOp::Read => {
                let blocks = if self.rng.chance(self.lsm.single_block_read_prob) {
                    1
                } else {
                    2
                };
                vec![FgStep::BlockRead; blocks]
            }
            YcsbOp::Update | YcsbOp::Insert => {
                self.account_write();
                vec![FgStep::WalAppend]
            }
            YcsbOp::ReadModifyWrite => {
                self.account_write();
                vec![FgStep::BlockRead, FgStep::WalAppend]
            }
        };
        let t = &mut self.threads[thread];
        t.is_read = matches!(op, YcsbOp::Read);
        t.steps = steps;
        t.next_step = 0;
        t.started = now;
        self.issue_fg(thread)
    }

    fn account_write(&mut self) {
        self.memtable_fill += self.lsm.value_bytes;
        if self.memtable_fill >= self.lsm.memtable_bytes {
            self.memtable_fill = 0;
            self.enqueue_flush();
        }
    }

    /// Queues the flush of one memtable plus its compaction echo.
    fn enqueue_flush(&mut self) {
        self.stats.borrow_mut().flushes += 1;
        let io_blocks = (self.lsm.background_io_bytes / 4096) as u32;
        let flush_ios = self.lsm.memtable_bytes / self.lsm.background_io_bytes;
        let compact_ios = (flush_ios as f64 * self.lsm.compaction_write_amp).round() as u64;
        let span = self.sst_region.1.saturating_sub(io_blocks as u64).max(1);
        for _ in 0..flush_ios {
            let lba = self.sst_region.0 + (self.sst_cursor % span);
            self.sst_cursor += io_blocks as u64;
            self.bg_queue.push_back(BgIo {
                op: IoOp::Write,
                lba,
                blocks: io_blocks,
            });
        }
        for i in 0..compact_ios {
            // Compaction reads existing SSTs and writes merged ones.
            let lba = self.sst_region.0 + (self.sst_cursor % span);
            self.sst_cursor += io_blocks as u64;
            self.bg_queue.push_back(BgIo {
                op: if i % 2 == 0 { IoOp::Read } else { IoOp::Write },
                lba,
                blocks: io_blocks,
            });
        }
    }

    fn issue_fg(&mut self, thread: usize) -> IoRequest {
        let step = self.threads[thread].steps[self.threads[thread].next_step];
        let (op, lba, blocks, buf) = match step {
            FgStep::BlockRead => {
                let span = self.sst_region.1.max(1);
                (
                    IoOp::Read,
                    self.sst_region.0 + self.rng.below(span),
                    1,
                    self.read_bufs[thread],
                )
            }
            FgStep::WalAppend => {
                let span = self.wal_region.1.saturating_sub(1).max(1);
                let lba = self.wal_region.0 + (self.wal_cursor % span);
                self.wal_cursor += 1;
                (IoOp::Write, lba, 1, self.wal_buf)
            }
        };
        IoRequest {
            dev: self.dev,
            op,
            lba: Lba(lba),
            blocks,
            buf,
            tag: thread as u64,
        }
    }

    fn pump_background(&mut self) -> Option<IoRequest> {
        if self.bg_inflight {
            return None;
        }
        let io = self.bg_queue.pop_front()?;
        self.bg_inflight = true;
        Some(IoRequest {
            dev: self.dev,
            op: io.op,
            lba: Lba(io.lba),
            blocks: io.blocks,
            buf: self.bg_buf,
            tag: BG_TAG,
        })
    }
}

impl Client for KvClient {
    fn start(&mut self, now: SimTime) -> ClientOutput {
        let reqs = (0..self.spec.threads as usize)
            .map(|t| self.begin_op(t, now))
            .collect();
        ClientOutput::submit(reqs)
    }

    fn on_completion(&mut self, now: SimTime, c: Completion) -> ClientOutput {
        let mut out = Vec::new();
        if c.tag & BG_TAG != 0 {
            self.bg_inflight = false;
            self.stats.borrow_mut().background_bytes += c.bytes;
            if now < self.measure_end {
                out.extend(self.pump_background());
            }
            return ClientOutput::submit(out);
        }
        let thread = c.tag as usize;
        self.threads[thread].next_step += 1;
        if self.threads[thread].next_step < self.threads[thread].steps.len() {
            out.push(self.issue_fg(thread));
            return ClientOutput::submit(out);
        }
        // Operation complete.
        if now >= self.measure_start && now < self.measure_end {
            let mut stats = self.stats.borrow_mut();
            stats.ops += 1;
            if self.threads[thread].is_read {
                stats.reads += 1;
            } else {
                stats.writes += 1;
            }
            stats
                .latency
                .record(now.saturating_since(self.threads[thread].started));
        }
        if now < self.measure_end {
            out.push(self.begin_op(thread, now));
            out.extend(self.pump_background());
        }
        ClientOutput::submit(out)
    }
}

/// Runs `spec` against device 0 of a testbed built from `cfg`.
pub fn run_ycsb(
    cfg: bm_testbed::TestbedConfig,
    spec: YcsbSpec,
    lsm: LsmConfig,
) -> (KvStats, bm_testbed::World) {
    let mut tb = Testbed::new(cfg);
    let stats: SharedKvStats = Rc::new(RefCell::new(KvStats::default()));
    let client = KvClient::new(&mut tb, DeviceId(0), spec, lsm, 0x4C5B, Rc::clone(&stats));
    let mut world = bm_testbed::World::new(tb);
    world.add_client(Box::new(client));
    let world = world.run(None);
    let stats = std::mem::take(&mut *stats.borrow_mut());
    (stats, world)
}
