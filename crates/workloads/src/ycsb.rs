//! YCSB workload mixes.
//!
//! The standard core workloads (A, B, C, F — E is scan-based and out of
//! scope for a block-level reproduction) as operation-mix generators
//! over a Zipfian key popularity distribution.

use bm_sim::rng::ZipfTable;
use bm_sim::{SimDuration, SimRng};

/// One YCSB operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbOp {
    /// Point read.
    Read,
    /// Update an existing record.
    Update,
    /// Insert a new record.
    Insert,
    /// Read-modify-write.
    ReadModifyWrite,
}

/// The standard core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbWorkload {
    /// A: 50 % read / 50 % update — "update heavy".
    A,
    /// B: 95 % read / 5 % update — "read mostly".
    B,
    /// C: 100 % read.
    C,
    /// D: 95 % read / 5 % insert — "read latest".
    D,
    /// F: 50 % read / 50 % read-modify-write.
    F,
}

impl YcsbWorkload {
    /// Samples one operation from the mix.
    pub fn sample(self, rng: &mut SimRng) -> YcsbOp {
        let u = rng.unit();
        match self {
            YcsbWorkload::A => {
                if u < 0.5 {
                    YcsbOp::Read
                } else {
                    YcsbOp::Update
                }
            }
            YcsbWorkload::B => {
                if u < 0.95 {
                    YcsbOp::Read
                } else {
                    YcsbOp::Update
                }
            }
            YcsbWorkload::C => YcsbOp::Read,
            YcsbWorkload::D => {
                if u < 0.95 {
                    YcsbOp::Read
                } else {
                    YcsbOp::Insert
                }
            }
            YcsbWorkload::F => {
                if u < 0.5 {
                    YcsbOp::Read
                } else {
                    YcsbOp::ReadModifyWrite
                }
            }
        }
    }
}

/// A YCSB run specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YcsbSpec {
    /// Which core workload.
    pub workload: YcsbWorkload,
    /// Client threads (closed loop).
    pub threads: u32,
    /// Warm-up excluded from statistics.
    pub ramp: SimDuration,
    /// Measured window.
    pub runtime: SimDuration,
}

impl YcsbSpec {
    /// The paper's mixed-workload configuration (§V-E): YCSB-A on
    /// RocksDB with a moderate thread count.
    pub fn paper_mixed() -> YcsbSpec {
        YcsbSpec {
            workload: YcsbWorkload::A,
            threads: 16,
            ramp: SimDuration::from_ms(100),
            runtime: SimDuration::from_ms(900),
        }
    }

    /// Scales the measurement windows.
    pub fn scaled(mut self, factor: f64) -> YcsbSpec {
        self.ramp = SimDuration::from_secs_f64(self.ramp.as_secs_f64() * factor);
        self.runtime = SimDuration::from_secs_f64(self.runtime.as_secs_f64() * factor);
        self
    }

    /// Samples the next operation.
    pub fn next_op(&self, rng: &mut SimRng) -> YcsbOp {
        self.workload.sample(rng)
    }
}

/// Zipfian key chooser (kept separate so the key space can be large
/// without rebuilding the table per client).
#[derive(Debug)]
pub struct KeyChooser {
    table: ZipfTable,
}

impl KeyChooser {
    /// Builds a chooser over `records` keys with the YCSB default skew.
    pub fn new(records: usize) -> KeyChooser {
        KeyChooser {
            table: ZipfTable::new(records, 0.99),
        }
    }

    /// Picks a key index.
    pub fn pick(&self, rng: &mut SimRng) -> usize {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_fraction(w: YcsbWorkload, op: YcsbOp, n: usize) -> f64 {
        let mut rng = SimRng::seed_from(7);
        let hits = (0..n).filter(|_| w.sample(&mut rng) == op).count();
        hits as f64 / n as f64
    }

    #[test]
    fn workload_mixes_match_spec() {
        assert!((mix_fraction(YcsbWorkload::A, YcsbOp::Read, 20_000) - 0.5).abs() < 0.02);
        assert!((mix_fraction(YcsbWorkload::B, YcsbOp::Read, 20_000) - 0.95).abs() < 0.01);
        assert_eq!(mix_fraction(YcsbWorkload::C, YcsbOp::Read, 1_000), 1.0);
        assert!((mix_fraction(YcsbWorkload::D, YcsbOp::Insert, 20_000) - 0.05).abs() < 0.01);
        assert!(
            (mix_fraction(YcsbWorkload::F, YcsbOp::ReadModifyWrite, 20_000) - 0.5).abs() < 0.02
        );
    }

    #[test]
    fn key_chooser_is_skewed() {
        let chooser = KeyChooser::new(100_000);
        let mut rng = SimRng::seed_from(3);
        let low = (0..10_000)
            .filter(|_| chooser.pick(&mut rng) < 1000)
            .count();
        assert!(low > 2_000, "zipf skew too weak: {low}");
    }
}
