//! The §V-E mixed multi-VM scenario (Fig. 14).
//!
//! Several VMs share the storage back-end: half run Sysbench-over-MySQL
//! (the [`oltp`](crate::oltp) client), half run YCSB-over-RocksDB (the
//! [`kvstore`](crate::kvstore) client), each on its own device. The
//! harness compares, per scheme, RocksDB transaction throughput and
//! MySQL average latency — the two panels of Fig. 14.

use crate::kvstore::{KvClient, KvStats, LsmConfig, SharedKvStats};
use crate::oltp::{OltpClient, OltpSpec, OltpStats, SharedOltpStats};
use crate::ycsb::YcsbSpec;
use bm_testbed::{DeviceId, Testbed, TestbedConfig, World};
use std::cell::RefCell;
use std::rc::Rc;

/// Result of one mixed run.
#[derive(Debug)]
pub struct MixedResult {
    /// Per-OLTP-VM statistics.
    pub oltp: Vec<OltpStats>,
    /// Per-KV-VM statistics.
    pub kv: Vec<KvStats>,
}

/// Runs `oltp_vms` Sysbench VMs and `kv_vms` YCSB VMs on a testbed
/// built from `cfg` (which must define `oltp_vms + kv_vms` devices:
/// OLTP VMs take the first devices, KV VMs the rest).
///
/// # Panics
///
/// Panics if the config has too few devices.
pub fn run_mixed(
    cfg: TestbedConfig,
    oltp_vms: usize,
    kv_vms: usize,
    oltp_spec: OltpSpec,
    ycsb_spec: YcsbSpec,
) -> (MixedResult, World) {
    assert!(
        cfg.devices.len() >= oltp_vms + kv_vms,
        "config must define one device per VM"
    );
    let mut tb = Testbed::new(cfg);
    let mut oltp_sinks: Vec<SharedOltpStats> = Vec::new();
    let mut kv_sinks: Vec<SharedKvStats> = Vec::new();
    let mut clients: Vec<Box<dyn bm_testbed::Client>> = Vec::new();
    for i in 0..oltp_vms {
        let stats: SharedOltpStats = Rc::new(RefCell::new(OltpStats::default()));
        oltp_sinks.push(Rc::clone(&stats));
        clients.push(Box::new(OltpClient::new(
            &mut tb,
            DeviceId(i),
            oltp_spec.clone(),
            0x3100 + i as u64,
            stats,
        )));
    }
    for i in 0..kv_vms {
        let stats: SharedKvStats = Rc::new(RefCell::new(KvStats::default()));
        kv_sinks.push(Rc::clone(&stats));
        clients.push(Box::new(KvClient::new(
            &mut tb,
            DeviceId(oltp_vms + i),
            ycsb_spec,
            LsmConfig::default(),
            0x4200 + i as u64,
            stats,
        )));
    }
    let mut world = World::new(tb);
    for c in clients {
        world.add_client(c);
    }
    let world = world.run(None);
    let result = MixedResult {
        oltp: oltp_sinks
            .into_iter()
            .map(|s| std::mem::take(&mut *s.borrow_mut()))
            .collect(),
        kv: kv_sinks
            .into_iter()
            .map(|s| std::mem::take(&mut *s.borrow_mut()))
            .collect(),
    };
    (result, world)
}
