//! A miniature page-based OLTP engine — the MySQL stand-in.
//!
//! The paper drives MySQL with TPC-C and Sysbench (§V-E). As an I/O
//! workload, an InnoDB-style engine is: *buffer-pool misses* (random
//! 16 KiB page reads), *redo-log commits* (small sequential writes,
//! fsync'd), and *checkpoint page writebacks* (random 16 KiB writes).
//! Each transaction executes those steps in order on one of `threads`
//! closed-loop workers, with a think time for the CPU part.
//!
//! With the paper's 32 TPC-C threads the engine's offered IOPS exceeds
//! every scheme's completion ceiling, so normalized throughput degrades
//! exactly by the ceilings' ratio — which is how SPDK vhost ends up
//! 13.4 % behind (Fig. 13a) while BM-Store stays near VFIO.

use bm_nvme::types::Lba;
use bm_sim::stats::LatencyHistogram;
use bm_sim::{SimDuration, SimRng, SimTime};
use bm_testbed::{BufferId, Client, ClientOutput, Completion, DeviceId, IoOp, IoRequest, Testbed};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// What one transaction does to storage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxnProfile {
    /// Blocks per database page (4 = InnoDB's 16 KiB default; 1 = a
    /// 4 KiB page size, used when the working set is index-heavy).
    pub page_blocks: u32,
    /// Buffer-pool misses per transaction (random page reads).
    pub page_reads: u32,
    /// Redo-log commits per transaction (sequential writes + fsync).
    pub log_writes: u32,
    /// Bytes per log write.
    pub log_bytes: u64,
    /// Checkpoint page writebacks per transaction (random 16 KiB
    /// writes, amortized).
    pub page_writes: u32,
    /// CPU think time per transaction.
    pub think: SimDuration,
}

/// A weighted mix of transaction types (TPC-C runs five).
#[derive(Debug, Clone, PartialEq)]
pub struct TxnMix {
    entries: Vec<(f64, TxnProfile)>,
}

impl TxnMix {
    /// A mix with a single transaction type.
    pub fn single(profile: TxnProfile) -> TxnMix {
        TxnMix {
            entries: vec![(1.0, profile)],
        }
    }

    /// A weighted mix (weights need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or all weights are zero.
    pub fn weighted(entries: Vec<(f64, TxnProfile)>) -> TxnMix {
        assert!(
            !entries.is_empty() && entries.iter().map(|e| e.0).sum::<f64>() > 0.0,
            "mix needs positive weights"
        );
        TxnMix { entries }
    }

    /// Samples one transaction type.
    pub fn sample(&self, rng: &mut SimRng) -> TxnProfile {
        let weights: Vec<f64> = self.entries.iter().map(|e| e.0).collect();
        self.entries[rng.weighted_index(&weights)].1
    }

    /// The weighted-average I/O count per transaction.
    pub fn mean_ios(&self) -> f64 {
        let total: f64 = self.entries.iter().map(|e| e.0).sum();
        self.entries
            .iter()
            .map(|(w, p)| w * (p.page_reads + p.log_writes + p.page_writes) as f64)
            .sum::<f64>()
            / total
    }
}

/// An OLTP benchmark specification.
#[derive(Debug, Clone, PartialEq)]
pub struct OltpSpec {
    /// Concurrent worker threads.
    pub threads: u32,
    /// The transaction mix.
    pub mix: TxnMix,
    /// Warm-up excluded from statistics.
    pub ramp: SimDuration,
    /// Measured window.
    pub runtime: SimDuration,
}

impl OltpSpec {
    /// The paper's TPC-C setup: 100 warehouses, 32 threads (§V-E),
    /// with the standard five-transaction mix (45 % NewOrder, 43 %
    /// Payment, 4 % each OrderStatus/Delivery/StockLevel). Profiles use
    /// a 4 KiB-page build: the miss stream is index-dominated, so pages
    /// are small and plentiful — deep enough to saturate each scheme's
    /// completion ceiling, which is what separates them (Fig. 13a).
    pub fn tpcc() -> OltpSpec {
        let t = |reads: u32, logs: u32, writes: u32, think_us: u64| TxnProfile {
            page_blocks: 1,
            page_reads: reads,
            log_writes: logs,
            log_bytes: 16 * 1024,
            page_writes: writes,
            think: SimDuration::from_us(think_us),
        };
        OltpSpec {
            threads: 32,
            mix: TxnMix::weighted(vec![
                (0.45, t(20, 2, 3, 35)), // NewOrder
                (0.43, t(6, 2, 2, 20)),  // Payment
                (0.04, t(12, 0, 0, 25)), // OrderStatus
                (0.04, t(40, 4, 6, 60)), // Delivery (batched)
                (0.04, t(60, 0, 0, 40)), // StockLevel
            ]),
            ramp: SimDuration::from_ms(100),
            runtime: SimDuration::from_ms(900),
        }
    }

    /// Sysbench `oltp_read_write`: read-heavy point/range selects with
    /// one commit — lighter I/O per transaction, moderate concurrency.
    pub fn sysbench() -> OltpSpec {
        OltpSpec {
            threads: 16,
            mix: TxnMix::single(TxnProfile {
                page_blocks: 4,
                page_reads: 5,
                log_writes: 1,
                log_bytes: 8 * 1024,
                page_writes: 1,
                think: SimDuration::from_us(90),
            }),
            ramp: SimDuration::from_ms(100),
            runtime: SimDuration::from_ms(900),
        }
    }

    /// Scales the measurement windows.
    pub fn scaled(mut self, factor: f64) -> OltpSpec {
        self.ramp = SimDuration::from_secs_f64(self.ramp.as_secs_f64() * factor);
        self.runtime = SimDuration::from_secs_f64(self.runtime.as_secs_f64() * factor);
        self
    }
}

/// Results of an OLTP run.
#[derive(Debug, Default)]
pub struct OltpStats {
    /// Transactions committed in the measured window.
    pub transactions: u64,
    /// Queries executed (transactions × mix factor, as Sysbench counts).
    pub queries: u64,
    /// Transaction latency histogram.
    pub latency: LatencyHistogram,
}

impl OltpStats {
    /// Transactions per second over `window`.
    pub fn tps(&self, window: SimDuration) -> f64 {
        self.transactions as f64 / window.as_secs_f64()
    }
}

/// Shared handle to the stats sink.
pub type SharedOltpStats = Rc<RefCell<OltpStats>>;

/// Queries counted per transaction (the Sysbench read_write mix runs
/// 20 queries per transaction).
const QUERIES_PER_TXN: u64 = 20;

#[derive(Debug, Clone, Copy)]
enum Step {
    PageRead,
    LogWrite,
    PageWrite,
}

struct ThreadState {
    steps: Vec<Step>,
    next_step: usize,
    txn_started: SimTime,
    profile: TxnProfile,
}

/// The OLTP client: `threads` closed-loop workers on one device.
pub struct OltpClient {
    dev: DeviceId,
    spec: OltpSpec,
    threads: Vec<ThreadState>,
    read_bufs: Vec<BufferId>,
    write_bufs: Vec<BufferId>,
    log_buf: BufferId,
    log_cursor: u64,
    log_region: (u64, u64),
    data_region: (u64, u64),
    rng: SimRng,
    stats: SharedOltpStats,
    sleeping: BinaryHeap<Reverse<(u64, usize)>>,
    measure_start: SimTime,
    measure_end: SimTime,
}

impl OltpClient {
    /// Creates the client, registering its buffers on `tb`.
    pub fn new(
        tb: &mut Testbed,
        dev: DeviceId,
        spec: OltpSpec,
        seed: u64,
        stats: SharedOltpStats,
    ) -> OltpClient {
        let max_page_bytes = spec
            .mix
            .entries
            .iter()
            .map(|(_, p)| p.page_blocks as u64 * 4096)
            .fold(4096, u64::max);
        let max_log_bytes = spec
            .mix
            .entries
            .iter()
            .map(|(_, p)| p.log_bytes)
            .fold(4096, u64::max);
        let read_bufs = (0..spec.threads)
            .map(|_| tb.register_buffer(max_page_bytes))
            .collect();
        let write_bufs = (0..spec.threads)
            .map(|_| tb.register_buffer(max_page_bytes))
            .collect();
        let log_buf = tb.register_buffer(max_log_bytes);
        let blocks = tb.device_blocks(dev);
        // Layout: the last 2 GiB of the device is the redo log, the
        // rest is table space.
        let log_blocks = ((2u64 << 30) / 4096).min(blocks / 4);
        let data_blocks = blocks.saturating_sub(log_blocks).max(1024);
        let mut seed_rng = SimRng::seed_from(seed);
        let threads = (0..spec.threads)
            .map(|_| ThreadState {
                steps: Vec::new(),
                next_step: 0,
                txn_started: SimTime::ZERO,
                profile: spec.mix.sample(&mut seed_rng),
            })
            .collect();
        let measure_start = SimTime::ZERO + spec.ramp;
        let measure_end = measure_start + spec.runtime;
        OltpClient {
            dev,
            spec,
            threads,
            read_bufs,
            write_bufs,
            log_buf,
            log_cursor: 0,
            log_region: (data_blocks, log_blocks),
            data_region: (0, data_blocks),
            rng: SimRng::seed_from(seed),
            stats,
            sleeping: BinaryHeap::new(),
            measure_start,
            measure_end,
        }
    }

    fn begin_txn(&mut self, thread: usize, now: SimTime) -> IoRequest {
        let p = self.spec.mix.sample(&mut self.rng);
        self.threads[thread].profile = p;
        let mut steps = Vec::with_capacity((p.page_reads + p.log_writes + p.page_writes) as usize);
        for _ in 0..p.page_reads {
            steps.push(Step::PageRead);
        }
        for _ in 0..p.log_writes {
            steps.push(Step::LogWrite);
        }
        for _ in 0..p.page_writes {
            steps.push(Step::PageWrite);
        }
        let t = &mut self.threads[thread];
        t.steps = steps;
        t.next_step = 0;
        t.txn_started = now;
        self.issue_step(thread)
    }

    fn issue_step(&mut self, thread: usize) -> IoRequest {
        let step = self.threads[thread].steps[self.threads[thread].next_step];
        let profile = self.threads[thread].profile;
        let (op, lba, blocks, buf) = match step {
            Step::PageRead => {
                let pb = profile.page_blocks;
                let page = self.rng.below(self.data_region.1 / pb as u64);
                (
                    IoOp::Read,
                    self.data_region.0 + page * pb as u64,
                    pb,
                    self.read_bufs[thread],
                )
            }
            Step::PageWrite => {
                let pb = profile.page_blocks;
                let page = self.rng.below(self.data_region.1 / pb as u64);
                (
                    IoOp::Write,
                    self.data_region.0 + page * pb as u64,
                    pb,
                    self.write_bufs[thread],
                )
            }
            Step::LogWrite => {
                let blocks = (profile.log_bytes / 4096).max(1) as u32;
                let span = self.log_region.1.saturating_sub(blocks as u64).max(1);
                let lba = self.log_region.0 + (self.log_cursor % span);
                self.log_cursor += blocks as u64;
                (IoOp::Write, lba, blocks, self.log_buf)
            }
        };
        IoRequest {
            dev: self.dev,
            op,
            lba: Lba(lba),
            blocks,
            buf,
            tag: thread as u64,
        }
    }

    fn wake_due(&mut self, now: SimTime) -> ClientOutput {
        let mut out = ClientOutput::idle();
        while let Some(&Reverse((at, thread))) = self.sleeping.peek() {
            if at > now.as_nanos() {
                out.next_timer = Some(SimTime::from_nanos(at));
                break;
            }
            self.sleeping.pop();
            let req = self.begin_txn(thread, now);
            out.requests.push(req);
        }
        out
    }
}

impl Client for OltpClient {
    fn start(&mut self, now: SimTime) -> ClientOutput {
        let reqs = (0..self.spec.threads as usize)
            .map(|t| self.begin_txn(t, now))
            .collect();
        ClientOutput::submit(reqs)
    }

    fn on_completion(&mut self, now: SimTime, c: Completion) -> ClientOutput {
        let thread = c.tag as usize;
        self.threads[thread].next_step += 1;
        if self.threads[thread].next_step < self.threads[thread].steps.len() {
            return ClientOutput::submit(vec![self.issue_step(thread)]);
        }
        // Commit.
        let started = self.threads[thread].txn_started;
        if now >= self.measure_start && now < self.measure_end {
            let mut stats = self.stats.borrow_mut();
            stats.transactions += 1;
            stats.queries += QUERIES_PER_TXN;
            stats.latency.record(now.saturating_since(started));
        }
        if now >= self.measure_end {
            return ClientOutput::idle();
        }
        // Think, then start the next transaction.
        let think = self.rng.jitter(self.threads[thread].profile.think, 0.3);
        self.sleeping
            .push(Reverse(((now + think).as_nanos(), thread)));
        self.wake_due(now)
    }

    fn on_timer(&mut self, now: SimTime) -> ClientOutput {
        self.wake_due(now)
    }
}

/// Runs `spec` against device 0 of a testbed built from `cfg`.
pub fn run_oltp(cfg: bm_testbed::TestbedConfig, spec: OltpSpec) -> (OltpStats, bm_testbed::World) {
    let mut tb = Testbed::new(cfg);
    let stats: SharedOltpStats = Rc::new(RefCell::new(OltpStats::default()));
    let client = OltpClient::new(&mut tb, DeviceId(0), spec, 0x0D7B, Rc::clone(&stats));
    let mut world = bm_testbed::World::new(tb);
    world.add_client(Box::new(client));
    let world = world.run(None);
    let stats = std::mem::take(&mut *stats.borrow_mut());
    (stats, world)
}
