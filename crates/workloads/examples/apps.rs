use bm_sim::SimDuration;
use bm_testbed::{DeviceSpec, SchemeKind, TestbedConfig};
use bm_workloads::kvstore::run_ycsb;
use bm_workloads::kvstore::LsmConfig;
use bm_workloads::oltp::{run_oltp, OltpSpec};
use bm_workloads::ycsb::YcsbSpec;

fn vm_cfg(scheme: SchemeKind) -> TestbedConfig {
    TestbedConfig::single_vm(scheme)
}

fn main() {
    println!("== TPC-C (32 threads) ==");
    for (name, scheme) in [
        ("vfio", SchemeKind::Vfio),
        ("bmstore", SchemeKind::BmStore { in_vm: true }),
        ("spdk", SchemeKind::SpdkVhost { cores: 1 }),
    ] {
        let (stats, _) = run_oltp(vm_cfg(scheme), OltpSpec::tpcc());
        println!(
            "{:8} tps {:>8.0}  avg txn lat {:>7.0} us",
            name,
            stats.tps(SimDuration::from_ms(900)),
            stats.latency.mean().as_micros_f64()
        );
    }
    println!("== Sysbench (16 threads) ==");
    for (name, scheme) in [
        ("vfio", SchemeKind::Vfio),
        ("bmstore", SchemeKind::BmStore { in_vm: true }),
        ("spdk", SchemeKind::SpdkVhost { cores: 1 }),
    ] {
        let (stats, _) = run_oltp(vm_cfg(scheme), OltpSpec::sysbench());
        println!(
            "{:8} tps {:>8.0}  qps {:>9.0}  avg lat {:>7.0} us",
            name,
            stats.tps(SimDuration::from_ms(900)),
            stats.queries as f64 / 0.9,
            stats.latency.mean().as_micros_f64()
        );
    }
    println!("== YCSB-A on LSM (16 threads) ==");
    for (name, scheme) in [
        ("vfio", SchemeKind::Vfio),
        ("bmstore", SchemeKind::BmStore { in_vm: true }),
        ("spdk", SchemeKind::SpdkVhost { cores: 1 }),
    ] {
        let mut cfg = vm_cfg(scheme);
        cfg.devices = vec![DeviceSpec::vm_namespace()];
        let (stats, _) = run_ycsb(cfg, YcsbSpec::paper_mixed(), LsmConfig::default());
        println!(
            "{:8} ops/s {:>8.0}  avg lat {:>6.0} us  flushes {}  bg GB {:.2}",
            name,
            stats.ops_per_sec(SimDuration::from_ms(900)),
            stats.latency.mean().as_micros_f64(),
            stats.flushes,
            stats.background_bytes as f64 / 1e9
        );
    }
}
