use bm_testbed::{SchemeKind, TestbedConfig};
use bm_workloads::fio::{aggregate, run_fio, FioSpec};

type ConfigFn = fn() -> TestbedConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let schemes: Vec<(&str, ConfigFn)> = vec![
        ("native", || TestbedConfig::native(1)),
        ("bmstore", || TestbedConfig::bm_store_bare_metal(1)),
        ("vfio-vm", || TestbedConfig::single_vm(SchemeKind::Vfio)),
        ("bm-vm", || {
            TestbedConfig::single_vm(SchemeKind::BmStore { in_vm: true })
        }),
        ("spdk-vm", || {
            TestbedConfig::single_vm(SchemeKind::SpdkVhost { cores: 1 })
        }),
    ];
    println!(
        "{:10} {:12} {:>10} {:>10} {:>10}",
        "scheme", "case", "IOPS", "BW MB/s", "lat us"
    );
    for (name, mk) in schemes {
        for (case, spec) in FioSpec::table_iv() {
            let spec = spec.scaled(scale);
            let (results, _world) = run_fio(mk(), spec);
            let agg = aggregate(&results);
            println!(
                "{:10} {:12} {:>10.0} {:>10.0} {:>10.1}",
                name,
                case,
                agg.iops,
                agg.bandwidth_mbps,
                agg.avg_latency.as_micros_f64()
            );
        }
    }
}
