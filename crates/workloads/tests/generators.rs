//! Workload-generator tests: the fio patterns, OLTP step machines, and
//! the LSM's flush/compaction accounting behave as specified.

use bm_sim::SimDuration;
use bm_testbed::{SchemeKind, TestbedConfig};
use bm_workloads::fio::{aggregate, run_fio, FioSpec, RwMode};
use bm_workloads::kvstore::{run_ycsb, LsmConfig};
use bm_workloads::oltp::{run_oltp, OltpSpec};
use bm_workloads::ycsb::{YcsbSpec, YcsbWorkload};

#[test]
fn fio_table_iv_has_six_cases_with_paper_parameters() {
    let cases = FioSpec::table_iv();
    assert_eq!(cases.len(), 6);
    let by_name: std::collections::HashMap<_, _> = cases.into_iter().collect();
    assert_eq!(by_name["rand-r-1"].iodepth, 1);
    assert_eq!(by_name["rand-r-128"].iodepth, 128);
    assert_eq!(by_name["rand-w-16"].iodepth, 16);
    assert_eq!(by_name["seq-r-256"].iodepth, 256);
    assert_eq!(by_name["seq-r-256"].block_bytes, 128 * 1024);
    assert!(by_name.values().all(|s| s.numjobs == 4));
}

#[test]
fn fio_read_write_mix_holds() {
    let spec = FioSpec {
        mode: RwMode::RandRw { read_frac: 0.7 },
        block_bytes: 4096,
        iodepth: 16,
        numjobs: 2,
        ramp: SimDuration::from_ms(10),
        runtime: SimDuration::from_ms(100),
    };
    let (results, world) = run_fio(TestbedConfig::native(1), spec);
    let agg = aggregate(&results);
    assert!(agg.ops > 1_000);
    // The SSD saw roughly the 70/30 split.
    let reads = world.tb.ssd(0).perf().reads() as f64;
    let writes = world.tb.ssd(0).perf().writes() as f64;
    let frac = reads / (reads + writes);
    assert!((0.65..0.75).contains(&frac), "read fraction {frac}");
}

#[test]
fn fio_sequential_jobs_use_disjoint_regions() {
    // Sequential jobs stride their own quarters; the throughput is the
    // usual sequential ceiling (would collapse if they collided with
    // random service behaviour this model doesn't have — this checks
    // the generator produces monotone per-job LBAs via determinism).
    let spec = FioSpec::seq_r_256().scaled(0.2);
    let (results, _) = run_fio(TestbedConfig::native(1), spec);
    let bw = aggregate(&results).bandwidth_mbps;
    assert!((3_000.0..3_400.0).contains(&bw), "bw {bw}");
}

#[test]
fn oltp_specs_match_paper_setups() {
    let tpcc = OltpSpec::tpcc();
    assert_eq!(tpcc.threads, 32, "paper: 32 concurrent TPC-C threads");
    // The five-type mix averages out I/O-rich (NewOrder/Payment heavy).
    let mean = tpcc.mix.mean_ios();
    assert!((10.0..30.0).contains(&mean), "mean IOs per txn {mean}");
    let sysbench = OltpSpec::sysbench();
    assert!(sysbench.mix.mean_ios() >= 5.0);
}

#[test]
fn oltp_transactions_account_all_steps() {
    let spec = OltpSpec::sysbench().scaled(0.2);
    let per_txn = spec.mix.mean_ios() as u64;
    let (stats, world) = run_oltp(TestbedConfig::single_vm(SchemeKind::Vfio), spec);
    assert!(stats.transactions > 100);
    assert_eq!(stats.queries, stats.transactions * 20);
    // Total device I/O ≈ txns × (reads + log + page writes), plus ramp
    // and drain traffic.
    let device_ops = world.tb.ssd(0).fetched();
    assert!(device_ops >= stats.transactions * per_txn);
    // Latency histogram is populated and plausible.
    assert!(stats.latency.mean() > SimDuration::from_us(100));
}

#[test]
fn ycsb_mixes_sum_to_one_per_op() {
    // Spot check via the generator: C is all reads.
    let spec = YcsbSpec {
        workload: YcsbWorkload::C,
        threads: 4,
        ramp: SimDuration::from_ms(10),
        runtime: SimDuration::from_ms(50),
    };
    let (stats, _) = run_ycsb(
        TestbedConfig::single_vm(SchemeKind::Vfio),
        spec,
        LsmConfig::default(),
    );
    assert!(stats.ops > 100);
    assert_eq!(stats.writes, 0, "workload C never writes");
    assert_eq!(stats.flushes, 0, "no writes, no flushes");
}

#[test]
fn lsm_flushes_track_write_volume() {
    // Update-heavy A with a small memtable: flush count ≈ write bytes /
    // memtable size; background bytes = flush + compaction echo.
    let lsm = LsmConfig {
        memtable_bytes: 4 << 20,
        ..LsmConfig::default()
    };
    let spec = YcsbSpec {
        workload: YcsbWorkload::A,
        threads: 8,
        ramp: SimDuration::from_ms(10),
        runtime: SimDuration::from_ms(300),
    };
    let (stats, _) = run_ycsb(TestbedConfig::single_vm(SchemeKind::Vfio), spec, lsm);
    assert!(stats.flushes >= 2, "only {} flushes", stats.flushes);
    let expected_min = stats.flushes * (lsm.memtable_bytes as f64 * 0.8) as u64;
    assert!(
        stats.background_bytes >= expected_min,
        "background {} < {}",
        stats.background_bytes,
        expected_min
    );
}
