//! Conservation property: whatever the scheme, queue depth, block size,
//! and mix, every submitted I/O completes exactly once, successfully,
//! and in bounded simulated time.

use bm_nvme::types::Lba;
use bm_sim::SimTime;
use bm_testbed::{
    BufferId, Client, ClientOutput, Completion, DeviceId, IoOp, IoRequest, SchemeKind, Testbed,
    TestbedConfig, World,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

struct Tracker {
    total: u64,
    issued: u64,
    depth: u32,
    blocks: u32,
    buf: BufferId,
    write_frac: f64,
    seen_tags: Rc<RefCell<HashSet<u64>>>,
    failures: Rc<RefCell<u64>>,
}

impl Tracker {
    fn next(&mut self) -> IoRequest {
        self.issued += 1;
        let write = (self.issued as f64 / self.total as f64) < self.write_frac;
        IoRequest {
            dev: DeviceId(0),
            op: if write { IoOp::Write } else { IoOp::Read },
            lba: Lba((self.issued * 7919) % 1_000_000),
            blocks: self.blocks,
            buf: self.buf,
            tag: self.issued,
        }
    }
}

impl Client for Tracker {
    fn start(&mut self, _now: SimTime) -> ClientOutput {
        let n = self.depth.min(self.total as u32);
        ClientOutput::submit((0..n).map(|_| self.next()).collect())
    }

    fn on_completion(&mut self, _now: SimTime, c: Completion) -> ClientOutput {
        if !c.status.is_success() {
            *self.failures.borrow_mut() += 1;
        }
        assert!(
            self.seen_tags.borrow_mut().insert(c.tag),
            "tag {} completed twice",
            c.tag
        );
        if self.issued < self.total {
            ClientOutput::submit(vec![self.next()])
        } else {
            ClientOutput::idle()
        }
    }
}

fn scheme_from_index(i: usize) -> SchemeKind {
    match i % 5 {
        0 => SchemeKind::Native,
        1 => SchemeKind::Vfio,
        2 => SchemeKind::BmStore { in_vm: false },
        3 => SchemeKind::BmStore { in_vm: true },
        _ => SchemeKind::SpdkVhost { cores: 1 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn every_io_completes_exactly_once(
        scheme_idx in 0usize..5,
        depth in 1u32..256,
        block_exp in 0u32..6, // 4K..128K
        write_frac in 0.0f64..1.0,
        total in 50u64..400,
        seed in any::<u64>(),
    ) {
        let blocks = 1 << block_exp;
        let scheme = scheme_from_index(scheme_idx);
        let cfg = match &scheme {
            SchemeKind::Native => TestbedConfig::native(1),
            SchemeKind::BmStore { in_vm: false } => TestbedConfig::bm_store_bare_metal(1),
            other => TestbedConfig::single_vm(other.clone()),
        }
        .with_seed(seed);
        let mut tb = Testbed::new(cfg);
        let buf = tb.register_buffer(blocks as u64 * 4096);
        let seen_tags = Rc::new(RefCell::new(HashSet::new()));
        let failures = Rc::new(RefCell::new(0u64));
        let client = Tracker {
            total,
            issued: 0,
            depth,
            blocks,
            buf,
            write_frac,
            seen_tags: Rc::clone(&seen_tags),
            failures: Rc::clone(&failures),
        };
        let mut world = World::new(tb);
        world.add_client(Box::new(client));
        let world = world.run(None);
        prop_assert_eq!(
            seen_tags.borrow().len() as u64,
            total,
            "lost completions under {:?}",
            scheme
        );
        prop_assert_eq!(*failures.borrow(), 0);
        // Bounded time: nothing leaked into the far future.
        let _ = world;
    }
}
