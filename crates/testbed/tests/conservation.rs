//! Conservation property: whatever the scheme, queue depth, block size,
//! and mix, every submitted I/O completes exactly once, successfully,
//! and in bounded simulated time.
//!
//! The fault-aware variant relaxes "successfully" to the accounting
//! identity: under a nonempty [`FaultPlan`] every submitted I/O still
//! completes exactly once, and `submitted == success + error +
//! explicitly-aborted` — faults may fail commands but may never lose or
//! duplicate them.

use bm_nvme::types::Lba;
use bm_nvme::Status;
use bm_sim::faults::{FaultKind, FaultPlan};
use bm_sim::{SimDuration, SimTime};
use bm_testbed::{
    BufferId, Client, ClientOutput, Completion, DeviceId, IoOp, IoRequest, SchemeKind, Testbed,
    TestbedConfig, World,
};
use bmstore_core::FailPolicy;
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

struct Tracker {
    total: u64,
    issued: u64,
    depth: u32,
    blocks: u32,
    buf: BufferId,
    write_frac: f64,
    seen_tags: Rc<RefCell<HashSet<u64>>>,
    failures: Rc<RefCell<u64>>,
}

impl Tracker {
    fn next(&mut self) -> IoRequest {
        self.issued += 1;
        let write = (self.issued as f64 / self.total as f64) < self.write_frac;
        IoRequest {
            dev: DeviceId(0),
            op: if write { IoOp::Write } else { IoOp::Read },
            lba: Lba((self.issued * 7919) % 1_000_000),
            blocks: self.blocks,
            buf: self.buf,
            tag: self.issued,
        }
    }
}

impl Client for Tracker {
    fn start(&mut self, _now: SimTime) -> ClientOutput {
        let n = self.depth.min(self.total as u32);
        ClientOutput::submit((0..n).map(|_| self.next()).collect())
    }

    fn on_completion(&mut self, _now: SimTime, c: Completion) -> ClientOutput {
        if !c.status.is_success() {
            *self.failures.borrow_mut() += 1;
        }
        assert!(
            self.seen_tags.borrow_mut().insert(c.tag),
            "tag {} completed twice",
            c.tag
        );
        if self.issued < self.total {
            ClientOutput::submit(vec![self.next()])
        } else {
            ClientOutput::idle()
        }
    }
}

fn scheme_from_index(i: usize) -> SchemeKind {
    match i % 5 {
        0 => SchemeKind::Native,
        1 => SchemeKind::Vfio,
        2 => SchemeKind::BmStore { in_vm: false },
        3 => SchemeKind::BmStore { in_vm: true },
        _ => SchemeKind::SpdkVhost { cores: 1 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn every_io_completes_exactly_once(
        scheme_idx in 0usize..5,
        depth in 1u32..256,
        block_exp in 0u32..6, // 4K..128K
        write_frac in 0.0f64..1.0,
        total in 50u64..400,
        seed in any::<u64>(),
    ) {
        let blocks = 1 << block_exp;
        let scheme = scheme_from_index(scheme_idx);
        let cfg = match &scheme {
            SchemeKind::Native => TestbedConfig::native(1),
            SchemeKind::BmStore { in_vm: false } => TestbedConfig::bm_store_bare_metal(1),
            other => TestbedConfig::single_vm(other.clone()),
        }
        .with_seed(seed);
        let mut tb = Testbed::new(cfg);
        let buf = tb.register_buffer(blocks as u64 * 4096);
        let seen_tags = Rc::new(RefCell::new(HashSet::new()));
        let failures = Rc::new(RefCell::new(0u64));
        let client = Tracker {
            total,
            issued: 0,
            depth,
            blocks,
            buf,
            write_frac,
            seen_tags: Rc::clone(&seen_tags),
            failures: Rc::clone(&failures),
        };
        let mut world = World::new(tb);
        world.add_client(Box::new(client));
        let world = world.run(None);
        prop_assert_eq!(
            seen_tags.borrow().len() as u64,
            total,
            "lost completions under {:?}",
            scheme
        );
        prop_assert_eq!(*failures.borrow(), 0);
        // Bounded time: nothing leaked into the far future.
        let _ = world;
    }
}

/// Per-status completion tally shared with the harness.
#[derive(Default)]
struct StatusCounts {
    success: u64,
    error: u64,
    aborted: u64,
}

/// A fixed-depth closed-loop client that tallies completions by status
/// instead of asserting success.
struct FaultTracker {
    total: u64,
    issued: u64,
    depth: u32,
    buf: BufferId,
    counts: Rc<RefCell<StatusCounts>>,
    seen_tags: Rc<RefCell<HashSet<u64>>>,
}

impl FaultTracker {
    fn next(&mut self) -> IoRequest {
        self.issued += 1;
        IoRequest {
            dev: DeviceId(0),
            op: if self.issued.is_multiple_of(3) {
                IoOp::Write
            } else {
                IoOp::Read
            },
            lba: Lba((self.issued * 7919) % 1_000_000),
            blocks: 1,
            buf: self.buf,
            tag: self.issued,
        }
    }
}

impl Client for FaultTracker {
    fn start(&mut self, _now: SimTime) -> ClientOutput {
        let n = self.depth.min(self.total as u32);
        ClientOutput::submit((0..n).map(|_| self.next()).collect())
    }

    fn on_completion(&mut self, _now: SimTime, c: Completion) -> ClientOutput {
        assert!(
            self.seen_tags.borrow_mut().insert(c.tag),
            "tag {} completed twice",
            c.tag
        );
        let mut counts = self.counts.borrow_mut();
        if c.status.is_success() {
            counts.success += 1;
        } else if c.status == Status::Aborted {
            counts.aborted += 1;
        } else {
            counts.error += 1;
        }
        drop(counts);
        if self.issued < self.total {
            ClientOutput::submit(vec![self.next()])
        } else {
            ClientOutput::idle()
        }
    }
}

fn us(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_us(n)
}

fn run_under_faults(plan: FaultPlan, depth: u32, total: u64, seed: u64) -> StatusCounts {
    let cfg = TestbedConfig::bm_store_bare_metal(1)
        .with_seed(seed)
        .with_fault_plan(plan)
        .with_command_timeout(SimDuration::from_us(500), FailPolicy::AbortToHost);
    let mut tb = Testbed::new(cfg);
    let buf = tb.register_buffer(4096);
    let counts = Rc::new(RefCell::new(StatusCounts::default()));
    let seen_tags = Rc::new(RefCell::new(HashSet::new()));
    let client = FaultTracker {
        total,
        issued: 0,
        depth,
        buf,
        counts: Rc::clone(&counts),
        seen_tags: Rc::clone(&seen_tags),
    };
    let mut world = World::new(tb);
    world.add_client(Box::new(client));
    let world = world.run(None);
    assert_eq!(
        seen_tags.borrow().len() as u64,
        total,
        "lost or stuck completions under faults"
    );
    drop(world);
    Rc::try_unwrap(counts)
        .unwrap_or_else(|_| panic!("counts still shared"))
        .into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn faults_never_lose_or_duplicate_completions(
        depth in 1u32..64,
        total in 40u64..200,
        seed in any::<u64>(),
        spike in any::<bool>(),
        stall in any::<bool>(),
        burst_prob in 0.0f64..0.5,
        drops in 0u32..8,
        retrain in any::<bool>(),
    ) {
        let mut plan = FaultPlan::new(seed ^ 0xF417);
        // Always nonempty: the ISSUE's law is about fault-laden runs.
        plan.push(
            us(5),
            FaultKind::SsdErrorBurst { ssd: 0, probability: burst_prob, until: us(700) },
        );
        if spike {
            plan.push(
                us(10),
                FaultKind::SsdLatencySpike {
                    ssd: 0,
                    extra: SimDuration::from_us(50),
                    until: us(400),
                },
            );
        }
        if stall {
            plan.push(us(20), FaultKind::SsdStall { ssd: 0, until: us(350) });
        }
        if drops > 0 {
            plan.push(us(1), FaultKind::SsdDropCommands { ssd: 0, count: drops });
        }
        if retrain {
            plan.push(us(30), FaultKind::LinkRetrain { until: us(120) });
        }
        let counts = run_under_faults(plan, depth, total, seed);
        // The conservation identity: nothing vanished, nothing doubled.
        prop_assert_eq!(counts.success + counts.error + counts.aborted, total);
    }
}

#[test]
fn exhausted_retries_surface_as_explicit_aborts() {
    // Depth 1 makes the drop accounting exact: the first command's
    // initial attempt and both retries are all swallowed (3 drops),
    // after which the engine aborts it to the host. Everything else
    // completes normally.
    let plan = FaultPlan::new(7).with(
        SimTime::ZERO,
        FaultKind::SsdDropCommands { ssd: 0, count: 3 },
    );
    let counts = run_under_faults(plan, 1, 20, 42);
    assert_eq!(counts.aborted, 1, "exactly the dropped command aborts");
    assert_eq!(counts.error, 0);
    assert_eq!(counts.success, 19);
}

#[test]
fn dead_ssd_fails_everything_but_conserves_completions() {
    let plan = FaultPlan::new(9).with(us(40), FaultKind::SsdDeath { ssd: 0 });
    let counts = run_under_faults(plan, 8, 100, 1);
    assert_eq!(counts.success + counts.error + counts.aborted, 100);
    assert!(counts.error > 0, "a dead SSD must fail I/O loudly");
}
