//! Scheme equivalence: the same seeded workload pushed through every
//! [`Scheme`](bm_testbed::Scheme) implementation must
//!
//! * read back byte-identical data (payload integrity is a property of
//!   the pipeline, not of any one scheme),
//! * complete in a deterministic order — repeating a run with the same
//!   seed reproduces the exact completion sequence, and every scheme
//!   completes the same set of commands, and
//! * traverse all five observable pipeline stages exactly once per
//!   command (submit → translate → doorbell → backend → complete).

use bm_nvme::types::Lba;
use bm_sim::SimTime;
use bm_ssd::DataMode;
use bm_testbed::{
    BufferId, Client, ClientOutput, Completion, CountingObserver, DeviceId, IoOp, IoRequest,
    PipelineStage, SchemeKind, Testbed, TestbedConfig, World,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

const ALL_SCHEMES: [SchemeKind; 6] = [
    SchemeKind::Native,
    SchemeKind::Vfio,
    SchemeKind::BmStore { in_vm: false },
    SchemeKind::BmStore { in_vm: true },
    SchemeKind::SpdkVhost { cores: 1 },
    SchemeKind::ArmOffload,
];

/// Writes one distinct pattern per LBA, then (after all writes land)
/// reads every LBA back into its own buffer, recording completion
/// order by tag.
struct WriteAllReadAll {
    lbas: Vec<u64>,
    wbufs: Vec<BufferId>,
    rbufs: Vec<BufferId>,
    writes_done: usize,
    order: Rc<RefCell<Vec<u64>>>,
}

impl WriteAllReadAll {
    fn io(&self, i: usize, read: bool) -> IoRequest {
        IoRequest {
            dev: DeviceId(0),
            op: if read { IoOp::Read } else { IoOp::Write },
            lba: Lba(self.lbas[i]),
            blocks: 1,
            buf: if read { self.rbufs[i] } else { self.wbufs[i] },
            tag: if read { self.lbas.len() + i } else { i } as u64,
        }
    }
}

impl Client for WriteAllReadAll {
    fn start(&mut self, _now: SimTime) -> ClientOutput {
        ClientOutput::submit((0..self.lbas.len()).map(|i| self.io(i, false)).collect())
    }

    fn on_completion(&mut self, _now: SimTime, c: Completion) -> ClientOutput {
        assert!(c.status.is_success(), "I/O failed: {}", c.status);
        self.order.borrow_mut().push(c.tag);
        if c.is_write {
            self.writes_done += 1;
            if self.writes_done == self.lbas.len() {
                // Barrier reached: every write is durable; read all back.
                return ClientOutput::submit(
                    (0..self.lbas.len()).map(|i| self.io(i, true)).collect(),
                );
            }
        }
        ClientOutput::idle()
    }
}

/// One deterministic pattern per (seed, index) so mismatches identify
/// the command that corrupted data.
fn pattern(seed: u64, i: usize) -> Vec<u8> {
    (0..4096u64)
        .map(|b| {
            (seed
                .wrapping_mul(31)
                .wrapping_add(i as u64 * 131)
                .wrapping_add(b * 7)
                % 251) as u8
        })
        .collect()
}

struct RunResult {
    /// Completion order, as tags.
    order: Vec<u64>,
    /// Read-back bytes per LBA index.
    readback: Vec<Vec<u8>>,
    /// Observer counts for the five pipeline stages.
    stage_counts: [u64; 5],
}

fn run_workload(scheme: SchemeKind, seed: u64, lbas: &[u64]) -> RunResult {
    let cfg = match scheme {
        SchemeKind::Native => TestbedConfig::native(1),
        SchemeKind::BmStore { in_vm: false } => TestbedConfig::bm_store_bare_metal(1),
        other => TestbedConfig::single_vm(other),
    }
    .with_seed(seed)
    .with_data_mode(DataMode::Full);
    let mut tb = Testbed::new(cfg);
    let mut wbufs = Vec::new();
    let mut rbufs = Vec::new();
    for i in 0..lbas.len() {
        let wbuf = tb.register_buffer(4096);
        tb.host_mem.write(tb.buffer_addr(wbuf), &pattern(seed, i));
        wbufs.push(wbuf);
        rbufs.push(tb.register_buffer(4096));
    }
    let order = Rc::new(RefCell::new(Vec::new()));
    let client = WriteAllReadAll {
        lbas: lbas.to_vec(),
        wbufs,
        rbufs: rbufs.clone(),
        writes_done: 0,
        order: Rc::clone(&order),
    };
    let mut world = World::new(tb);
    world.add_client(Box::new(client));
    let observer = Rc::new(RefCell::new(CountingObserver::default()));
    world.set_observer(observer.clone());
    let mut world = world.run(None);
    let readback = rbufs
        .iter()
        .map(|&buf| world.tb.host_mem.read_vec(world.tb.buffer_addr(buf), 4096))
        .collect();
    let obs = observer.borrow();
    let mut stage_counts = [0u64; 5];
    for (i, stage) in PipelineStage::ALL.into_iter().enumerate() {
        stage_counts[i] = obs.count(stage);
    }
    let order = order.borrow().clone();
    RunResult {
        order,
        readback,
        stage_counts,
    }
}

fn check_equivalence(seed: u64, lbas: &[u64]) {
    let total = 2 * lbas.len() as u64;
    let expected_tags: Vec<u64> = (0..total).collect();
    for scheme in ALL_SCHEMES {
        let a = run_workload(scheme.clone(), seed, lbas);
        // (a) Byte-identical read-back on every scheme.
        for (i, got) in a.readback.iter().enumerate() {
            assert_eq!(
                got,
                &pattern(seed, i),
                "readback mismatch under {scheme:?} (lba {})",
                lbas[i]
            );
        }
        // (b) Every command completed, and a re-run with the same seed
        // reproduces the completion order exactly.
        let mut sorted = a.order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted, expected_tags,
            "lost/duplicate completions under {scheme:?}"
        );
        let b = run_workload(scheme.clone(), seed, lbas);
        assert_eq!(
            a.order, b.order,
            "non-deterministic completion order under {scheme:?}"
        );
        // (c) Each command traversed every pipeline stage exactly once.
        assert_eq!(
            a.stage_counts, [total; 5],
            "pipeline stage traversal under {scheme:?}"
        );
    }
}

#[test]
fn all_schemes_equivalent_on_fixed_workload() {
    check_equivalence(7, &[0, 1, 97, 4096, 99_999]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized seeds and LBA sets: every scheme round-trips the
    /// bytes, completes deterministically, and hits all five stages.
    #[test]
    fn equivalence_holds_for_random_workloads(
        seed in 1u64..10_000,
        raw in proptest::collection::vec(0u64..100_000, 1..8),
    ) {
        let mut lbas = raw.clone();
        lbas.sort_unstable();
        lbas.dedup();
        check_equivalence(seed, &lbas);
    }
}
