//! Testbed flow tests: each scheme carries a minimal closed loop
//! end-to-end, rings stay consistent over many wraps, and backpressure
//! (waiting queue) engages and drains.

use bm_nvme::types::Lba;
use bm_sim::{SimDuration, SimTime};
use bm_testbed::{
    BufferId, Client, ClientOutput, Completion, DeviceId, IoOp, IoRequest, SchemeKind, Testbed,
    TestbedConfig, World,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Issues `total` mixed I/Os at `depth`, counting (ok, err).
struct Loop {
    dev: DeviceId,
    depth: u32,
    total: u64,
    issued: u64,
    buf: BufferId,
    done: Rc<RefCell<(u64, u64)>>,
}

impl Loop {
    fn next(&mut self) -> IoRequest {
        self.issued += 1;
        IoRequest {
            dev: self.dev,
            op: if self.issued.is_multiple_of(4) {
                IoOp::Write
            } else {
                IoOp::Read
            },
            lba: Lba((self.issued * 97) % 100_000),
            blocks: 1,
            buf: self.buf,
            tag: self.issued,
        }
    }
}

impl Client for Loop {
    fn start(&mut self, _now: SimTime) -> ClientOutput {
        let n = self.depth.min(self.total as u32);
        ClientOutput::submit((0..n).map(|_| self.next()).collect())
    }

    fn on_completion(&mut self, _now: SimTime, c: Completion) -> ClientOutput {
        let mut d = self.done.borrow_mut();
        if c.status.is_success() {
            d.0 += 1;
        } else {
            d.1 += 1;
        }
        drop(d);
        if self.issued < self.total {
            ClientOutput::submit(vec![self.next()])
        } else {
            ClientOutput::idle()
        }
    }
}

fn drive(scheme: SchemeKind, total: u64, depth: u32) -> (u64, u64) {
    let cfg = match &scheme {
        SchemeKind::Native => TestbedConfig::native(1),
        SchemeKind::BmStore { in_vm: false } => TestbedConfig::bm_store_bare_metal(1),
        other => TestbedConfig::single_vm(other.clone()),
    };
    let mut tb = Testbed::new(cfg);
    let buf = tb.register_buffer(4096);
    let done = Rc::new(RefCell::new((0, 0)));
    let client = Loop {
        dev: DeviceId(0),
        depth,
        total,
        issued: 0,
        buf,
        done: Rc::clone(&done),
    };
    let mut world = World::new(tb);
    world.add_client(Box::new(client));
    let _ = world.run(None);
    let result = *done.borrow();
    result
}

#[test]
fn every_scheme_completes_every_io() {
    for scheme in [
        SchemeKind::Native,
        SchemeKind::Vfio,
        SchemeKind::BmStore { in_vm: false },
        SchemeKind::BmStore { in_vm: true },
        SchemeKind::SpdkVhost { cores: 1 },
        SchemeKind::ArmOffload,
    ] {
        let (ok, err) = drive(scheme.clone(), 500, 16);
        assert_eq!((ok, err), (500, 0), "scheme {scheme:?}");
    }
}

#[test]
fn rings_survive_many_wraps() {
    // 10 000 I/Os through 2048-entry rings: ~5 wraps of every ring in
    // the path (host view, engine view, back-end, CQ phase flips).
    let (ok, err) = drive(SchemeKind::BmStore { in_vm: false }, 10_000, 64);
    assert_eq!((ok, err), (10_000, 0));
}

#[test]
fn queue_depth_above_ring_capacity_backpressures() {
    // Ask for more outstanding than the 2048-deep ring allows: the
    // waiting queue must absorb and drain everything.
    let (ok, err) = drive(SchemeKind::Native, 6_000, 3_000);
    assert_eq!((ok, err), (6_000, 0));
}

struct OneShot {
    reqs: Vec<IoRequest>,
    results: Rc<RefCell<Vec<bool>>>,
    done_at: Rc<RefCell<SimTime>>,
}

impl Client for OneShot {
    fn start(&mut self, _now: SimTime) -> ClientOutput {
        ClientOutput::submit(vec![self.reqs.remove(0)])
    }

    fn on_completion(&mut self, now: SimTime, c: Completion) -> ClientOutput {
        self.results.borrow_mut().push(c.status.is_success());
        *self.done_at.borrow_mut() = now;
        if self.reqs.is_empty() {
            ClientOutput::idle()
        } else {
            ClientOutput::submit(vec![self.reqs.remove(0)])
        }
    }
}

#[test]
fn out_of_range_lba_fails_cleanly() {
    let cfg = TestbedConfig::bm_store_bare_metal(1);
    let mut tb = Testbed::new(cfg);
    let blocks = tb.device_blocks(DeviceId(0));
    let buf = tb.register_buffer(4096);
    let results = Rc::new(RefCell::new(Vec::new()));
    let mut world = World::new(tb);
    world.add_client(Box::new(OneShot {
        reqs: vec![IoRequest {
            dev: DeviceId(0),
            op: IoOp::Read,
            lba: Lba(blocks + 10),
            blocks: 1,
            buf,
            tag: 0,
        }],
        results: Rc::clone(&results),
        done_at: Rc::new(RefCell::new(SimTime::ZERO)),
    }));
    let _ = world.run(None);
    assert_eq!(&*results.borrow(), &[false], "one clean error completion");
}

#[test]
fn flush_completes_on_all_schemes() {
    for scheme in [
        SchemeKind::Native,
        SchemeKind::BmStore { in_vm: false },
        SchemeKind::SpdkVhost { cores: 1 },
    ] {
        let cfg = match &scheme {
            SchemeKind::Native => TestbedConfig::native(1),
            SchemeKind::BmStore { in_vm: false } => TestbedConfig::bm_store_bare_metal(4),
            other => TestbedConfig::single_vm(other.clone()),
        };
        let mut tb = Testbed::new(cfg);
        let buf = tb.register_buffer(4096);
        let results = Rc::new(RefCell::new(Vec::new()));
        let mut world = World::new(tb);
        world.add_client(Box::new(OneShot {
            reqs: vec![
                IoRequest {
                    dev: DeviceId(0),
                    op: IoOp::Write,
                    lba: Lba(5),
                    blocks: 1,
                    buf,
                    tag: 1,
                },
                IoRequest {
                    dev: DeviceId(0),
                    op: IoOp::Flush,
                    lba: Lba(0),
                    blocks: 1,
                    buf,
                    tag: 2,
                },
            ],
            results: Rc::clone(&results),
            done_at: Rc::new(RefCell::new(SimTime::ZERO)),
        }));
        let _ = world.run(None);
        assert_eq!(&*results.borrow(), &[true, true], "scheme {scheme:?}");
    }
}

#[test]
fn bm_store_flush_fans_out_to_striped_ssds() {
    // A namespace striped over 4 SSDs must flush all of them before
    // completing the host flush.
    let cfg = TestbedConfig::multi_vm_bm_store(1);
    let mut tb = Testbed::new(cfg);
    let buf = tb.register_buffer(4096);
    let results = Rc::new(RefCell::new(Vec::new()));
    let done_at = Rc::new(RefCell::new(SimTime::ZERO));
    let mut world = World::new(tb);
    world.add_client(Box::new(OneShot {
        reqs: vec![IoRequest {
            dev: DeviceId(0),
            op: IoOp::Flush,
            lba: Lba(0),
            blocks: 1,
            buf,
            tag: 0,
        }],
        results: Rc::clone(&results),
        done_at: Rc::clone(&done_at),
    }));
    let world = world.run(None);
    assert_eq!(&*results.borrow(), &[true]);
    assert!(*done_at.borrow() > SimTime::ZERO + SimDuration::from_us(100));
    for i in 0..4 {
        assert!(world.tb.ssd(i).fetched() >= 1, "ssd{i} got the flush");
    }
}

#[test]
fn engine_backlog_absorbs_more_than_backend_ring() {
    // 1500 outstanding against a single SSD exceeds the engine's
    // 1024-deep back-end ring: the overflow must wait in the engine's
    // backlog and drain as completions free slots.
    let (ok, err) = drive(SchemeKind::BmStore { in_vm: false }, 4_000, 1_500);
    assert_eq!((ok, err), (4_000, 0));
}
