//! Client-facing types: requests, completions, and the [`Client`] trait
//! workload generators implement.

use bm_nvme::types::Lba;
use bm_nvme::Status;
use bm_sim::SimTime;
use std::fmt;

/// Index of a tenant-visible block device in the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Index of a registered client (workload generator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(pub usize);

/// Handle to a pre-registered DMA buffer (PRPs prebuilt at registration
/// so the per-I/O path allocates nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub usize);

/// The I/O operation kinds tenants issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Read logical blocks.
    Read,
    /// Write logical blocks.
    Write,
    /// Flush the device's volatile write cache.
    Flush,
}

impl IoOp {
    /// Whether data moves host → device.
    pub fn is_write(self) -> bool {
        matches!(self, IoOp::Write)
    }
}

/// One I/O a client wants issued.
#[derive(Debug, Clone, Copy)]
pub struct IoRequest {
    /// Target device.
    pub dev: DeviceId,
    /// Operation.
    pub op: IoOp,
    /// Starting logical block (device-relative).
    pub lba: Lba,
    /// Block count (1-based; ignored for flush).
    pub blocks: u32,
    /// Data buffer (must cover `blocks`; ignored for flush).
    pub buf: BufferId,
    /// Client-private correlation value.
    pub tag: u64,
}

/// A finished I/O delivered back to its client.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The request's correlation value.
    pub tag: u64,
    /// The device it ran on.
    pub dev: DeviceId,
    /// When the client submitted it.
    pub submitted: SimTime,
    /// When the client observed completion.
    pub completed: SimTime,
    /// Completion status.
    pub status: Status,
    /// Bytes transferred.
    pub bytes: u64,
    /// Whether it was a write.
    pub is_write: bool,
}

impl Completion {
    /// End-to-end latency as the tenant measures it.
    pub fn latency(&self) -> bm_sim::SimDuration {
        self.completed.saturating_since(self.submitted)
    }
}

/// What a client wants after being called.
#[derive(Debug, Default)]
pub struct ClientOutput {
    /// I/Os to submit now.
    pub requests: Vec<IoRequest>,
    /// If set, call [`Client::on_timer`] at this time.
    pub next_timer: Option<SimTime>,
}

impl ClientOutput {
    /// No requests, no timer.
    pub fn idle() -> Self {
        Self::default()
    }

    /// Submit these requests.
    pub fn submit(requests: Vec<IoRequest>) -> Self {
        ClientOutput {
            requests,
            next_timer: None,
        }
    }
}

/// A workload generator driving one or more devices.
///
/// Clients are called on the simulation thread with the current virtual
/// time; they own their statistics and randomness.
pub trait Client: 'static {
    /// Called once at simulation start.
    fn start(&mut self, now: SimTime) -> ClientOutput;

    /// Called when one of this client's I/Os completes.
    fn on_completion(&mut self, now: SimTime, completion: Completion) -> ClientOutput;

    /// Called at a previously requested timer.
    fn on_timer(&mut self, _now: SimTime) -> ClientOutput {
        ClientOutput::idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_sim::SimDuration;

    #[test]
    fn completion_latency() {
        let c = Completion {
            tag: 0,
            dev: DeviceId(0),
            submitted: SimTime::from_nanos(100),
            completed: SimTime::from_nanos(1100),
            status: Status::Success,
            bytes: 4096,
            is_write: false,
        };
        assert_eq!(c.latency(), SimDuration::from_nanos(1000));
    }

    #[test]
    fn op_direction() {
        assert!(IoOp::Write.is_write());
        assert!(!IoOp::Read.is_write());
        assert!(!IoOp::Flush.is_write());
    }
}
