//! Testbed construction: scheme choice, device layout, knobs.

use bm_host::KernelProfile;
use bm_sim::faults::FaultPlan;
use bm_sim::slo::SloConfig;
use bm_sim::SimDuration;
use bm_ssd::{DataMode, PerfProfile, SsdId};
use bmstore_core::engine::qos::QosLimit;
use bmstore_core::{FailPolicy, Placement};

/// Which storage virtualization scheme attaches the devices.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeKind {
    /// Bare-metal native NVMe (the paper's baseline).
    Native,
    /// VFIO passthrough into VMs (whole device per VM).
    Vfio,
    /// BM-Store: engine + controller, namespaces bound to VFs.
    BmStore {
        /// Devices attach inside VMs (true for §V-C/D/E, false for
        /// the bare-metal §V-B runs).
        in_vm: bool,
    },
    /// SPDK vhost with this many dedicated polling cores.
    SpdkVhost {
        /// Reserved host polling cores.
        cores: usize,
    },
    /// A LeapIO-style ARM full offload (ablation).
    ArmOffload,
}

/// One tenant device to create.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Capacity in bytes (BM-Store namespace size; partition size for
    /// vhost; ignored for whole-disk native/VFIO).
    pub size_bytes: u64,
    /// Placement for BM-Store bindings.
    pub placement: Placement,
    /// QoS limit (BM-Store only).
    pub qos: QosLimit,
}

impl DeviceSpec {
    /// A whole-disk-sized device on one SSD.
    pub fn whole_disk(ssd: u8) -> Self {
        DeviceSpec {
            size_bytes: 1536 << 30,
            placement: Placement::Single(SsdId(ssd)),
            qos: QosLimit::UNLIMITED,
        }
    }

    /// The paper's multi-VM namespace: 256 GB round-robin (§V-D).
    pub fn vm_namespace() -> Self {
        DeviceSpec {
            size_bytes: 256 << 30,
            placement: Placement::RoundRobin,
            qos: QosLimit::UNLIMITED,
        }
    }

    /// A 256 GB namespace placed on one SSD (per-tenant isolation, the
    /// §V-E mixed-workload layout).
    pub fn vm_namespace_on(ssd: u8) -> Self {
        DeviceSpec {
            size_bytes: 256 << 30,
            placement: Placement::Single(SsdId(ssd)),
            qos: QosLimit::UNLIMITED,
        }
    }
}

/// Full testbed configuration.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// The scheme under test.
    pub scheme: SchemeKind,
    /// Number of back-end SSDs.
    pub ssds: usize,
    /// SSD performance profile.
    pub ssd_profile: PerfProfile,
    /// Whether I/O payload bytes actually move (integrity tests).
    pub data_mode: DataMode,
    /// Host kernel profile.
    pub kernel: KernelProfile,
    /// Tenant devices.
    pub devices: Vec<DeviceSpec>,
    /// Ring depth of tenant queues.
    pub queue_entries: u16,
    /// RNG seed.
    pub seed: u64,
    /// Apply the kernel's block-layer plug factor to reported latency
    /// (the Table VI fio configuration exhibits it; Table V's does not).
    pub apply_plug_factor: bool,
    /// Overrides the SPDK vhost tuning (defaults by kernel profile).
    pub spdk_config: Option<bm_baselines::spdk::SpdkVhostConfig>,
    /// BM-Store ablation: store-and-forward card-DRAM bandwidth
    /// (`None` = the paper's zero-copy DMA routing).
    pub store_and_forward_bw: Option<f64>,
    /// Scheduled/probabilistic fault injections. The default empty plan
    /// is inert: no events are scheduled and no RNG is drawn, so
    /// fault-free runs are bit-identical to builds without this field.
    pub fault_plan: FaultPlan,
    /// BM-Store engine per-command timeout (`None` = timeouts disarmed,
    /// the paper-default fast path).
    pub command_timeout: Option<SimDuration>,
    /// What the BM-Store engine does after exhausting timeout retries.
    pub engine_fail_policy: FailPolicy,
    /// Fault-injection sabotage knob for crash-journal tests: the
    /// engine silently drops the last journaled span on every crash.
    /// The chaos harness's oracles must catch the resulting lost
    /// command. Never set outside tests.
    #[doc(hidden)]
    pub engine_drop_journal_tail: bool,
    /// Enables the telemetry recorder (per-command spans, tenant
    /// aggregation, trace export). Off by default: a disabled handle is
    /// inert — no events are recorded and no state is touched — so
    /// telemetry-off runs are bit-identical to builds without it.
    pub telemetry: bool,
    /// Enables the metrics registry and its periodic sampler (counters,
    /// gauges, bounded time series, bottleneck report). Same inert-off
    /// discipline as `telemetry`: disabled runs are bit-identical.
    pub metrics: bool,
    /// Sampling period of the metrics time-series event (ignored when
    /// `metrics` is off).
    pub metrics_interval: SimDuration,
    /// Per-tenant SLO policy, evaluated on every sampler tick. `None`
    /// is inert; setting it implies `metrics` (alerts are recorded as
    /// metric annotations).
    pub slo: Option<SloConfig>,
    /// Enables the wall-clock self-profiler (`bm-prof`): scoped timers
    /// around event dispatch, allocation attribution, and the
    /// events/sec sampler. Read-only with respect to the simulation —
    /// profiler-on runs are byte-identical to profiler-off runs (the
    /// property `bmstore_cli prof --smoke` gates on).
    pub profiler: bool,
}

impl TestbedConfig {
    /// Bare-metal native, one device per SSD.
    pub fn native(ssds: usize) -> Self {
        TestbedConfig {
            scheme: SchemeKind::Native,
            ssds,
            ssd_profile: PerfProfile::p4510_2tb(),
            data_mode: DataMode::TimingOnly,
            kernel: KernelProfile::centos79_310(),
            devices: (0..ssds).map(|i| DeviceSpec::whole_disk(i as u8)).collect(),
            queue_entries: 2048,
            seed: 42,
            apply_plug_factor: false,
            spdk_config: None,
            store_and_forward_bw: None,
            fault_plan: FaultPlan::default(),
            command_timeout: None,
            engine_fail_policy: FailPolicy::AbortToHost,
            engine_drop_journal_tail: false,
            telemetry: false,
            metrics: false,
            metrics_interval: SimDuration::from_us(20),
            slo: None,
            profiler: false,
        }
    }

    /// Bare-metal BM-Store: the §V-B configuration (1536 GB namespace
    /// from one SSD per device).
    pub fn bm_store_bare_metal(ssds: usize) -> Self {
        TestbedConfig {
            scheme: SchemeKind::BmStore { in_vm: false },
            devices: (0..ssds).map(|i| DeviceSpec::whole_disk(i as u8)).collect(),
            ..Self::native(ssds)
        }
    }

    /// Single-VM comparisons (§V-C): one device, chosen scheme.
    pub fn single_vm(scheme: SchemeKind) -> Self {
        TestbedConfig {
            scheme,
            devices: vec![DeviceSpec::whole_disk(0)],
            ..Self::native(1)
        }
    }

    /// Multi-VM BM-Store (§V-D): `vms` round-robin 256 GB namespaces on
    /// 4 SSDs.
    pub fn multi_vm_bm_store(vms: usize) -> Self {
        TestbedConfig {
            scheme: SchemeKind::BmStore { in_vm: true },
            devices: (0..vms).map(|_| DeviceSpec::vm_namespace()).collect(),
            ..Self::native(4)
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the kernel profile.
    pub fn with_kernel(mut self, kernel: KernelProfile) -> Self {
        self.kernel = kernel;
        self
    }

    /// Enables full data movement.
    pub fn with_data_mode(mut self, mode: DataMode) -> Self {
        self.data_mode = mode;
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Arms the BM-Store engine's per-command timeout.
    pub fn with_command_timeout(mut self, timeout: SimDuration, policy: FailPolicy) -> Self {
        self.command_timeout = Some(timeout);
        self.engine_fail_policy = policy;
        self
    }

    /// Enables the telemetry recorder.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Enables the metrics registry and periodic sampler.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Overrides the metrics sampling period (implies [`Self::with_metrics`]).
    pub fn with_metrics_interval(mut self, interval: SimDuration) -> Self {
        self.metrics = true;
        self.metrics_interval = interval;
        self
    }

    /// Installs a per-tenant SLO policy (implies [`Self::with_metrics`]:
    /// the burn-rate evaluator rides the periodic sampler and records
    /// alerts as metric annotations).
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.metrics = true;
        self.slo = Some(slo);
        self
    }

    /// Enables the wall-clock self-profiler (see
    /// [`TestbedConfig::profiler`]).
    pub fn with_profiler(mut self) -> Self {
        self.profiler = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_shapes() {
        let n = TestbedConfig::native(4);
        assert_eq!(n.devices.len(), 4);
        let b = TestbedConfig::bm_store_bare_metal(1);
        assert!(matches!(b.scheme, SchemeKind::BmStore { in_vm: false }));
        let m = TestbedConfig::multi_vm_bm_store(26);
        assert_eq!(m.devices.len(), 26);
        assert_eq!(m.ssds, 4);
        let s = TestbedConfig::single_vm(SchemeKind::SpdkVhost { cores: 1 });
        assert_eq!(s.devices.len(), 1);
    }
}
