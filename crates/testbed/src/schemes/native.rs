//! Direct-attach scheme: host rings registered straight at the SSD.
//!
//! Serves both bare-metal native I/O and VFIO passthrough ([`vfio`]):
//! the data path is identical hardware queue-pair DMA; VFIO only adds
//! the guest-side interrupt costs, which live in the device's
//! [`VmState`](crate::world) and are charged by the interpreter.

use super::{BuildCtx, Effect, PipelineStage, Scheme, SchemeCtx, Stage, BUS_HOP};
use crate::types::DeviceId;
use crate::world::{Device, VmState};
use bm_baselines::vfio::VfioCosts;
use bm_nvme::queue::{CompletionQueue, SubmissionQueue};
use bm_nvme::types::QueueId;
use bm_sim::resource::FifoServer;
use bm_sim::{SimDuration, SimTime};
use bm_ssd::Ssd;
use std::collections::BTreeMap;

/// One whole SSD per device, rings registered at the hardware.
pub(crate) struct DirectScheme {
    name: &'static str,
    /// Per-device backend: (ssd index, SSD-side queue id).
    attach: Vec<(usize, QueueId)>,
    /// Maps (ssd index, backend qid) → device for completions.
    direct_map: BTreeMap<(usize, u16), DeviceId>,
}

/// Builds the native (bare-metal) scheme.
pub(crate) fn build(ctx: &mut BuildCtx) -> Box<dyn Scheme> {
    build_direct(ctx, false, "native")
}

/// Shared constructor for native and VFIO: identical data path, VFIO
/// adds per-device VM interrupt state.
pub(crate) fn build_direct(ctx: &mut BuildCtx, in_vm: bool, name: &'static str) -> Box<dyn Scheme> {
    let entries = ctx.cfg.queue_entries;
    let specs = ctx.cfg.devices.clone();
    let mut attach = Vec::new();
    let mut direct_map = BTreeMap::new();
    for (i, _spec) in specs.iter().enumerate() {
        assert!(i < ctx.ssds.len(), "one whole SSD per direct device");
        let (sq, cq) = ctx.alloc_rings(QueueId(1), entries);
        let ssd_sq = SubmissionQueue::new(QueueId(1), sq.base(), entries);
        let ssd_cq = CompletionQueue::new(QueueId(1), cq.base(), entries);
        let qid = ctx.ssds[i].attach_io_queues(ssd_sq, ssd_cq);
        let blocks = ctx.ssds[i].namespace().blocks();
        direct_map.insert((i, qid.0), DeviceId(i));
        attach.push((i, qid));
        let vm = in_vm.then(|| VmState {
            irq_cpu: FifoServer::new(),
            costs: VfioCosts::paper_default(),
        });
        ctx.devices.push(Device::new(sq, cq, vm, blocks));
    }
    Box::new(DirectScheme {
        name,
        attach,
        direct_map,
    })
}

impl Scheme for DirectScheme {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_doorbell(
        &mut self,
        now: SimTime,
        dev: DeviceId,
        tail: u32,
        _ctx: &mut SchemeCtx,
    ) -> Vec<Effect> {
        let (ssd, qid) = self.attach[dev.0];
        vec![Effect::ForwardToSsd {
            at: now + BUS_HOP,
            ssd,
            qid,
            tail,
        }]
    }

    fn on_stage(&mut self, now: SimTime, stage: Stage, ctx: &mut SchemeCtx) -> Vec<Effect> {
        match stage {
            Stage::BackendComplete { ssd, io } => {
                Ssd::deliver_read_payload(&io, ctx.host_mem);
                let cqe = match ctx.ssds[ssd].post_completion(&io, ctx.host_mem) {
                    Ok(cqe) => cqe,
                    Err(_) => {
                        // CQ full: retry after the host consumes.
                        return vec![Effect::ScheduleAt {
                            at: now + SimDuration::from_us(1),
                            stage: Stage::BackendComplete { ssd, io },
                        }];
                    }
                };
                let dev = *self
                    .direct_map
                    .get(&(ssd, io.qid.0))
                    .expect("completion for mapped queue");
                vec![
                    Effect::Trace {
                        stage: PipelineStage::Backend,
                        dev,
                        cid: cqe.cid,
                    },
                    // Hardware MSI straight to the host/guest.
                    Effect::RaiseInterrupt {
                        at: now + BUS_HOP,
                        dev,
                        cid: cqe.cid,
                        status: cqe.status,
                    },
                ]
            }
            // bm-lint: allow(wildcard-arm): a scheme only receives stages it scheduled itself; a misrouted variant fails loudly here in every build
            other => unreachable!("direct scheme never schedules {other:?}"),
        }
    }

    fn ack_host_cq(&mut self, _now: SimTime, dev: DeviceId, head: u32, ctx: &mut SchemeCtx) {
        let (ssd, qid) = self.attach[dev.0];
        ctx.ssds[ssd].ring_cq_doorbell(qid, head);
    }
}
