//! VFIO passthrough: the [`native`](super::native) direct-attach data
//! path with the device handed to a VM, so completions pay guest
//! interrupt delivery and vCPU costs ([`VfioCosts`]).
//!
//! [`VfioCosts`]: bm_baselines::vfio::VfioCosts

use super::{BuildCtx, Scheme};

/// Builds the VFIO scheme: direct rings plus per-device VM state.
pub(crate) fn build(ctx: &mut BuildCtx) -> Box<dyn Scheme> {
    super::native::build_direct(ctx, true, "vfio")
}
