//! Software-mediated data path shared by SPDK vhost and ARM offload.
//!
//! A [`Mediator`] polls the guest rings, pays its per-I/O processing
//! cost, forwards commands to backend rings it owns, consumes the
//! backend CQEs, and writes guest CQEs itself. The two concrete
//! mediators differ only in cost model, so everything ring-shaped
//! lives here once.

use super::{BuildCtx, Effect, PipelineStage, Scheme, SchemeCtx, Stage, BUS_HOP};
use crate::types::DeviceId;
use crate::world::{Device, VmState};
use bm_baselines::vfio::VfioCosts;
use bm_host::kernel::KernelProfile;
use bm_nvme::command::{IoOpcode, Sqe};
use bm_nvme::queue::{CompletionQueue, SubmissionQueue};
use bm_nvme::types::{Lba, QueueId};
use bm_nvme::Cqe;
use bm_sim::resource::FifoServer;
use bm_sim::{SimDuration, SimTime};
use bm_ssd::Ssd;
use std::collections::BTreeMap;

/// Virtio kick cost on the guest (ioeventfd exit).
const VIRTIO_KICK: SimDuration = SimDuration::from_nanos(600);

/// The cost model of a software data path polling guest rings.
pub(crate) trait Mediator {
    /// Scheme name for diagnostics.
    fn scheme_name(&self) -> &'static str;
    /// A command was kicked at `now`; returns when the mediator has
    /// processed it and is ready to forward it to the backend.
    fn process_submission(&mut self, now: SimTime, bytes: u64, is_write: bool) -> SimTime;
    /// Delay from the backend CQE to the guest CQE + interrupt.
    fn completion_delay(&self) -> SimDuration;
    /// Host CPU seconds burnt polling so far.
    fn cpu_busy(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Per-device ring plumbing of a mediated device.
struct MediatedAttach {
    ssd: usize,
    qid: QueueId,
    lba_offset: u64,
    /// Mediator's consumer view of the guest SQ.
    fetch_sq: SubmissionQueue,
    /// Mediator's producer view of the SSD SQ.
    ssd_sq: SubmissionQueue,
    /// Mediator's producer view of the guest CQ.
    guest_cq: CompletionQueue,
    /// Consumer position on the SSD CQ (for its head doorbell).
    backend_cq_head: u16,
    backend_cq_entries: u16,
}

/// Guest rings polled by `M`, commands forwarded to backend rings the
/// mediator owns.
pub(crate) struct MediatedScheme<M: Mediator> {
    mediator: M,
    attach: Vec<MediatedAttach>,
    /// Maps (ssd index, backend qid) → device for completions.
    direct_map: BTreeMap<(usize, u16), DeviceId>,
}

/// Builds a mediated scheme around `mediator`. Devices carve slices of
/// the backend SSDs round-robin; `in_vm` adds guest interrupt state
/// (SPDK serves VMs, the ARM offload card serves the bare-metal host).
pub(crate) fn build<M: Mediator + 'static>(
    ctx: &mut BuildCtx,
    mediator: M,
    in_vm: bool,
) -> Box<dyn Scheme> {
    let entries = ctx.cfg.queue_entries;
    let specs = ctx.cfg.devices.clone();
    let mut attach = Vec::new();
    let mut direct_map = BTreeMap::new();
    for (i, spec) in specs.iter().enumerate() {
        let ssd = i % ctx.ssds.len();
        let size_blocks = spec.size_bytes / 4096;
        let lba_offset = (i / ctx.ssds.len()) as u64 * size_blocks;
        let (sq, cq) = ctx.alloc_rings(QueueId(1), entries);
        let fetch_sq = SubmissionQueue::new(QueueId(1), sq.base(), entries);
        let guest_cq = CompletionQueue::new(QueueId(1), cq.base(), entries);
        let (bsq, bcq) = ctx.alloc_rings(QueueId(1), entries);
        let ssd_view_sq = SubmissionQueue::new(QueueId(1), bsq.base(), entries);
        let ssd_view_cq = CompletionQueue::new(QueueId(1), bcq.base(), entries);
        let qid = ctx.ssds[ssd].attach_io_queues(ssd_view_sq, ssd_view_cq);
        direct_map.insert((ssd, qid.0), DeviceId(i));
        attach.push(MediatedAttach {
            ssd,
            qid,
            lba_offset,
            fetch_sq,
            ssd_sq: bsq,
            guest_cq,
            backend_cq_head: 0,
            backend_cq_entries: entries,
        });
        let vm = in_vm.then(|| VmState {
            irq_cpu: FifoServer::new(),
            costs: VfioCosts {
                interrupt_delivery: SimDuration::from_us(4),
                ..VfioCosts::paper_default()
            },
        });
        ctx.devices.push(Device::new(sq, cq, vm, size_blocks));
    }
    Box::new(MediatedScheme {
        mediator,
        attach,
        direct_map,
    })
}

impl<M: Mediator> Scheme for MediatedScheme<M> {
    fn name(&self) -> &'static str {
        self.mediator.scheme_name()
    }

    fn translate(&self, dev: DeviceId, lba: Lba) -> Lba {
        Lba(lba.raw() + self.attach[dev.0].lba_offset)
    }

    fn submit(
        &mut self,
        now: SimTime,
        dev: DeviceId,
        sqe: &Sqe,
        kernel: &KernelProfile,
    ) -> Vec<Effect> {
        vec![Effect::ScheduleAt {
            at: now + kernel.submit_cost + VIRTIO_KICK,
            stage: Stage::Doorbell { dev, cid: sqe.cid },
        }]
    }

    fn on_doorbell(
        &mut self,
        now: SimTime,
        dev: DeviceId,
        tail: u32,
        ctx: &mut SchemeCtx,
    ) -> Vec<Effect> {
        // The poller notices the kick and fetches everything new.
        let att = &mut self.attach[dev.0];
        let _ = att.fetch_sq.doorbell_tail(tail);
        let mut sqes = Vec::new();
        while let Ok(Some(sqe)) = att.fetch_sq.fetch(ctx.host_mem) {
            sqes.push(sqe);
        }
        sqes.into_iter()
            .map(|sqe| {
                let bytes = sqe.transfer_len(4096);
                let is_write = sqe.io_opcode() == Some(IoOpcode::Write);
                let ready = self.mediator.process_submission(now, bytes, is_write);
                Effect::ScheduleAt {
                    at: ready,
                    stage: Stage::Forward { dev, sqe },
                }
            })
            .collect()
    }

    fn on_stage(&mut self, now: SimTime, stage: Stage, ctx: &mut SchemeCtx) -> Vec<Effect> {
        match stage {
            // Mediator data path: push the SQE into the SSD's ring and
            // ring its doorbell.
            Stage::Forward { dev, sqe } => {
                let att = &mut self.attach[dev.0];
                att.ssd_sq
                    .push(ctx.host_mem, &sqe)
                    .expect("backend ring sized above queue depth");
                vec![Effect::ForwardToSsd {
                    at: now + BUS_HOP,
                    ssd: att.ssd,
                    qid: att.qid,
                    tail: att.ssd_sq.tail() as u32,
                }]
            }
            Stage::BackendComplete { ssd, io } => {
                Ssd::deliver_read_payload(&io, ctx.host_mem);
                let cqe = match ctx.ssds[ssd].post_completion(&io, ctx.host_mem) {
                    Ok(cqe) => cqe,
                    Err(_) => {
                        return vec![Effect::ScheduleAt {
                            at: now + SimDuration::from_us(1),
                            stage: Stage::BackendComplete { ssd, io },
                        }];
                    }
                };
                let dev = *self
                    .direct_map
                    .get(&(ssd, io.qid.0))
                    .expect("completion for mapped queue");
                // The mediator consumes the backend CQE (polling) and
                // acks the SSD CQ immediately.
                let att = &mut self.attach[dev.0];
                att.backend_cq_head = (att.backend_cq_head + 1) % att.backend_cq_entries;
                // The mediator's producer view of the SSD SQ learns the
                // consumption from the CQE.
                att.ssd_sq.sync_head(cqe.sq_head);
                ctx.ssds[ssd].ring_cq_doorbell(io.qid, att.backend_cq_head as u32);
                vec![
                    Effect::Trace {
                        stage: PipelineStage::Backend,
                        dev,
                        cid: cqe.cid,
                    },
                    Effect::ScheduleAt {
                        at: now + self.mediator.completion_delay(),
                        stage: Stage::GuestComplete {
                            dev,
                            cid: cqe.cid,
                            status: cqe.status,
                        },
                    },
                ]
            }
            // The mediator writes the guest CQE and injects the
            // interrupt in the same instant (`at == now` makes the
            // interpreter take it inline).
            Stage::GuestComplete { dev, cid, status } => {
                let cqe = Cqe {
                    result: 0,
                    sq_head: 0,
                    sq_id: QueueId(1),
                    cid,
                    phase: false,
                    status,
                };
                self.attach[dev.0]
                    .guest_cq
                    .post(ctx.host_mem, cqe)
                    .expect("guest CQ sized above queue depth");
                vec![Effect::RaiseInterrupt {
                    at: now,
                    dev,
                    cid,
                    status,
                }]
            }
            // bm-lint: allow(wildcard-arm): a scheme only receives stages it scheduled itself; a misrouted variant fails loudly here in every build
            other => unreachable!("mediated scheme never schedules {other:?}"),
        }
    }

    fn ack_host_cq(&mut self, _now: SimTime, dev: DeviceId, head: u32, _ctx: &mut SchemeCtx) {
        let _ = self.attach[dev.0].guest_cq.doorbell_head(head);
    }

    fn polling_cpu_busy(&self) -> SimDuration {
        self.mediator.cpu_busy()
    }
}
