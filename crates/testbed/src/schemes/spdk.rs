//! SPDK vhost-user-blk target: dedicated host polling cores mediate
//! between guest virtio rings and the backend SSDs. Ring plumbing is
//! the shared [`mediated`](super::mediated) core; this module supplies
//! the [`SpdkVhost`] cost model and reserves the polling cores.

use super::mediated::{self, Mediator};
use super::{BuildCtx, Scheme};
use bm_baselines::spdk::{SpdkVhost, SpdkVhostConfig};
use bm_sim::{SimDuration, SimTime};

impl Mediator for SpdkVhost {
    fn scheme_name(&self) -> &'static str {
        "spdk-vhost"
    }

    fn process_submission(&mut self, now: SimTime, bytes: u64, is_write: bool) -> SimTime {
        SpdkVhost::process_submission(self, now, bytes, is_write)
    }

    fn completion_delay(&self) -> SimDuration {
        SpdkVhost::completion_delay(self)
    }

    fn cpu_busy(&self) -> SimDuration {
        SpdkVhost::cpu_busy(self)
    }
}

/// Builds the SPDK vhost scheme with `cores` reserved polling cores.
pub(crate) fn build(ctx: &mut BuildCtx, cores: usize) -> Box<dyn Scheme> {
    let reserved = ctx
        .cpu
        .reserve(cores)
        .expect("enough cores for vhost polling");
    let vhost_cfg = ctx.cfg.spdk_config.clone().unwrap_or_else(|| {
        if ctx.cfg.kernel.name.contains("3.10") {
            SpdkVhostConfig::centos310()
        } else {
            SpdkVhostConfig::modern_kernel()
        }
    });
    let vhost = SpdkVhost::new(vhost_cfg, reserved);
    mediated::build(ctx, vhost, true)
}
