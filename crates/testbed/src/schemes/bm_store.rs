//! BM-Store: the hardware BMS-Engine fronts virtual NVMe functions,
//! translates and forwards to the backend SSD pool through its DMA
//! router, and posts host CQEs itself. The BMS-Controller rides along
//! for the management plane (exposed via [`Scheme::bm_parts`]).

use super::{BuildCtx, Effect, FaultTraceEvent, PipelineStage, Scheme, SchemeCtx, Stage, BUS_HOP};
use crate::types::DeviceId;
use crate::world::{Device, VmState};
use bm_baselines::vfio::VfioCosts;
use bm_nvme::queue::DoorbellLayout;
use bm_nvme::types::QueueId;
use bm_pcie::FunctionId;
use bm_sim::resource::FifoServer;
use bm_sim::{SimDuration, SimTime};
use bm_ssd::{Ssd, SsdId};
use bmstore_core::controller::BmsController;
use bmstore_core::engine::{BmsEngine, EngineAction, EngineConfig};

/// Virtual NVMe functions exported by the BMS-Engine.
pub(crate) struct BmStoreScheme {
    engine: Box<BmsEngine>,
    controller: Box<BmsController>,
    /// Per-device front-end identity: (function, queue).
    funcs: Vec<(FunctionId, QueueId)>,
}

/// Builds the BM-Store scheme: engine + controller, backend rings
/// attached to every SSD, one front-end function per device spec.
pub(crate) fn build(ctx: &mut BuildCtx, in_vm: bool) -> Box<dyn Scheme> {
    let entries = ctx.cfg.queue_entries;
    let specs = ctx.cfg.devices.clone();
    let mut engine_cfg = EngineConfig::paper_default(ctx.ssds.len());
    engine_cfg.store_and_forward_bw = ctx.cfg.store_and_forward_bw;
    if let Some(timeout) = ctx.cfg.command_timeout {
        engine_cfg = engine_cfg.with_command_timeout(timeout, ctx.cfg.engine_fail_policy);
    }
    engine_cfg.fail_policy = ctx.cfg.engine_fail_policy;
    engine_cfg.debug_drop_journal_tail = ctx.cfg.engine_drop_journal_tail;
    let mut engine = Box::new(BmsEngine::new(engine_cfg));
    engine.set_telemetry(ctx.telemetry.clone());
    engine.set_metrics(ctx.metrics.clone());
    let controller = Box::new(BmsController::new(bm_pcie::mctp::Eid(8)));
    for (i, ssd) in ctx.ssds.iter_mut().enumerate() {
        let (sq, cq) = engine.ssd_rings(SsdId(i as u8));
        ssd.attach_io_queues(sq, cq);
    }
    let mut funcs = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let func = FunctionId::new(i as u8).expect("≤128 devices");
        engine
            .bind_namespace(func, spec.size_bytes, spec.placement)
            .expect("binding fits the back-end");
        engine.set_qos_limit(func, spec.qos);
        engine.set_function_enabled(func, true);
        let (sq, cq) = ctx.alloc_rings(QueueId(1), entries);
        engine
            .function_mut(func)
            .create_io_cq(QueueId(1), cq.base(), entries);
        engine
            .function_mut(func)
            .create_io_sq(QueueId(1), sq.base(), entries);
        funcs.push((func, QueueId(1)));
        let vm = in_vm.then(|| VmState {
            irq_cpu: FifoServer::new(),
            costs: VfioCosts::paper_default(),
        });
        ctx.devices
            .push(Device::new(sq, cq, vm, spec.size_bytes / 4096));
    }
    Box::new(BmStoreScheme {
        engine,
        controller,
        funcs,
    })
}

impl BmStoreScheme {
    /// Maps front-end identity back to the device.
    fn device_for(&self, func: FunctionId, qid: QueueId) -> DeviceId {
        self.funcs
            .iter()
            .position(|&(f, q)| f == func && q == qid)
            .map(DeviceId)
            .expect("device for function")
    }

    /// Engine actions become scheduled pipeline stages, in order.
    /// Recovery events the engine logged while producing them are
    /// drained first, so observers see the recovery before its
    /// consequences.
    fn actions_to_effects(&mut self, actions: Vec<EngineAction>) -> Vec<Effect> {
        let mut effects: Vec<Effect> = self
            .engine
            .take_recovery_events()
            .into_iter()
            .map(|event| Effect::FaultTrace {
                event: FaultTraceEvent::EngineRecovery(event),
            })
            .collect();
        let engine = &self.engine;
        effects.extend(actions.into_iter().map(|action| match action {
            EngineAction::BackendDoorbell { ssd, tail, at } => Effect::ScheduleAt {
                at,
                stage: Stage::EngineBackendDoorbell {
                    ssd,
                    tail,
                    epoch: engine.ring_epoch(ssd),
                },
            },
            EngineAction::HostCompletion {
                func,
                qid,
                cid,
                status,
                at,
            } => Effect::ScheduleAt {
                at,
                stage: Stage::EngineHostCompletion {
                    func,
                    qid,
                    cid,
                    status,
                },
            },
            EngineAction::QosWakeup { at } => Effect::ScheduleAt {
                at,
                stage: Stage::EngineQosWakeup,
            },
            EngineAction::CommandDeadline { ssd, seq, at } => Effect::ScheduleAt {
                at,
                stage: Stage::EngineDeadline { ssd, seq },
            },
        }));
        effects
    }
}

impl Scheme for BmStoreScheme {
    fn name(&self) -> &'static str {
        "bm-store"
    }

    fn on_doorbell(
        &mut self,
        now: SimTime,
        dev: DeviceId,
        tail: u32,
        _ctx: &mut SchemeCtx,
    ) -> Vec<Effect> {
        let (func, qid) = self.funcs[dev.0];
        vec![Effect::ScheduleAt {
            at: now + BUS_HOP,
            stage: Stage::EngineDoorbell { func, qid, tail },
        }]
    }

    fn on_stage(&mut self, now: SimTime, stage: Stage, ctx: &mut SchemeCtx) -> Vec<Effect> {
        match stage {
            Stage::EngineDoorbell { func, qid, tail } => {
                if self.engine.is_crashed() {
                    // The doorbell write sits in the fabric until the
                    // card reboots; the recovery action is scheduled at
                    // the same instant but was inserted first, so the
                    // engine is back up when this lands again.
                    return vec![Effect::ScheduleAt {
                        at: self.engine.restart_at().max(now),
                        stage: Stage::EngineDoorbell { func, qid, tail },
                    }];
                }
                let actions = self.engine.host_doorbell_write(
                    now,
                    func,
                    DoorbellLayout::sq_tail_offset(qid),
                    tail,
                    ctx.host_mem,
                );
                self.actions_to_effects(actions)
            }
            Stage::EngineBackendDoorbell { ssd, tail, epoch } => {
                if epoch != self.engine.ring_epoch(ssd) {
                    // Minted before this SSD's rings were reset (engine
                    // crash, hot-plug swap, or surprise re-insert).
                    return Vec::new();
                }
                let mut router = self.engine.dma_router(ctx.host_mem);
                let completions =
                    ctx.ssds[ssd.0 as usize].ring_sq_doorbell(now, QueueId(1), tail, &mut router);
                // Consecutive completions sharing an instant become one
                // scheduled event; they held consecutive sequence
                // numbers before, so batching cannot reorder anything.
                let mut effects = Vec::new();
                let mut iter = completions.into_iter().peekable();
                while let Some(io) = iter.next() {
                    let at = io.at;
                    let mut ios = vec![io];
                    while let Some(next) = iter.next_if(|n| n.at == at) {
                        ios.push(next);
                    }
                    effects.push(Effect::ScheduleAt {
                        at,
                        stage: Stage::EngineBackendComplete { ssd, ios, epoch },
                    });
                }
                effects
            }
            Stage::EngineBackendComplete { ssd, ios, epoch } => {
                if epoch != self.engine.ring_epoch(ssd) {
                    return Vec::new();
                }
                let mut effects = Vec::new();
                for io in ios {
                    // Device-service span, recorded while the back-end CID
                    // still resolves to its origin (the drain below frees it).
                    self.engine.record_backend_span(
                        ssd,
                        io.cid,
                        io.submitted_at,
                        now,
                        io.status.is_success(),
                    );
                    {
                        let mut router = self.engine.dma_router(ctx.host_mem);
                        Ssd::deliver_read_payload(&io, &mut router);
                        let _ = ctx.ssds[ssd.0 as usize].post_completion(&io, &mut router);
                    }
                    let (actions, cq_head) =
                        self.engine.on_backend_completion(now, ssd, ctx.host_mem);
                    ctx.ssds[ssd.0 as usize].ring_cq_doorbell(QueueId(1), cq_head);
                    effects.extend(self.actions_to_effects(actions));
                }
                effects
            }
            Stage::EngineHostCompletion {
                func,
                qid,
                cid,
                status,
            } => {
                if !self
                    .engine
                    .deliver_host_completion(func, qid, cid, status, ctx.host_mem)
                {
                    // Host CQ full: retry after the host consumes.
                    return vec![Effect::ScheduleAt {
                        at: now + SimDuration::from_us(2),
                        stage: Stage::EngineHostCompletion {
                            func,
                            qid,
                            cid,
                            status,
                        },
                    }];
                }
                let dev = self.device_for(func, qid);
                vec![
                    Effect::Trace {
                        stage: PipelineStage::Backend,
                        dev,
                        cid,
                    },
                    Effect::RaiseInterrupt {
                        at: now + self.engine.timing().interrupt,
                        dev,
                        cid,
                        status,
                    },
                ]
            }
            Stage::EngineQosWakeup => {
                let actions = self.engine.qos_wakeup(now, ctx.host_mem);
                self.actions_to_effects(actions)
            }
            Stage::EngineDeadline { ssd, seq } => {
                let actions = self.engine.check_deadline(now, ssd, seq, ctx.host_mem);
                self.actions_to_effects(actions)
            }
            // bm-lint: allow(wildcard-arm): a scheme only receives stages it scheduled itself; a misrouted variant fails loudly here in every build
            other => unreachable!("bm-store scheme never schedules {other:?}"),
        }
    }

    fn ack_host_cq(&mut self, now: SimTime, dev: DeviceId, head: u32, ctx: &mut SchemeCtx) {
        let (func, qid) = self.funcs[dev.0];
        let _ = self.engine.host_doorbell_write(
            now,
            func,
            DoorbellLayout::cq_head_offset(qid),
            head,
            ctx.host_mem,
        );
    }

    fn bm_parts(&mut self) -> Option<(&mut BmsEngine, &mut BmsController)> {
        Some((&mut self.engine, &mut self.controller))
    }

    fn engine(&self) -> Option<&BmsEngine> {
        Some(&self.engine)
    }

    fn controller(&self) -> Option<&BmsController> {
        Some(&self.controller)
    }

    fn on_engine_actions(&mut self, actions: Vec<EngineAction>) -> Vec<Effect> {
        self.actions_to_effects(actions)
    }
}
