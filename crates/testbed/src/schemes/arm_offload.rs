//! ARM-SoC offload card (LeapIO-like): the card's cores mediate
//! between host rings and the backend SSDs, so the host pays no
//! polling CPU but each I/O crosses the slower SoC. Ring plumbing is
//! the shared [`mediated`](super::mediated) core; this module supplies
//! the [`ArmOffload`] cost model.

use super::mediated::{self, Mediator};
use super::{BuildCtx, Scheme};
use bm_baselines::arm_offload::{ArmOffload, ArmOffloadConfig};
use bm_sim::{SimDuration, SimTime};

impl Mediator for ArmOffload {
    fn scheme_name(&self) -> &'static str {
        "arm-offload"
    }

    fn process_submission(&mut self, now: SimTime, bytes: u64, _is_write: bool) -> SimTime {
        self.process(now, bytes)
    }

    fn completion_delay(&self) -> SimDuration {
        SimDuration::from_us(2)
    }
}

/// Builds the ARM offload scheme (bare-metal host, no VM state).
pub(crate) fn build(ctx: &mut BuildCtx) -> Box<dyn Scheme> {
    mediated::build(ctx, ArmOffload::new(ArmOffloadConfig::leapio_like()), false)
}
