//! The scheme effects pipeline.
//!
//! Every I/O scheme the testbed can run (native rings, VFIO
//! passthrough, the BM-Store engine, SPDK vhost, ARM offload)
//! implements one trait, [`Scheme`]. A scheme never touches the
//! scheduler: each hook returns a list of [`Effect`]s, and the generic
//! event loop in [`crate::world::World`] interprets them — scheduling
//! pipeline continuations ([`Stage`]), ringing backend doorbells,
//! raising interrupts, charging the host completion stack, delivering
//! to clients, and notifying the [`PipelineObserver`].
//!
//! ```text
//! submit ─▶ Stage::Doorbell ─▶ scheme hooks ─▶ Effect::ForwardToSsd
//!    ▲                                               │
//!    └── CompleteToClient ◀─ ChargeCpu ◀─ RaiseInterrupt ◀─ Stage::BackendComplete
//! ```
//!
//! Determinism: effects are applied strictly in the order a hook
//! returns them, and the scheduler breaks timestamp ties by insertion
//! order, so a scheme's event interleaving is a pure function of its
//! hook outputs.

pub mod arm_offload;
pub mod bm_store;
pub mod mediated;
pub mod native;
pub mod spdk;
pub mod vfio;

use crate::config::TestbedConfig;
use crate::types::DeviceId;
use crate::world::Device;
use bm_host::cpu::CpuPool;
use bm_host::kernel::KernelProfile;
use bm_nvme::command::{Sqe, CQE_SIZE, SQE_SIZE};
use bm_nvme::queue::{CompletionQueue, SubmissionQueue};
use bm_nvme::types::{Cid, Lba, QueueId};
use bm_nvme::Status;
use bm_pcie::{FunctionId, HostMemory};
use bm_sim::metrics::MetricsHandle;
use bm_sim::telemetry::TelemetryHandle;
use bm_sim::{SimDuration, SimTime};
use bm_ssd::{CompletedIo, Ssd, SsdId};
use bmstore_core::controller::BmsController;
use bmstore_core::engine::{BmsEngine, EngineAction};

/// Latency of a doorbell/MSI hop across the PCIe fabric.
pub(crate) const BUS_HOP: SimDuration = SimDuration::from_nanos(300);

/// Construction-time view of the testbed handed to the scheme
/// builders: they allocate rings, attach SSD queue views, and push the
/// tenant [`Device`]s they serve.
pub(crate) struct BuildCtx<'a> {
    pub(crate) cfg: &'a TestbedConfig,
    pub(crate) host_mem: &'a mut HostMemory,
    pub(crate) cpu: &'a mut CpuPool,
    pub(crate) ssds: &'a mut Vec<Ssd>,
    pub(crate) devices: &'a mut Vec<Device>,
    /// The world's telemetry recorder handle (disabled unless
    /// [`TestbedConfig::telemetry`] is set); schemes that record
    /// per-stage spans clone it into their engine.
    pub(crate) telemetry: &'a TelemetryHandle,
    /// The world's metrics registry handle (disabled unless
    /// [`TestbedConfig::metrics`] is set); schemes that account stage
    /// busy time clone it into their engine.
    pub(crate) metrics: &'a MetricsHandle,
}

impl BuildCtx<'_> {
    /// Allocates an SQ/CQ pair of `entries` slots in host memory.
    pub(crate) fn alloc_rings(
        &mut self,
        qid: QueueId,
        entries: u16,
    ) -> (SubmissionQueue, CompletionQueue) {
        let sq_base = self
            .host_mem
            .alloc(entries as u64 * SQE_SIZE)
            .expect("ring memory");
        let cq_base = self
            .host_mem
            .alloc(entries as u64 * CQE_SIZE)
            .expect("ring memory");
        (
            SubmissionQueue::new(qid, sq_base, entries),
            CompletionQueue::new(qid, cq_base, entries),
        )
    }
}

/// Mutable testbed resources a scheme hook may touch: host physical
/// memory (rings, payloads) and the backend SSD models. Everything
/// else (devices, clients, the scheduler) is owned by the interpreter.
pub struct SchemeCtx<'a> {
    /// Host physical memory.
    pub host_mem: &'a mut HostMemory,
    /// Backend SSD models, indexed as configured.
    pub ssds: &'a mut Vec<Ssd>,
    /// The host kernel cost profile.
    pub kernel: &'a KernelProfile,
}

/// A deferred pipeline continuation. Stages carry their own data
/// (fetched SQEs, backend completions), so re-entering the scheme
/// needs no lookup of transient state.
#[derive(Debug)]
pub enum Stage {
    /// `dev`'s SQ tail doorbell rings after the submit-side latency.
    /// Dispatched to [`Scheme::on_doorbell`] with the tail read at
    /// dispatch time; `cid` is the command that triggered it (carried
    /// for observation only).
    Doorbell {
        /// Device whose doorbell rings.
        dev: DeviceId,
        /// Command that triggered the ring.
        cid: Cid,
    },
    /// Mediated: one guest SQE leaves the mediator for the backend
    /// ring.
    Forward {
        /// Mediated device the SQE came from.
        dev: DeviceId,
        /// The command, as fetched from the guest SQ.
        sqe: Sqe,
    },
    /// A backend SSD on a plain-DMA ring finished `io` (scheduled by
    /// [`Effect::ForwardToSsd`]).
    BackendComplete {
        /// Backend SSD index.
        ssd: usize,
        /// The finished command.
        io: CompletedIo,
    },
    /// Mediated: the mediator writes the guest CQE and injects the
    /// interrupt.
    GuestComplete {
        /// Mediated device to complete on.
        dev: DeviceId,
        /// Completed command id.
        cid: Cid,
        /// Completion status.
        status: Status,
    },
    /// BM-Store: the host SQ-tail doorbell write reaches the engine.
    EngineDoorbell {
        /// Front-end function.
        func: FunctionId,
        /// Queue within the function.
        qid: QueueId,
        /// Tail value written.
        tail: u32,
    },
    /// BM-Store: the engine rings a backend SSD's SQ doorbell.
    EngineBackendDoorbell {
        /// Backend SSD behind the engine.
        ssd: SsdId,
        /// Tail value the engine wrote.
        tail: u32,
        /// Engine incarnation that minted the write. A crash bumps the
        /// engine's epoch, so in-flight doorbells from the dead
        /// instance are dropped when they land (the rings they
        /// targeted were reset).
        epoch: u64,
    },
    /// BM-Store: a backend SSD behind the engine's DMA router finished
    /// a batch of commands sharing one completion instant. Consecutive
    /// equal-time completions from one doorbell sweep ride a single
    /// scheduled event; the handler services each command in order, so
    /// the observable effect stream is identical to one event per
    /// command (the batch members held consecutive sequence numbers
    /// anyway).
    EngineBackendComplete {
        /// Backend SSD behind the engine.
        ssd: SsdId,
        /// The finished commands, in completion order.
        ios: Vec<CompletedIo>,
        /// Engine incarnation whose doorbell produced these
        /// completions; stale-epoch batches are dropped (the dead
        /// instance's command table no longer exists).
        epoch: u64,
    },
    /// BM-Store: the engine posts a host CQE (retried while the host
    /// CQ is full).
    EngineHostCompletion {
        /// Front-end function.
        func: FunctionId,
        /// Queue within the function.
        qid: QueueId,
        /// Completed command id.
        cid: Cid,
        /// Completion status.
        status: Status,
    },
    /// BM-Store: QoS pacing wakeup.
    EngineQosWakeup,
    /// BM-Store: a forwarded command's timeout deadline expires
    /// (dispatched to the engine's `check_deadline`; a no-op when the
    /// attempt completed in time). Only scheduled when the engine's
    /// command timeout is armed.
    EngineDeadline {
        /// Backend SSD the attempt targeted.
        ssd: SsdId,
        /// The forwarding attempt's sequence number.
        seq: u64,
    },
}

/// One typed output of a scheme hook, interpreted by the world's
/// generic event loop.
#[derive(Debug)]
pub enum Effect {
    /// Run `stage` at `at`. Ties on `at` preserve emission order.
    ScheduleAt {
        /// When the stage runs.
        at: SimTime,
        /// The continuation.
        stage: Stage,
    },
    /// Ring backend SSD `ssd`'s SQ doorbell at `at` over plain host
    /// DMA. Every resulting completion re-enters the pipeline as a
    /// [`Stage::BackendComplete`] at its completion time.
    ForwardToSsd {
        /// When the doorbell write lands.
        at: SimTime,
        /// Backend SSD index.
        ssd: usize,
        /// The SSD-side queue.
        qid: QueueId,
        /// Tail value to write.
        tail: u32,
    },
    /// Interrupt (MSI or mediator injection) at the host/guest owning
    /// `dev`: consume the CQE, acknowledge it through
    /// [`Scheme::ack_host_cq`], then charge the completion stack.
    /// Applied inline when `at` is not in the future (a mediator
    /// completing synchronously); scheduled otherwise.
    RaiseInterrupt {
        /// When the interrupt fires.
        at: SimTime,
        /// Interrupted device.
        dev: DeviceId,
        /// Fallback command id if the CQ poll comes up empty.
        cid: Cid,
        /// Fallback status if the CQ poll comes up empty.
        status: Status,
    },
    /// Charge the host completion stack for `dev` now — the guest IRQ
    /// vCPU (VM devices) or the per-queue softirq context — and emit a
    /// [`Effect::CompleteToClient`] at the resulting time.
    ChargeCpu {
        /// Device whose completion stack is charged.
        dev: DeviceId,
        /// Completed command id.
        cid: Cid,
        /// Completion status.
        status: Status,
    },
    /// Deliver the completion to the owning client at `at`.
    CompleteToClient {
        /// Delivery time.
        at: SimTime,
        /// Completed device.
        dev: DeviceId,
        /// Completed command id.
        cid: Cid,
        /// Completion status.
        status: Status,
    },
    /// Notify the [`PipelineObserver`] that `cid` passed `stage`.
    Trace {
        /// Pipeline point passed.
        stage: PipelineStage,
        /// Device the command belongs to.
        dev: DeviceId,
        /// The command.
        cid: Cid,
    },
    /// Notify the [`PipelineObserver`] that a fault was injected or a
    /// recovery action was taken (never silent, per the fault model).
    FaultTrace {
        /// What happened.
        event: FaultTraceEvent,
    },
}

/// A fault or recovery action made observable through the pipeline
/// observer. Injections come from the testbed's `FaultPlan`
/// interpreter; recoveries come from the engine's timeout machinery
/// and the management-link retransmit logic.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTraceEvent {
    /// A `FaultPlan` event was injected into its target layer.
    Injected(bm_sim::faults::FaultKind),
    /// The management link dropped an MCTP packet.
    MctpPacketDropped,
    /// The management console retransmitted a request after a drop.
    MctpRetransmit {
        /// Retransmission attempt number (1 = first resend).
        attempt: u32,
    },
    /// A bus crossing was deferred to the end of a PCIe link-retrain
    /// window.
    LinkDeferred {
        /// When the deferred crossing actually happens.
        until: SimTime,
    },
    /// The engine's timeout machinery acted (retry, abort, quiesce, or
    /// slot reclamation).
    EngineRecovery(bmstore_core::engine::RecoveryEvent),
}

/// The points of the I/O pipeline an observer can watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// SQE built and pushed into the host SQ.
    Submit,
    /// Host LBA translated to the backend LBA.
    Translate,
    /// SQ tail doorbell rang at the scheme.
    Doorbell,
    /// Backend completion reached the host boundary.
    Backend,
    /// Completion delivered to the owning client.
    Complete,
}

impl PipelineStage {
    /// All stages, in pipeline order.
    pub const ALL: [PipelineStage; 5] = [
        PipelineStage::Submit,
        PipelineStage::Translate,
        PipelineStage::Doorbell,
        PipelineStage::Backend,
        PipelineStage::Complete,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            PipelineStage::Submit => 0,
            PipelineStage::Translate => 1,
            PipelineStage::Doorbell => 2,
            PipelineStage::Backend => 3,
            PipelineStage::Complete => 4,
        }
    }
}

/// Per-stage instrumentation hook, called by the event loop as each
/// command traverses the pipeline. Implementations must not assume a
/// particular scheme: stages arrive in pipeline order per command, but
/// commands interleave freely.
pub trait PipelineObserver {
    /// `cid` on `dev` passed `stage` at `now`.
    fn on_stage(&mut self, now: SimTime, stage: PipelineStage, dev: DeviceId, cid: Cid);

    /// A fault was injected or a recovery action taken at `now`. The
    /// default ignores it, so stage-only observers need no change.
    fn on_fault(&mut self, now: SimTime, event: &FaultTraceEvent) {
        let _ = (now, event);
    }
}

/// A [`PipelineObserver`] that counts traversals per stage.
///
/// # Examples
///
/// ```
/// use bm_testbed::schemes::{CountingObserver, PipelineStage};
/// let obs = CountingObserver::default();
/// assert_eq!(obs.count(PipelineStage::Submit), 0);
/// ```
#[derive(Debug, Default)]
pub struct CountingObserver {
    counts: [u64; 5],
    faults: u64,
}

impl CountingObserver {
    /// Number of commands that passed `stage`.
    pub fn count(&self, stage: PipelineStage) -> u64 {
        self.counts[stage.index()]
    }

    /// Number of fault/recovery events observed.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }
}

impl PipelineObserver for CountingObserver {
    fn on_stage(&mut self, _now: SimTime, stage: PipelineStage, _dev: DeviceId, _cid: Cid) {
        self.counts[stage.index()] += 1;
    }

    fn on_fault(&mut self, _now: SimTime, _event: &FaultTraceEvent) {
        self.faults += 1;
    }
}

/// A [`PipelineObserver`] that records every fault/recovery event with
/// its timestamp — the assertion surface for fault-scenario tests.
#[derive(Debug, Default)]
pub struct FaultLog {
    events: Vec<(SimTime, FaultTraceEvent)>,
}

impl FaultLog {
    /// All recorded events, in observation order.
    pub fn events(&self) -> &[(SimTime, FaultTraceEvent)] {
        &self.events
    }
}

impl PipelineObserver for FaultLog {
    fn on_stage(&mut self, _now: SimTime, _stage: PipelineStage, _dev: DeviceId, _cid: Cid) {}

    fn on_fault(&mut self, now: SimTime, event: &FaultTraceEvent) {
        self.events.push((now, event.clone()));
    }
}

/// One I/O scheme: how submissions reach a backend and how
/// completions come home. Implementations live in the sibling modules
/// ([`native`], [`bm_store`], [`spdk`], [`arm_offload`], with
/// [`mediated`] providing the shared software-mediation core); the
/// world selects one at construction time and never branches on the
/// scheme kind again.
pub trait Scheme {
    /// Short scheme name for diagnostics.
    fn name(&self) -> &'static str;

    /// Translates a host-visible LBA to the backend LBA for `dev`
    /// (identity for whole-disk schemes).
    fn translate(&self, dev: DeviceId, lba: Lba) -> Lba {
        let _ = dev;
        lba
    }

    /// A request for `dev` was pushed into its SQ at `now`. Returns
    /// the effects that carry it to the scheme's doorbell; submit-side
    /// latency beyond the kernel's submit cost lives here. The default
    /// rings the doorbell after the kernel submit path.
    fn submit(
        &mut self,
        now: SimTime,
        dev: DeviceId,
        sqe: &Sqe,
        kernel: &KernelProfile,
    ) -> Vec<Effect> {
        vec![Effect::ScheduleAt {
            at: now + kernel.submit_cost,
            stage: Stage::Doorbell { dev, cid: sqe.cid },
        }]
    }

    /// `dev`'s SQ tail doorbell (value `tail`) lands at the scheme.
    fn on_doorbell(
        &mut self,
        now: SimTime,
        dev: DeviceId,
        tail: u32,
        ctx: &mut SchemeCtx,
    ) -> Vec<Effect>;

    /// A pipeline continuation scheduled by an earlier effect fires.
    /// Never called with [`Stage::Doorbell`] (that one is routed to
    /// [`Scheme::on_doorbell`] with the tail read at dispatch time).
    fn on_stage(&mut self, now: SimTime, stage: Stage, ctx: &mut SchemeCtx) -> Vec<Effect>;

    /// The host consumed `dev`'s CQ up to `head`: acknowledge it
    /// backward (SSD CQ doorbell, guest CQ head, or engine CQ-head
    /// doorbell).
    fn ack_host_cq(&mut self, now: SimTime, dev: DeviceId, head: u32, ctx: &mut SchemeCtx);

    /// Host CPU seconds burnt by polling cores (non-zero only for
    /// SPDK vhost).
    fn polling_cpu_busy(&self) -> SimDuration {
        SimDuration::ZERO
    }

    /// BM-Store management plane (engine + controller), if present.
    fn bm_parts(&mut self) -> Option<(&mut BmsEngine, &mut BmsController)> {
        None
    }

    /// The BMS-Engine, if this scheme has one.
    fn engine(&self) -> Option<&BmsEngine> {
        None
    }

    /// The BMS-Controller, if this scheme has one.
    fn controller(&self) -> Option<&BmsController> {
        None
    }

    /// Converts engine actions produced outside the I/O path (the
    /// management plane) into effects. Non-BM-Store schemes have no
    /// engine and return nothing.
    fn on_engine_actions(&mut self, actions: Vec<EngineAction>) -> Vec<Effect> {
        let _ = actions;
        Vec::new()
    }
}
