//! The composed simulation world.
//!
//! A [`World`] owns one host (memory, kernel profile, CPU pool), the
//! back-end SSDs, the scheme under test (native rings, VFIO into a VM,
//! the BMS-Engine + BMS-Controller, or an SPDK vhost target), the
//! tenant devices, and the registered workload [`Client`]s. Event flow:
//!
//! ```text
//! client ──submit──▶ host SQ ──doorbell──▶ scheme path ──▶ SSD model
//!    ▲                                                        │
//!    └──deliver──◀ host stack ◀──interrupt──◀ CQE ◀──completion┘
//! ```
//!
//! Every hop is a scheduled event at the latency the respective model
//! computes, so fio-style measurements emerge rather than being
//! asserted.

use crate::config::{SchemeKind, TestbedConfig};
use crate::types::{BufferId, Client, ClientId, Completion, DeviceId, IoOp, IoRequest};
use bm_baselines::arm_offload::{ArmOffload, ArmOffloadConfig};
use bm_baselines::spdk::{SpdkVhost, SpdkVhostConfig};
use bm_baselines::vfio::VfioCosts;
use bm_host::cpu::CpuPool;
use bm_host::kernel::KernelProfile;
use bm_nvme::command::{IoOpcode, Sqe, CQE_SIZE, SQE_SIZE};
use bm_nvme::mi::{HealthStatus, MiResponse};
use bm_nvme::prp::PrpPair;
use bm_nvme::queue::{CompletionQueue, DoorbellLayout, SubmissionQueue};
use bm_nvme::types::{Cid, Lba, Nsid, QueueId};
use bm_nvme::{Cqe, Status};
use bm_pcie::mctp::Eid;
use bm_pcie::{FunctionId, HostMemory, PciAddr};
use bm_sim::resource::FifoServer;
use bm_sim::{Scheduler, SimDuration, SimRng, SimTime, Simulation};
use bm_ssd::firmware::CommitAction;
use bm_ssd::{CompletedIo, Ssd, SsdConfig, SsdId};
use bmstore_core::controller::commands::BmsCommand;
use bmstore_core::controller::{request_packets, BackendAdmin, BmsController, ControllerAction};
use bmstore_core::engine::{BmsEngine, EngineAction, EngineConfig};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Latency of a doorbell/MSI hop across the PCIe fabric.
const BUS_HOP: SimDuration = SimDuration::from_nanos(300);
/// Virtio kick cost on the guest (ioeventfd exit).
const VIRTIO_KICK: SimDuration = SimDuration::from_nanos(600);

struct PendingHost {
    client: ClientId,
    tag: u64,
    submitted: SimTime,
    bytes: u64,
    is_write: bool,
}

struct VmState {
    irq_cpu: FifoServer,
    costs: VfioCosts,
}

enum Attachment {
    /// Rings registered directly at the SSD (native and VFIO).
    Direct { ssd: usize, qid: QueueId },
    /// A BM-Store front-end function.
    BmStoreFn { func: FunctionId, qid: QueueId },
    /// Mediated by a software data path (SPDK vhost or ARM offload):
    /// guest rings are polled, commands forwarded to SSD rings the
    /// mediator owns.
    Mediated {
        ssd: usize,
        qid: QueueId,
        lba_offset: u64,
        /// Mediator's consumer view of the guest SQ.
        fetch_sq: SubmissionQueue,
        /// Mediator's producer view of the SSD SQ.
        ssd_sq: SubmissionQueue,
        /// Mediator's producer view of the guest CQ.
        guest_cq: CompletionQueue,
        /// Consumer position on the SSD CQ (for its head doorbell).
        backend_cq_head: u16,
        backend_cq_entries: u16,
    },
}

struct Device {
    sq: SubmissionQueue,
    cq: CompletionQueue,
    attachment: Attachment,
    free_cids: Vec<u16>,
    pending: HashMap<u16, PendingHost>,
    waiting: VecDeque<(ClientId, IoRequest)>,
    vm: Option<VmState>,
    size_blocks: u64,
    /// Per-queue completion softirq context (irq affinity spreads
    /// device queues over cores, so the serialization is per device).
    softirq: FifoServer,
}

enum SchemeState {
    Native,
    BmStore {
        engine: Box<BmsEngine>,
        controller: Box<BmsController>,
    },
    Spdk {
        vhost: SpdkVhost,
    },
    Arm {
        arm: ArmOffload,
    },
}

/// The composed testbed (everything except the clients).
pub struct Testbed {
    cfg: TestbedConfig,
    /// Host physical memory (rings, PRP lists, data buffers).
    pub host_mem: HostMemory,
    /// Host CPU pool (polling reservations, utilization accounting).
    pub cpu: CpuPool,
    kernel: KernelProfile,
    ssds: Vec<Ssd>,
    scheme: SchemeState,
    devices: Vec<Device>,
    buffers: Vec<PrpPair>,
    /// Maps (ssd index, back-end qid) → device for direct completions.
    direct_map: HashMap<(usize, u16), DeviceId>,
    #[allow(dead_code)]
    rng: SimRng,
}

impl Testbed {
    /// Builds the testbed from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. more
    /// whole-disk devices than SSDs for a direct scheme).
    pub fn new(cfg: TestbedConfig) -> Self {
        let mut rng = SimRng::seed_from(cfg.seed);
        let ssds: Vec<Ssd> = (0..cfg.ssds)
            .map(|i| {
                let mut ssd_cfg = SsdConfig::p4510_2tb(SsdId(i as u8))
                    .with_profile(cfg.ssd_profile.clone())
                    .with_data_mode(cfg.data_mode);
                ssd_cfg.seed ^= cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Ssd::new(ssd_cfg)
            })
            .collect();
        let mut tb = Testbed {
            kernel: cfg.kernel.clone(),
            scheme: SchemeState::Native,
            devices: Vec::new(),
            buffers: Vec::new(),
            direct_map: HashMap::new(),
            rng: rng.fork(0xBEEF),
            host_mem: HostMemory::new(8 << 30),
            cpu: CpuPool::xeon_8163_dual(),
            ssds,
            cfg,
        };
        tb.build_scheme();
        tb
    }

    fn alloc_rings(&mut self, qid: QueueId, entries: u16) -> (SubmissionQueue, CompletionQueue) {
        let sq_base = self
            .host_mem
            .alloc(entries as u64 * SQE_SIZE)
            .expect("ring memory");
        let cq_base = self
            .host_mem
            .alloc(entries as u64 * CQE_SIZE)
            .expect("ring memory");
        (
            SubmissionQueue::new(qid, sq_base, entries),
            CompletionQueue::new(qid, cq_base, entries),
        )
    }

    fn new_device(
        sq: SubmissionQueue,
        cq: CompletionQueue,
        attachment: Attachment,
        vm: Option<VmState>,
        size_blocks: u64,
    ) -> Device {
        let entries = sq.entries();
        Device {
            sq,
            cq,
            attachment,
            free_cids: (0..entries - 1).rev().collect(),
            pending: HashMap::new(),
            waiting: VecDeque::new(),
            vm,
            size_blocks,
            softirq: FifoServer::new(),
        }
    }

    fn build_scheme(&mut self) {
        let entries = self.cfg.queue_entries;
        let scheme = self.cfg.scheme.clone();
        let specs = self.cfg.devices.clone();
        match scheme {
            SchemeKind::Native | SchemeKind::Vfio => {
                let in_vm = matches!(scheme, SchemeKind::Vfio);
                for (i, _spec) in specs.iter().enumerate() {
                    assert!(i < self.ssds.len(), "one whole SSD per direct device");
                    let (sq, cq) = self.alloc_rings(QueueId(1), entries);
                    let ssd_sq = SubmissionQueue::new(QueueId(1), sq.base(), entries);
                    let ssd_cq = CompletionQueue::new(QueueId(1), cq.base(), entries);
                    let qid = self.ssds[i].attach_io_queues(ssd_sq, ssd_cq);
                    let blocks = self.ssds[i].namespace().blocks();
                    self.direct_map.insert((i, qid.0), DeviceId(i));
                    let vm = in_vm.then(|| VmState {
                        irq_cpu: FifoServer::new(),
                        costs: VfioCosts::paper_default(),
                    });
                    self.devices.push(Self::new_device(
                        sq,
                        cq,
                        Attachment::Direct { ssd: i, qid },
                        vm,
                        blocks,
                    ));
                }
                self.scheme = SchemeState::Native;
            }
            SchemeKind::BmStore { in_vm } => {
                let mut engine_cfg = EngineConfig::paper_default(self.ssds.len());
                engine_cfg.store_and_forward_bw = self.cfg.store_and_forward_bw;
                let mut engine = Box::new(BmsEngine::new(engine_cfg));
                let controller = Box::new(BmsController::new(bm_pcie::mctp::Eid(8)));
                for (i, ssd) in self.ssds.iter_mut().enumerate() {
                    let (sq, cq) = engine.ssd_rings(SsdId(i as u8));
                    ssd.attach_io_queues(sq, cq);
                }
                for (i, spec) in specs.iter().enumerate() {
                    let func = FunctionId::new(i as u8).expect("≤128 devices");
                    engine
                        .bind_namespace(func, spec.size_bytes, spec.placement)
                        .expect("binding fits the back-end");
                    engine.set_qos_limit(func, spec.qos);
                    engine.set_function_enabled(func, true);
                    let (sq, cq) = self.alloc_rings(QueueId(1), entries);
                    engine
                        .function_mut(func)
                        .create_io_cq(QueueId(1), cq.base(), entries);
                    engine
                        .function_mut(func)
                        .create_io_sq(QueueId(1), sq.base(), entries);
                    let vm = in_vm.then(|| VmState {
                        irq_cpu: FifoServer::new(),
                        costs: VfioCosts::paper_default(),
                    });
                    self.devices.push(Self::new_device(
                        sq,
                        cq,
                        Attachment::BmStoreFn {
                            func,
                            qid: QueueId(1),
                        },
                        vm,
                        spec.size_bytes / 4096,
                    ));
                }
                self.scheme = SchemeState::BmStore { engine, controller };
            }
            SchemeKind::SpdkVhost { cores } => {
                let reserved = self
                    .cpu
                    .reserve(cores)
                    .expect("enough cores for vhost polling");
                let vhost_cfg = self.cfg.spdk_config.clone().unwrap_or_else(|| {
                    if self.cfg.kernel.name.contains("3.10") {
                        SpdkVhostConfig::centos310()
                    } else {
                        SpdkVhostConfig::modern_kernel()
                    }
                });
                let vhost = SpdkVhost::new(vhost_cfg, reserved);
                self.build_mediated_devices(&specs, entries, true);
                self.scheme = SchemeState::Spdk { vhost };
            }
            SchemeKind::ArmOffload => {
                let arm = ArmOffload::new(ArmOffloadConfig::leapio_like());
                self.build_mediated_devices(&specs, entries, false);
                self.scheme = SchemeState::Arm { arm };
            }
        }
    }

    fn build_mediated_devices(
        &mut self,
        specs: &[crate::config::DeviceSpec],
        entries: u16,
        in_vm: bool,
    ) {
        for (i, spec) in specs.iter().enumerate() {
            let ssd = i % self.ssds.len();
            let size_blocks = spec.size_bytes / 4096;
            let lba_offset = (i / self.ssds.len()) as u64 * size_blocks;
            let (sq, cq) = self.alloc_rings(QueueId(1), entries);
            let fetch_sq = SubmissionQueue::new(QueueId(1), sq.base(), entries);
            let guest_cq = CompletionQueue::new(QueueId(1), cq.base(), entries);
            let (bsq, bcq) = self.alloc_rings(QueueId(1), entries);
            let ssd_view_sq = SubmissionQueue::new(QueueId(1), bsq.base(), entries);
            let ssd_view_cq = CompletionQueue::new(QueueId(1), bcq.base(), entries);
            let qid = self.ssds[ssd].attach_io_queues(ssd_view_sq, ssd_view_cq);
            self.direct_map.insert((ssd, qid.0), DeviceId(i));
            let vm = in_vm.then(|| VmState {
                irq_cpu: FifoServer::new(),
                costs: VfioCosts {
                    interrupt_delivery: SimDuration::from_nanos(4_000),
                    ..VfioCosts::paper_default()
                },
            });
            self.devices.push(Self::new_device(
                sq,
                cq,
                Attachment::Mediated {
                    ssd,
                    qid,
                    lba_offset,
                    fetch_sq,
                    ssd_sq: bsq,
                    guest_cq,
                    backend_cq_head: 0,
                    backend_cq_entries: entries,
                },
                vm,
                size_blocks,
            ));
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TestbedConfig {
        &self.cfg
    }

    /// Number of tenant devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Size of a device in logical blocks.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is out of range.
    pub fn device_blocks(&self, dev: DeviceId) -> u64 {
        self.devices[dev.0].size_blocks
    }

    /// Registers a DMA buffer of `bytes` and prebuilds its PRPs.
    ///
    /// # Panics
    ///
    /// Panics if host memory is exhausted.
    pub fn register_buffer(&mut self, bytes: u64) -> BufferId {
        let buf = self.host_mem.alloc(bytes).expect("buffer memory");
        let prp = PrpPair::build(&mut self.host_mem, buf, bytes);
        self.buffers.push(prp);
        BufferId(self.buffers.len() - 1)
    }

    /// Buffer base address (integrity tests write patterns through it).
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not registered.
    pub fn buffer_addr(&self, buf: BufferId) -> PciAddr {
        self.buffers[buf.0].prp1
    }

    /// Access to the BMS-Engine when running the BM-Store scheme.
    pub fn engine(&self) -> Option<&BmsEngine> {
        match &self.scheme {
            SchemeState::BmStore { engine, .. } => Some(engine),
            _ => None,
        }
    }

    /// Access to the BMS-Controller when running BM-Store.
    pub fn controller(&self) -> Option<&BmsController> {
        match &self.scheme {
            SchemeState::BmStore { controller, .. } => Some(controller),
            _ => None,
        }
    }

    /// Mutable access to engine and controller together (management-
    /// plane drivers need both plus host memory).
    pub fn bm_store_parts(
        &mut self,
    ) -> Option<(
        &mut BmsEngine,
        &mut BmsController,
        &mut HostMemory,
        &mut Vec<Ssd>,
    )> {
        match &mut self.scheme {
            SchemeState::BmStore { engine, controller } => {
                Some((engine, controller, &mut self.host_mem, &mut self.ssds))
            }
            _ => None,
        }
    }

    /// Access to a back-end SSD.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn ssd(&self, i: usize) -> &Ssd {
        &self.ssds[i]
    }

    /// The host kernel profile in use.
    pub fn kernel(&self) -> &KernelProfile {
        &self.kernel
    }

    /// Host CPU seconds burnt by polling cores (0 except for SPDK).
    pub fn polling_cpu_busy(&self) -> SimDuration {
        match &self.scheme {
            SchemeState::Spdk { vhost } => vhost.cpu_busy(),
            _ => SimDuration::ZERO,
        }
    }
}

/// A boxed harness action scheduled via [`World::schedule_action`].
type RawAction = Box<dyn FnOnce(&mut World, &mut Scheduler<World>)>;

enum ClientCall {
    Start,
    Completion(Completion),
    Timer,
}

/// The world: testbed + clients, driven by [`World::run`].
pub struct World {
    /// The composed testbed.
    pub tb: Testbed,
    clients: Vec<Option<Box<dyn Client>>>,
    pending_mgmt: Vec<(SimTime, BmsCommand)>,
    pending_raw: Vec<(SimTime, RawAction)>,
    mgmt_responses: Rc<RefCell<Vec<(SimTime, MiResponse)>>>,
    next_mgmt_tag: u8,
}

impl World {
    /// Wraps a testbed with no clients yet.
    pub fn new(tb: Testbed) -> Self {
        World {
            tb,
            clients: Vec::new(),
            pending_mgmt: Vec::new(),
            pending_raw: Vec::new(),
            mgmt_responses: Rc::new(RefCell::new(Vec::new())),
            next_mgmt_tag: 0,
        }
    }

    /// Schedules an out-of-band management command (sent to the
    /// BMS-Controller over MCTP) at `at`. Only meaningful for BM-Store
    /// testbeds.
    pub fn schedule_command(&mut self, at: SimTime, cmd: BmsCommand) {
        self.pending_mgmt.push((at, cmd));
    }

    /// Schedules an arbitrary harness action at `at` (e.g. the physical
    /// SSD swap of a hot-plug experiment).
    pub fn schedule_action(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut World, &mut Scheduler<World>) + 'static,
    ) {
        self.pending_raw.push((at, Box::new(f)));
    }

    /// Management responses received so far, with their arrival times.
    pub fn mgmt_responses(&self) -> Rc<RefCell<Vec<(SimTime, MiResponse)>>> {
        Rc::clone(&self.mgmt_responses)
    }

    /// Registers a client.
    pub fn add_client(&mut self, client: Box<dyn Client>) -> ClientId {
        self.clients.push(Some(client));
        ClientId(self.clients.len() - 1)
    }

    /// Runs the simulation until the event queue drains (or `deadline`
    /// passes); returns the world for inspection.
    pub fn run(mut self, deadline: Option<SimTime>) -> World {
        let ids: Vec<ClientId> = (0..self.clients.len()).map(ClientId).collect();
        let mgmt = std::mem::take(&mut self.pending_mgmt);
        let raw = std::mem::take(&mut self.pending_raw);
        let mut sim = Simulation::new(self);
        for id in ids {
            sim.schedule_at(SimTime::ZERO, move |w: &mut World, s| {
                w.call_client(s, id, ClientCall::Start);
            });
        }
        for (at, cmd) in mgmt {
            sim.schedule_at(at, move |w: &mut World, s| {
                w.do_management(s, cmd);
            });
        }
        for (at, f) in raw {
            sim.schedule_at(at, f);
        }
        match deadline {
            Some(t) => {
                sim.run_until(t);
            }
            None => {
                sim.run_until_idle();
            }
        }
        sim.into_world()
    }

    /// Borrow a client back after a run (e.g. to read its statistics).
    ///
    /// # Panics
    ///
    /// Panics if the id is invalid.
    pub fn client(&self, id: ClientId) -> &dyn Client {
        self.clients[id.0].as_deref().expect("client present")
    }

    fn call_client(&mut self, s: &mut Scheduler<World>, id: ClientId, call: ClientCall) {
        let now = s.now();
        let mut client = self.clients[id.0].take().expect("client present");
        let out = match call {
            ClientCall::Start => client.start(now),
            ClientCall::Completion(c) => client.on_completion(now, c),
            ClientCall::Timer => client.on_timer(now),
        };
        self.clients[id.0] = Some(client);
        for req in out.requests {
            self.submit_request(s, id, req);
        }
        if let Some(at) = out.next_timer {
            s.schedule_at(at, move |w: &mut World, s| {
                w.call_client(s, id, ClientCall::Timer);
            });
        }
    }

    /// Entry point for client I/O.
    fn submit_request(&mut self, s: &mut Scheduler<World>, client: ClientId, req: IoRequest) {
        let popped = self.tb.devices[req.dev.0].free_cids.pop();
        match popped {
            Some(cid) => self.do_submit(s, client, req, Cid(cid)),
            None => self.tb.devices[req.dev.0].waiting.push_back((client, req)),
        }
    }

    fn do_submit(&mut self, s: &mut Scheduler<World>, client: ClientId, req: IoRequest, cid: Cid) {
        let now = s.now();
        let (prp, bytes) = if req.op == IoOp::Flush {
            (
                PrpPair {
                    prp1: PciAddr::NULL,
                    prp2: PciAddr::NULL,
                    len: 0,
                },
                0,
            )
        } else {
            let prp = self.tb.buffers[req.buf.0];
            let bytes = req.blocks as u64 * 4096;
            debug_assert!(bytes <= prp.len, "buffer too small for request");
            (prp, bytes)
        };
        let dev = &mut self.tb.devices[req.dev.0];
        let lba = match &dev.attachment {
            Attachment::Mediated { lba_offset, .. } => Lba(req.lba.raw() + lba_offset),
            _ => req.lba,
        };
        let opcode = match req.op {
            IoOp::Read => IoOpcode::Read,
            IoOp::Write => IoOpcode::Write,
            IoOp::Flush => IoOpcode::Flush,
        };
        let sqe = Sqe::io(
            opcode,
            cid,
            Nsid::new(1).expect("valid"),
            lba,
            req.blocks.max(1),
            prp.prp1,
            prp.prp2,
        );
        dev.sq
            .push(&mut self.tb.host_mem, &sqe)
            .expect("ring sized above queue depth");
        dev.pending.insert(
            cid.0,
            PendingHost {
                client,
                tag: req.tag,
                submitted: now,
                bytes,
                is_write: req.op.is_write(),
            },
        );
        let mut delay = self.tb.kernel.submit_cost;
        if matches!(dev.attachment, Attachment::Mediated { .. }) {
            delay += VIRTIO_KICK;
        }
        let dev_id = req.dev;
        s.schedule_at(now + delay, move |w: &mut World, s| {
            w.ring_doorbell(s, dev_id);
        });
    }

    /// The doorbell lands at the scheme.
    fn ring_doorbell(&mut self, s: &mut Scheduler<World>, dev_id: DeviceId) {
        let now = s.now();
        let tail = self.tb.devices[dev_id.0].sq.tail() as u32;
        enum Plan {
            Direct { ssd: usize, qid: QueueId },
            Bm { func: FunctionId, qid: QueueId },
            Mediated,
        }
        let plan = match &self.tb.devices[dev_id.0].attachment {
            Attachment::Direct { ssd, qid } => Plan::Direct {
                ssd: *ssd,
                qid: *qid,
            },
            Attachment::BmStoreFn { func, qid } => Plan::Bm {
                func: *func,
                qid: *qid,
            },
            Attachment::Mediated { .. } => Plan::Mediated,
        };
        match plan {
            Plan::Direct { ssd, qid } => {
                s.schedule_at(now + BUS_HOP, move |w: &mut World, s| {
                    let completions =
                        w.tb.ssds[ssd].ring_sq_doorbell(s.now(), qid, tail, &mut w.tb.host_mem);
                    w.schedule_direct_completions(s, ssd, completions);
                });
            }
            Plan::Bm { func, qid } => {
                s.schedule_at(now + BUS_HOP, move |w: &mut World, s| {
                    let SchemeState::BmStore { engine, .. } = &mut w.tb.scheme else {
                        return;
                    };
                    let actions = engine.host_doorbell_write(
                        s.now(),
                        func,
                        DoorbellLayout::sq_tail_offset(qid),
                        tail,
                        &mut w.tb.host_mem,
                    );
                    w.handle_engine_actions(s, actions);
                });
            }
            Plan::Mediated => {
                // The poller notices the kick and fetches everything new.
                let mut sqes = Vec::new();
                {
                    let dev = &mut self.tb.devices[dev_id.0];
                    let Attachment::Mediated { fetch_sq, .. } = &mut dev.attachment else {
                        unreachable!("plan said mediated");
                    };
                    let _ = fetch_sq.doorbell_tail(tail);
                    while let Ok(Some(sqe)) = fetch_sq.fetch(&mut self.tb.host_mem) {
                        sqes.push(sqe);
                    }
                }
                for sqe in sqes {
                    let bytes = sqe.transfer_len(4096);
                    let is_write = sqe.io_opcode() == Some(IoOpcode::Write);
                    let ready = match &mut self.tb.scheme {
                        SchemeState::Spdk { vhost } => {
                            vhost.process_submission(now, bytes, is_write)
                        }
                        SchemeState::Arm { arm } => arm.process(now, bytes),
                        _ => unreachable!("mediated attachment without mediator"),
                    };
                    s.schedule_at(ready, move |w: &mut World, s| {
                        w.mediated_forward(s, dev_id, sqe);
                    });
                }
            }
        }
    }

    /// Mediator data path: push the SQE into the SSD's ring and ring its
    /// doorbell.
    fn mediated_forward(&mut self, s: &mut Scheduler<World>, dev_id: DeviceId, sqe: Sqe) {
        let now = s.now();
        let (ssd, qid, tail) = {
            let dev = &mut self.tb.devices[dev_id.0];
            let Attachment::Mediated {
                ssd, qid, ssd_sq, ..
            } = &mut dev.attachment
            else {
                unreachable!("mediated_forward on non-mediated attachment");
            };
            ssd_sq
                .push(&mut self.tb.host_mem, &sqe)
                .expect("backend ring sized above queue depth");
            (*ssd, *qid, ssd_sq.tail() as u32)
        };
        s.schedule_at(now + BUS_HOP, move |w: &mut World, s| {
            let completions =
                w.tb.ssds[ssd].ring_sq_doorbell(s.now(), qid, tail, &mut w.tb.host_mem);
            w.schedule_direct_completions(s, ssd, completions);
        });
    }

    fn schedule_direct_completions(
        &mut self,
        s: &mut Scheduler<World>,
        ssd: usize,
        completions: Vec<CompletedIo>,
    ) {
        for io in completions {
            let at = io.at;
            s.schedule_at(at, move |w: &mut World, s| {
                w.complete_from_ssd(s, ssd, io);
            });
        }
    }

    /// An SSD finished a command on a directly-registered ring.
    fn complete_from_ssd(&mut self, s: &mut Scheduler<World>, ssd: usize, io: CompletedIo) {
        let now = s.now();
        Ssd::deliver_read_payload(&io, &mut self.tb.host_mem);
        let cqe = match self.tb.ssds[ssd].post_completion(&io, &mut self.tb.host_mem) {
            Ok(cqe) => cqe,
            Err(_) => {
                s.schedule_at(now + SimDuration::from_us(1), move |w: &mut World, s| {
                    w.complete_from_ssd(s, ssd, io);
                });
                return;
            }
        };
        let dev_id = *self
            .tb
            .direct_map
            .get(&(ssd, io.qid.0))
            .expect("completion for mapped queue");
        let (cid, status) = (cqe.cid, cqe.status);
        let is_mediated = matches!(
            self.tb.devices[dev_id.0].attachment,
            Attachment::Mediated { .. }
        );
        if is_mediated {
            // The mediator consumes the backend CQE (polling) and acks
            // the SSD CQ immediately.
            {
                let dev = &mut self.tb.devices[dev_id.0];
                let Attachment::Mediated {
                    backend_cq_head,
                    backend_cq_entries,
                    ssd_sq,
                    ..
                } = &mut dev.attachment
                else {
                    unreachable!("checked above");
                };
                *backend_cq_head = (*backend_cq_head + 1) % *backend_cq_entries;
                // The mediator's producer view of the SSD SQ learns the
                // consumption from the CQE.
                ssd_sq.sync_head(cqe.sq_head);
                let head = *backend_cq_head as u32;
                let qid = io.qid;
                self.tb.ssds[ssd].ring_cq_doorbell(qid, head);
            }
            let delay = match &self.tb.scheme {
                SchemeState::Spdk { vhost } => vhost.completion_delay(),
                SchemeState::Arm { .. } => SimDuration::from_us(2),
                _ => SimDuration::ZERO,
            };
            s.schedule_at(now + delay, move |w: &mut World, s| {
                w.mediated_guest_complete(s, dev_id, cid, status);
            });
        } else {
            // Hardware MSI straight to the host/guest.
            s.schedule_at(now + BUS_HOP, move |w: &mut World, s| {
                w.host_notify(s, dev_id, cid, status);
            });
        }
    }

    /// The mediator writes the guest CQE and injects the interrupt.
    fn mediated_guest_complete(
        &mut self,
        s: &mut Scheduler<World>,
        dev_id: DeviceId,
        cid: Cid,
        status: Status,
    ) {
        let dev = &mut self.tb.devices[dev_id.0];
        let Attachment::Mediated { guest_cq, .. } = &mut dev.attachment else {
            unreachable!("mediated completion on direct attachment");
        };
        let cqe = Cqe {
            result: 0,
            sq_head: 0,
            sq_id: QueueId(1),
            cid,
            phase: false,
            status,
        };
        guest_cq
            .post(&mut self.tb.host_mem, cqe)
            .expect("guest CQ sized above queue depth");
        self.host_notify(s, dev_id, cid, status);
    }

    /// Interrupt arrives at the host/guest: consume the CQE, pay the
    /// completion-side stack costs, deliver to the client.
    fn host_notify(
        &mut self,
        s: &mut Scheduler<World>,
        dev_id: DeviceId,
        cid: Cid,
        status: Status,
    ) {
        let now = s.now();
        enum Ack {
            Ssd(usize, QueueId),
            GuestCq,
            BmCq(FunctionId, QueueId),
        }
        let (cid, status, head, ack) = {
            let dev = &mut self.tb.devices[dev_id.0];
            let polled = dev.cq.poll(&mut self.tb.host_mem);
            let (cid, status) = polled.map(|c| (c.cid, c.status)).unwrap_or((cid, status));
            let head = dev.cq.head() as u32;
            let ack = match &dev.attachment {
                Attachment::Direct { ssd, qid } => Ack::Ssd(*ssd, *qid),
                Attachment::Mediated { .. } => Ack::GuestCq,
                Attachment::BmStoreFn { func, qid } => Ack::BmCq(*func, *qid),
            };
            (cid, status, head, ack)
        };
        match ack {
            Ack::Ssd(ssd, qid) => self.tb.ssds[ssd].ring_cq_doorbell(qid, head),
            Ack::GuestCq => {
                let dev = &mut self.tb.devices[dev_id.0];
                if let Attachment::Mediated { guest_cq, .. } = &mut dev.attachment {
                    let _ = guest_cq.doorbell_head(head);
                }
            }
            Ack::BmCq(func, qid) => {
                if let SchemeState::BmStore { engine, .. } = &mut self.tb.scheme {
                    let _ = engine.host_doorbell_write(
                        now,
                        func,
                        DoorbellLayout::cq_head_offset(qid),
                        head,
                        &mut self.tb.host_mem,
                    );
                }
            }
        }
        // Completion-side stack latency.
        let dev = &mut self.tb.devices[dev_id.0];
        let is_write = dev.pending.get(&cid.0).map(|p| p.is_write).unwrap_or(false);
        let deliver_at = match &mut dev.vm {
            Some(vm) => {
                let mut cost = vm.costs.guest_complete;
                if is_write {
                    cost += vm.costs.guest_write_complete_extra;
                }
                let start = now + vm.costs.interrupt_delivery;
                vm.irq_cpu.occupy(start, cost) + self.tb.kernel.extra_latency
            }
            None => {
                let t = dev.softirq.occupy(now, self.tb.kernel.softirq_per_io);
                t + self.tb.kernel.complete_cost + self.tb.kernel.extra_latency
            }
        };
        s.schedule_at(deliver_at, move |w: &mut World, s| {
            w.deliver_to_client(s, dev_id, cid, status);
        });
    }

    fn deliver_to_client(
        &mut self,
        s: &mut Scheduler<World>,
        dev_id: DeviceId,
        cid: Cid,
        status: Status,
    ) {
        let now = s.now();
        let Some(pending) = self.tb.devices[dev_id.0].pending.remove(&cid.0) else {
            return; // duplicate/late notify (defensive)
        };
        {
            let dev = &mut self.tb.devices[dev_id.0];
            dev.free_cids.push(cid.0);
            // The device consumed one SQE for this completion; retire
            // the slot in the host's ring view.
            dev.sq.retire();
        }
        let completed = if self.tb.cfg.apply_plug_factor {
            let real = now.saturating_since(pending.submitted);
            pending.submitted
                + SimDuration::from_nanos(
                    (real.as_nanos() as f64 * self.tb.kernel.plug_factor) as u64,
                )
        } else {
            now
        };
        let completion = Completion {
            tag: pending.tag,
            dev: dev_id,
            submitted: pending.submitted,
            completed,
            status,
            bytes: pending.bytes,
            is_write: pending.is_write,
        };
        // Refill from the waiting queue before calling the client, so a
        // full ring drains fairly.
        if let Some((client, req)) = self.tb.devices[dev_id.0].waiting.pop_front() {
            if let Some(cid) = self.tb.devices[dev_id.0].free_cids.pop() {
                self.do_submit(s, client, req, Cid(cid));
            }
        }
        let client = pending.client;
        self.call_client(s, client, ClientCall::Completion(completion));
    }

    /// Applies engine actions as events.
    pub(crate) fn handle_engine_actions(
        &mut self,
        s: &mut Scheduler<World>,
        actions: Vec<EngineAction>,
    ) {
        for action in actions {
            match action {
                EngineAction::BackendDoorbell { ssd, tail, at } => {
                    s.schedule_at(at, move |w: &mut World, s| {
                        let SchemeState::BmStore { engine, .. } = &mut w.tb.scheme else {
                            return;
                        };
                        let mut router = engine.dma_router(&mut w.tb.host_mem);
                        let completions = w.tb.ssds[ssd.0 as usize].ring_sq_doorbell(
                            s.now(),
                            QueueId(1),
                            tail,
                            &mut router,
                        );
                        for io in completions {
                            let at = io.at;
                            s.schedule_at(at, move |w: &mut World, s| {
                                w.bm_backend_complete(s, ssd, io);
                            });
                        }
                    });
                }
                EngineAction::HostCompletion {
                    func,
                    qid,
                    cid,
                    status,
                    at,
                } => {
                    s.schedule_at(at, move |w: &mut World, s| {
                        w.bm_host_completion(s, func, qid, cid, status);
                    });
                }
                EngineAction::QosWakeup { at } => {
                    s.schedule_at(at, move |w: &mut World, s| {
                        let SchemeState::BmStore { engine, .. } = &mut w.tb.scheme else {
                            return;
                        };
                        let actions = engine.qos_wakeup(s.now(), &mut w.tb.host_mem);
                        w.handle_engine_actions(s, actions);
                    });
                }
            }
        }
    }

    fn bm_host_completion(
        &mut self,
        s: &mut Scheduler<World>,
        func: FunctionId,
        qid: QueueId,
        cid: Cid,
        status: Status,
    ) {
        let now = s.now();
        let SchemeState::BmStore { engine, .. } = &mut self.tb.scheme else {
            return;
        };
        if !engine.deliver_host_completion(func, qid, cid, status, &mut self.tb.host_mem) {
            // Host CQ full: retry after the host consumes.
            s.schedule_at(now + SimDuration::from_us(2), move |w: &mut World, s| {
                w.bm_host_completion(s, func, qid, cid, status);
            });
            return;
        }
        let interrupt = engine.timing().interrupt;
        let dev_id = self
            .tb
            .devices
            .iter()
            .position(|d| {
                matches!(d.attachment, Attachment::BmStoreFn { func: f, qid: q }
                    if f == func && q == qid)
            })
            .map(DeviceId)
            .expect("device for function");
        s.schedule_at(now + interrupt, move |w: &mut World, s| {
            w.host_notify(s, dev_id, cid, status);
        });
    }

    /// SSD behind the engine finished a command.
    fn bm_backend_complete(&mut self, s: &mut Scheduler<World>, ssd: SsdId, io: CompletedIo) {
        let now = s.now();
        {
            let SchemeState::BmStore { engine, .. } = &mut self.tb.scheme else {
                return;
            };
            let mut router = engine.dma_router(&mut self.tb.host_mem);
            Ssd::deliver_read_payload(&io, &mut router);
            let _ = self.tb.ssds[ssd.0 as usize].post_completion(&io, &mut router);
        }
        let (actions, cq_head) = {
            let SchemeState::BmStore { engine, .. } = &mut self.tb.scheme else {
                return;
            };
            engine.on_backend_completion(now, ssd, &mut self.tb.host_mem)
        };
        self.tb.ssds[ssd.0 as usize].ring_cq_doorbell(QueueId(1), cq_head);
        self.handle_engine_actions(s, actions);
    }

    /// Sends one management command through the full MCTP → controller
    /// path and applies the resulting actions.
    fn do_management(&mut self, s: &mut Scheduler<World>, cmd: BmsCommand) {
        let now = s.now();
        self.next_mgmt_tag = (self.next_mgmt_tag + 1) % 8;
        let tag = self.next_mgmt_tag;
        let actions = {
            let SchemeState::BmStore { engine, controller } = &mut self.tb.scheme else {
                return;
            };
            let mut driver = AdminDriver {
                ssds: &mut self.tb.ssds,
                now,
            };
            let packets = request_packets(Eid(9), controller.eid(), tag, &cmd);
            let mut actions = Vec::new();
            for pkt in packets {
                actions.extend(controller.on_packet(
                    now,
                    pkt,
                    engine,
                    &mut driver,
                    &mut self.tb.host_mem,
                ));
            }
            actions
        };
        self.handle_controller_actions(s, actions);
    }

    fn handle_controller_actions(
        &mut self,
        s: &mut Scheduler<World>,
        actions: Vec<ControllerAction>,
    ) {
        for action in actions {
            match action {
                ControllerAction::Respond { packets } => {
                    // Reassemble on the console side and log the response.
                    let mut asm = bm_pcie::mctp::Assembler::new();
                    for p in packets {
                        if let Ok(Some(msg)) = asm.push(p) {
                            if let Ok(resp) = MiResponse::from_bytes(&msg.body) {
                                self.mgmt_responses.borrow_mut().push((s.now(), resp));
                            }
                        }
                    }
                }
                ControllerAction::FinishUpgrade { ssd, at } => {
                    s.schedule_at(at, move |w: &mut World, s| {
                        let engine_actions = {
                            let SchemeState::BmStore { engine, controller } = &mut w.tb.scheme
                            else {
                                return;
                            };
                            controller.finish_upgrade(s.now(), ssd, engine, &mut w.tb.host_mem)
                        };
                        w.handle_engine_actions(s, engine_actions);
                    });
                }
                ControllerAction::Engine(a) => self.handle_engine_actions(s, vec![a]),
            }
        }
    }

    /// Physically replaces SSD `idx` with a factory-fresh device and
    /// re-attaches the engine's back-end rings (the operator action of
    /// a hot-plug, between prepare and complete).
    ///
    /// # Panics
    ///
    /// Panics if not running the BM-Store scheme.
    pub fn swap_ssd_hardware(&mut self, idx: usize) {
        let SchemeState::BmStore { engine, .. } = &mut self.tb.scheme else {
            panic!("hot-plug swap requires the BM-Store scheme");
        };
        let cfg = SsdConfig::p4510_2tb(SsdId(idx as u8))
            .with_profile(self.tb.cfg.ssd_profile.clone())
            .with_data_mode(self.tb.cfg.data_mode);
        let mut fresh = Ssd::new(cfg);
        let (sq, cq) = engine.ssd_rings(SsdId(idx as u8));
        fresh.attach_io_queues(sq, cq);
        self.tb.ssds[idx] = fresh;
    }
}

/// The controller's private admin channel to the physical SSDs.
struct AdminDriver<'a> {
    ssds: &'a mut Vec<Ssd>,
    now: SimTime,
}

impl BackendAdmin for AdminDriver<'_> {
    fn firmware_download(&mut self, ssd: SsdId, image: &[u8]) -> Result<(), Status> {
        let dev = self
            .ssds
            .get_mut(ssd.0 as usize)
            .ok_or(Status::InternalError)?;
        let mut offset = 0u64;
        for chunk in image.chunks(4096) {
            dev.mgmt_firmware_download(offset, chunk)?;
            offset += chunk.len() as u64;
        }
        Ok(())
    }

    fn firmware_commit_activate(
        &mut self,
        now: SimTime,
        ssd: SsdId,
        slot: u8,
    ) -> Result<SimDuration, Status> {
        let _ = now;
        let dev = self
            .ssds
            .get_mut(ssd.0 as usize)
            .ok_or(Status::InternalError)?;
        match dev.mgmt_firmware_commit(self.now, slot as usize, CommitAction::ActivateNow)? {
            Some(dur) => Ok(dur),
            None => Err(Status::InvalidFirmwareImage),
        }
    }

    fn firmware_version(&mut self, ssd: SsdId) -> String {
        self.ssds
            .get(ssd.0 as usize)
            .map(|d| d.firmware().running().0.clone())
            .unwrap_or_default()
    }

    fn health(&mut self, ssd: SsdId) -> HealthStatus {
        let reads = self
            .ssds
            .get(ssd.0 as usize)
            .map(|d| d.perf().reads())
            .unwrap_or(0);
        HealthStatus {
            temperature_k: 305 + (reads % 5) as u16,
            percent_used: 1,
            available_spare: 100,
            critical_warning: 0,
        }
    }
}
