//! The composed simulation world: a generic interpreter for the
//! scheme effects pipeline.
//!
//! A [`World`] owns one host (memory, kernel profile, CPU pool), the
//! back-end SSDs, the [`Scheme`] under test (built from
//! [`crate::schemes`] at construction time), the tenant devices, and
//! the registered workload [`Client`]s. The world never branches on
//! which scheme is running: it submits requests, hands pipeline events
//! to the scheme's hooks, and interprets the [`Effect`]s they return.
//!
//! ```text
//! client ──submit──▶ host SQ ──Stage::Doorbell──▶ Scheme hooks ──▶ SSD model
//!    ▲                                                                │
//!    └──CompleteToClient──◀ ChargeCpu ◀──RaiseInterrupt◀── effects ◀──┘
//! ```
//!
//! Every hop is a scheduled event at the latency the respective model
//! computes, so fio-style measurements emerge rather than being
//! asserted.

use crate::config::{SchemeKind, TestbedConfig};
use crate::schemes::{
    self, BuildCtx, Effect, FaultTraceEvent, PipelineObserver, PipelineStage, Scheme, SchemeCtx,
    Stage,
};
use crate::types::{BufferId, Client, ClientId, Completion, DeviceId, IoOp, IoRequest};
use bm_baselines::vfio::VfioCosts;
use bm_host::cpu::CpuPool;
use bm_host::kernel::KernelProfile;
use bm_nvme::command::{IoOpcode, Sqe};
use bm_nvme::mi::{HealthStatus, MiResponse};
use bm_nvme::prp::PrpPair;
use bm_nvme::queue::{CompletionQueue, SubmissionQueue};
use bm_nvme::types::{Cid, Nsid};
use bm_nvme::Status;
use bm_pcie::mctp::Eid;
use bm_pcie::{HostMemory, PciAddr};
use bm_prof::ProfHandle;
use bm_sim::faults::FaultKind;
use bm_sim::metrics::{names as metric_names, MetricKey, MetricsHandle};
use bm_sim::resource::FifoServer;
use bm_sim::slo::{self, Alert, AlertKind, AlertState, SloEngine};
use bm_sim::telemetry::critical_path::{self, BlameWindows, CriticalPathAnalysis};
use bm_sim::telemetry::{TelemetryEventKind, TelemetryHandle, TelemetryStage};
use bm_sim::{Scheduler, SimDuration, SimRng, SimTime, Simulation};
use bm_ssd::firmware::CommitAction;
use bm_ssd::{Ssd, SsdConfig, SsdId};
use bmstore_core::controller::commands::BmsCommand;
use bmstore_core::controller::{request_packets, BackendAdmin, BmsController, ControllerAction};
use bmstore_core::engine::BmsEngine;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

pub(crate) struct PendingHost {
    pub(crate) client: ClientId,
    pub(crate) tag: u64,
    pub(crate) submitted: SimTime,
    pub(crate) bytes: u64,
    pub(crate) is_write: bool,
}

/// Guest-side interrupt state of a device handed to a VM.
pub(crate) struct VmState {
    pub(crate) irq_cpu: FifoServer,
    pub(crate) costs: VfioCosts,
}

/// One tenant device: the host-side rings and in-flight bookkeeping.
/// How its doorbell reaches a backend is the scheme's business.
pub(crate) struct Device {
    pub(crate) sq: SubmissionQueue,
    pub(crate) cq: CompletionQueue,
    pub(crate) free_cids: Vec<u16>,
    pub(crate) pending: BTreeMap<u16, PendingHost>,
    pub(crate) waiting: VecDeque<(ClientId, IoRequest)>,
    pub(crate) vm: Option<VmState>,
    pub(crate) size_blocks: u64,
    /// Per-queue completion softirq context (irq affinity spreads
    /// device queues over cores, so the serialization is per device).
    pub(crate) softirq: FifoServer,
}

impl Device {
    pub(crate) fn new(
        sq: SubmissionQueue,
        cq: CompletionQueue,
        vm: Option<VmState>,
        size_blocks: u64,
    ) -> Device {
        let entries = sq.entries();
        Device {
            sq,
            cq,
            free_cids: (0..entries - 1).rev().collect(),
            pending: BTreeMap::new(),
            waiting: VecDeque::new(),
            vm,
            size_blocks,
            softirq: FifoServer::new(),
        }
    }
}

/// The composed testbed (everything except the clients).
pub struct Testbed {
    cfg: TestbedConfig,
    /// Host physical memory (rings, PRP lists, data buffers).
    pub host_mem: HostMemory,
    /// Host CPU pool (polling reservations, utilization accounting).
    pub cpu: CpuPool,
    kernel: KernelProfile,
    ssds: Vec<Ssd>,
    /// The scheme under test. `Option` only so hooks can borrow the
    /// scheme and the rest of the testbed simultaneously (take /
    /// put-back); it is always present between events.
    scheme: Option<Box<dyn Scheme>>,
    devices: Vec<Device>,
    buffers: Vec<PrpPair>,
    telemetry: TelemetryHandle,
    metrics: MetricsHandle,
    prof: ProfHandle,
    #[allow(dead_code)]
    rng: SimRng,
}

impl Testbed {
    /// Builds the testbed from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. more
    /// whole-disk devices than SSDs for a direct scheme).
    pub fn new(cfg: TestbedConfig) -> Self {
        let mut rng = SimRng::seed_from(cfg.seed);
        let mut ssds: Vec<Ssd> = (0..cfg.ssds)
            .map(|i| {
                let mut ssd_cfg = SsdConfig::p4510_2tb(SsdId(i as u8))
                    .with_profile(cfg.ssd_profile.clone())
                    .with_data_mode(cfg.data_mode);
                ssd_cfg.seed ^= cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Ssd::new(ssd_cfg)
            })
            .collect();
        let mut host_mem = HostMemory::new(8 << 30);
        let mut cpu = CpuPool::xeon_8163_dual();
        let mut devices = Vec::new();
        let telemetry = if cfg.telemetry {
            TelemetryHandle::enabled(bm_sim::telemetry::TelemetryRecorder::DEFAULT_CAPACITY)
        } else {
            TelemetryHandle::disabled()
        };
        let metrics = if cfg.metrics {
            MetricsHandle::enabled()
        } else {
            MetricsHandle::disabled()
        };
        let prof = if cfg.profiler {
            ProfHandle::enabled()
        } else {
            ProfHandle::disabled()
        };
        let scheme = {
            let mut ctx = BuildCtx {
                cfg: &cfg,
                host_mem: &mut host_mem,
                cpu: &mut cpu,
                ssds: &mut ssds,
                devices: &mut devices,
                telemetry: &telemetry,
                metrics: &metrics,
            };
            match ctx.cfg.scheme.clone() {
                SchemeKind::Native => schemes::native::build(&mut ctx),
                SchemeKind::Vfio => schemes::vfio::build(&mut ctx),
                SchemeKind::BmStore { in_vm } => schemes::bm_store::build(&mut ctx, in_vm),
                SchemeKind::SpdkVhost { cores } => schemes::spdk::build(&mut ctx, cores),
                SchemeKind::ArmOffload => schemes::arm_offload::build(&mut ctx),
            }
        };
        Testbed {
            kernel: cfg.kernel.clone(),
            scheme: Some(scheme),
            devices,
            buffers: Vec::new(),
            telemetry,
            metrics,
            prof,
            rng: rng.fork(0xBEEF),
            host_mem,
            cpu,
            ssds,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TestbedConfig {
        &self.cfg
    }

    /// The scheme under test. The `Option` is a take/put-back cell for
    /// the event hooks; between events it is always occupied, so this
    /// is the single audited access point for that invariant.
    pub(crate) fn scheme_ref(&self) -> &dyn Scheme {
        // bm-lint: allow(panic-path): take/put-back invariant — the scheme is absent only inside with_scheme's borrow window, which cannot call back in here
        self.scheme.as_deref().expect("scheme present")
    }

    /// Name of the scheme under test.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme_ref().name()
    }

    /// Number of tenant devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Size of a device in logical blocks.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is out of range.
    pub fn device_blocks(&self, dev: DeviceId) -> u64 {
        self.devices[dev.0].size_blocks
    }

    /// Registers a DMA buffer of `bytes` and prebuilds its PRPs.
    ///
    /// # Panics
    ///
    /// Panics if host memory is exhausted.
    pub fn register_buffer(&mut self, bytes: u64) -> BufferId {
        // bm-lint: allow(panic-path): documented contract — registration is setup-time, before the clock starts; exhaustion here is a harness sizing bug
        let buf = self.host_mem.alloc(bytes).expect("buffer memory");
        let prp = PrpPair::build(&mut self.host_mem, buf, bytes);
        self.buffers.push(prp);
        BufferId(self.buffers.len() - 1)
    }

    /// Buffer base address (integrity tests write patterns through it).
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not registered.
    pub fn buffer_addr(&self, buf: BufferId) -> PciAddr {
        self.buffers[buf.0].prp1
    }

    /// The telemetry recorder handle (disabled unless the config's
    /// `telemetry` flag was set).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// The metrics registry handle (disabled unless the config's
    /// `metrics` flag was set).
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// The wall-clock self-profiler handle (disabled unless the
    /// config's `profiler` flag was set).
    pub fn profiler(&self) -> &ProfHandle {
        &self.prof
    }

    /// Access to the BMS-Engine when running the BM-Store scheme.
    pub fn engine(&self) -> Option<&BmsEngine> {
        self.scheme.as_ref().and_then(|s| s.engine())
    }

    /// Access to the BMS-Controller when running BM-Store.
    pub fn controller(&self) -> Option<&BmsController> {
        self.scheme.as_ref().and_then(|s| s.controller())
    }

    /// Mutable access to engine and controller together (management-
    /// plane drivers need both plus host memory).
    pub fn bm_store_parts(
        &mut self,
    ) -> Option<(
        &mut BmsEngine,
        &mut BmsController,
        &mut HostMemory,
        &mut Vec<Ssd>,
    )> {
        let (engine, controller) = self.scheme.as_mut()?.bm_parts()?;
        Some((engine, controller, &mut self.host_mem, &mut self.ssds))
    }

    /// Access to a back-end SSD.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn ssd(&self, i: usize) -> &Ssd {
        &self.ssds[i]
    }

    /// The host kernel profile in use.
    pub fn kernel(&self) -> &KernelProfile {
        &self.kernel
    }

    /// Host CPU seconds burnt by polling cores (0 except for SPDK).
    pub fn polling_cpu_busy(&self) -> SimDuration {
        self.scheme
            .as_ref()
            .map(|s| s.polling_cpu_busy())
            .unwrap_or(SimDuration::ZERO)
    }
}

/// A boxed harness action scheduled via [`World::schedule_action`].
type RawAction = Box<dyn FnOnce(&mut World, &mut Scheduler<World>)>;

/// Cold-boot time of the card firmware after a power loss (the
/// capacitor-backed journal flush plus the boot ROM path).
const POWER_LOSS_RESTART: SimDuration = SimDuration::from_ms(5);

enum ClientCall {
    Start,
    Completion(Completion),
    Timer,
}

/// Link-level fault state the world interprets itself (SSD-level faults
/// live inside the device models). Defaults are inert: `link_until` in
/// the past defers nothing, zero `mctp_drops` drops nothing.
#[derive(Default)]
struct FaultRuntime {
    /// Bus crossings before this instant are deferred to it.
    link_until: SimTime,
    /// Number of upcoming MCTP packets the management link will eat.
    mctp_drops: u32,
}

/// Pre-built metric keys for the periodic sampler, grown lazily to the
/// current topology so the per-tick path allocates no key strings.
#[derive(Default)]
struct SamplerKeys {
    /// Per-device `(host_sq_inflight, host_sq_waiting)` gauge keys.
    host: Vec<(MetricKey, MetricKey)>,
    /// Per-SSD `(ssd_busy_ns, ssd_ops)` series keys.
    ssd_service: Vec<(MetricKey, MetricKey)>,
    /// Per-engine-port gauge/series keys.
    port: Vec<SamplerPortKeys>,
    /// The controller's reassembly gauge key.
    mctp_partials: Option<MetricKey>,
    /// Scheduler-stat keys (events fired, pending, clamped, arena).
    sched: Option<SamplerSchedKeys>,
}

struct SamplerSchedKeys {
    events_fired: MetricKey,
    pending: MetricKey,
    clamped_past: MetricKey,
    arena_slots: MetricKey,
}

struct SamplerPortKeys {
    backlog: MetricKey,
    inflight: MetricKey,
    live: MetricKey,
    zombies: MetricKey,
    bytes: MetricKey,
    forwarded: MetricKey,
    completed: MetricKey,
    abandoned: MetricKey,
}

/// Profile segment for one dispatched pipeline stage. Exhaustive on
/// purpose: adding a [`Stage`] variant forces a naming decision here,
/// so the profiler's key set stays in lockstep with the pipeline.
fn stage_seg(stage: &Stage) -> &'static str {
    match stage {
        Stage::Doorbell { .. } => "stage:Doorbell",
        Stage::Forward { .. } => "stage:Forward",
        Stage::BackendComplete { .. } => "stage:BackendComplete",
        Stage::GuestComplete { .. } => "stage:GuestComplete",
        Stage::EngineDoorbell { .. } => "stage:EngineDoorbell",
        Stage::EngineBackendDoorbell { .. } => "stage:EngineBackendDoorbell",
        Stage::EngineBackendComplete { .. } => "stage:EngineBackendComplete",
        Stage::EngineHostCompletion { .. } => "stage:EngineHostCompletion",
        Stage::EngineQosWakeup => "stage:EngineQosWakeup",
        Stage::EngineDeadline { .. } => "stage:EngineDeadline",
    }
}

/// Profile segment for one interpreted scheme effect; exhaustive for
/// the same reason as [`stage_seg`].
fn effect_seg(effect: &Effect) -> &'static str {
    match effect {
        Effect::ScheduleAt { .. } => "fx:ScheduleAt",
        Effect::ForwardToSsd { .. } => "fx:ForwardToSsd",
        Effect::RaiseInterrupt { .. } => "fx:RaiseInterrupt",
        Effect::ChargeCpu { .. } => "fx:ChargeCpu",
        Effect::CompleteToClient { .. } => "fx:CompleteToClient",
        Effect::Trace { .. } => "fx:Trace",
        Effect::FaultTrace { .. } => "fx:FaultTrace",
    }
}

/// The world: testbed + clients, driven by [`World::run`].
pub struct World {
    /// The composed testbed.
    pub tb: Testbed,
    clients: Vec<Option<Box<dyn Client>>>,
    pending_mgmt: Vec<(SimTime, BmsCommand)>,
    pending_raw: Vec<(SimTime, RawAction)>,
    mgmt_responses: Rc<RefCell<Vec<(SimTime, MiResponse)>>>,
    next_mgmt_tag: u8,
    observer: Option<Rc<RefCell<dyn PipelineObserver>>>,
    faults: FaultRuntime,
    sampler_keys: SamplerKeys,
    /// Total simulator events fired by the last [`World::run`] (zero
    /// before any run). Dividing by host wall-clock time yields the
    /// harness's events-per-second throughput figure.
    pub events_fired: u64,
    /// Peak simulator event-queue depth observed by the last
    /// [`World::run`] (zero before any run).
    pub peak_event_queue: usize,
    /// Events the scheduler clamped forward to "now" because they were
    /// scheduled in the past (zero before any run; non-zero indicates
    /// a model emitting stale timestamps).
    pub clamped_past: u64,
    /// Scheduler arena slots allocated by the last [`World::run`]
    /// (zero before any run; unbounded growth indicates an event leak).
    pub arena_slots: usize,
    /// The SLO evaluator, present when the config carries a policy.
    slo: Option<SloEngine>,
    /// When the last run's event queue drained (incident reports close
    /// open fault windows at this instant).
    run_end: SimTime,
}

impl World {
    /// Wraps a testbed with no clients yet.
    pub fn new(tb: Testbed) -> Self {
        let slo = tb.cfg.slo.clone().map(SloEngine::new);
        World {
            tb,
            clients: Vec::new(),
            pending_mgmt: Vec::new(),
            pending_raw: Vec::new(),
            mgmt_responses: Rc::new(RefCell::new(Vec::new())),
            next_mgmt_tag: 0,
            observer: None,
            faults: FaultRuntime::default(),
            sampler_keys: SamplerKeys::default(),
            events_fired: 0,
            peak_event_queue: 0,
            clamped_past: 0,
            arena_slots: 0,
            slo,
            run_end: SimTime::ZERO,
        }
    }

    /// Installs a per-stage instrumentation hook; every command's
    /// traversal of submit → translate → doorbell → backend → complete
    /// is reported to it.
    pub fn set_observer(&mut self, observer: Rc<RefCell<dyn PipelineObserver>>) {
        self.observer = Some(observer);
    }

    fn observe(&self, now: SimTime, stage: PipelineStage, dev: DeviceId, cid: Cid) {
        if let Some(obs) = &self.observer {
            obs.borrow_mut().on_stage(now, stage, dev, cid);
        }
    }

    fn observe_fault(&self, now: SimTime, event: &FaultTraceEvent) {
        if let Some(obs) = &self.observer {
            obs.borrow_mut().on_fault(now, event);
        }
    }

    /// Schedules an out-of-band management command (sent to the
    /// BMS-Controller over MCTP) at `at`. Only meaningful for BM-Store
    /// testbeds.
    pub fn schedule_command(&mut self, at: SimTime, cmd: BmsCommand) {
        self.pending_mgmt.push((at, cmd));
    }

    /// Schedules an arbitrary harness action at `at` (e.g. the physical
    /// SSD swap of a hot-plug experiment).
    pub fn schedule_action(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut World, &mut Scheduler<World>) + 'static,
    ) {
        self.pending_raw.push((at, Box::new(f)));
    }

    /// Management responses received so far, with their arrival times.
    pub fn mgmt_responses(&self) -> Rc<RefCell<Vec<(SimTime, MiResponse)>>> {
        Rc::clone(&self.mgmt_responses)
    }

    /// Registers a client.
    pub fn add_client(&mut self, client: Box<dyn Client>) -> ClientId {
        self.clients.push(Some(client));
        ClientId(self.clients.len() - 1)
    }

    /// Runs the simulation until the event queue drains (or `deadline`
    /// passes); returns the world for inspection.
    pub fn run(mut self, deadline: Option<SimTime>) -> World {
        let ids: Vec<ClientId> = (0..self.clients.len()).map(ClientId).collect();
        let mgmt = std::mem::take(&mut self.pending_mgmt);
        let raw = std::mem::take(&mut self.pending_raw);
        let plan: Vec<_> = self.tb.cfg.fault_plan.events().to_vec();
        let mut sim = Simulation::new(self);
        for id in ids {
            sim.schedule_at(SimTime::ZERO, move |w: &mut World, s| {
                w.call_client(s, id, ClientCall::Start);
            });
        }
        for ev in plan {
            sim.schedule_at(ev.at, move |w: &mut World, s| {
                w.apply_fault(s, ev.kind);
            });
        }
        for (at, cmd) in mgmt {
            sim.schedule_at(at, move |w: &mut World, s| {
                w.do_management(s, cmd);
            });
        }
        for (at, f) in raw {
            sim.schedule_at(at, move |w: &mut World, s| {
                w.tb.prof.enter("action");
                f(w, s);
                w.tb.prof.exit();
            });
        }
        if sim.world().tb.metrics.is_enabled() {
            let interval = sim.world().tb.cfg.metrics_interval;
            sim.schedule_at(SimTime::ZERO, move |w: &mut World, s| {
                w.sample_metrics(s, interval);
            });
        }
        if sim.world().tb.prof.is_enabled() {
            // Profiled run: drive the scheduler one event at a time so
            // the profiler sees each retirement. `step`/`step_until`
            // replicate `run_until_idle`/`run_until` exactly (same pop
            // order, same deadline clamp), so event execution — and
            // therefore every figure — is byte-identical to the fast
            // path below; the profiler only reads the host clock.
            let prof = sim.world().tb.prof.clone();
            prof.run_begin();
            loop {
                let fired = match deadline {
                    Some(t) => sim.step_until(t),
                    None => sim.step(),
                };
                if !fired {
                    break;
                }
                let sched = sim.scheduler_mut();
                prof.on_event_retired(sched.events_fired(), sched.arena_slots());
            }
            prof.run_end();
        } else {
            match deadline {
                Some(t) => {
                    sim.run_until(t);
                }
                None => {
                    sim.run_until_idle();
                }
            }
        }
        let (fired, peak, clamped, arena) = {
            let sched = sim.scheduler_mut();
            (
                sched.events_fired(),
                sched.peak_pending(),
                sched.clamped_past(),
                sched.arena_slots(),
            )
        };
        let end = sim.now();
        let mut world = sim.into_world();
        world.events_fired = fired;
        world.peak_event_queue = peak;
        world.clamped_past = clamped;
        world.arena_slots = arena;
        world.run_end = end;
        world.export_run_stats(end);
        world
    }

    /// End-of-run export: the scheduler's lifetime stats and the
    /// engine's resilience counters land in the registry as scrapeable
    /// counters/gauges (the per-tick sampler only sees snapshots; these
    /// are the exact totals).
    fn export_run_stats(&mut self, now: SimTime) {
        if !self.tb.metrics.is_enabled() {
            return;
        }
        let fired = self.events_fired;
        let peak = self.peak_event_queue as f64;
        let clamped = self.clamped_past;
        let arena = self.arena_slots as f64;
        let resilience = self.tb.engine().map(|e| e.resilience_stats());
        self.tb.metrics.with(|m| {
            m.counter_add(MetricKey::new(metric_names::SCHED_EVENTS_FIRED), fired);
            m.counter_add(MetricKey::new(metric_names::SCHED_CLAMPED_PAST), clamped);
            m.gauge_set(now, MetricKey::new(metric_names::SCHED_PEAK_PENDING), peak);
            m.gauge_set(now, MetricKey::new(metric_names::SCHED_ARENA_SLOTS), arena);
            if let Some(r) = resilience {
                m.counter_add(
                    MetricKey::new(metric_names::ENGINE_RECOVERIES),
                    r.recoveries,
                );
                m.counter_add(
                    MetricKey::new(metric_names::ENGINE_RECOVERY_REPLAYED),
                    r.replayed,
                );
                m.counter_add(
                    MetricKey::new(metric_names::ENGINE_RECOVERY_ABORTED),
                    r.aborted_on_recovery,
                );
                m.counter_add(
                    MetricKey::new(metric_names::ENGINE_RECOVERY_TIME_NS),
                    r.recovery_time.as_nanos(),
                );
            }
        });
    }

    /// Borrow a client back after a run (e.g. to read its statistics).
    ///
    /// # Panics
    ///
    /// Panics if the id is invalid.
    pub fn client(&self, id: ClientId) -> &dyn Client {
        // bm-lint: allow(panic-path): documented contract — the doc comment says "Panics if the id is invalid"; ids only come from add_client
        self.clients[id.0].as_deref().expect("client present")
    }

    /// The simulation time at which the last run drained (ZERO before
    /// any run).
    pub fn run_end(&self) -> SimTime {
        self.run_end
    }

    /// The SLO alert log, in emission order (empty with no policy).
    pub fn slo_alerts(&self) -> &[Alert] {
        self.slo.as_ref().map(|e| e.alerts()).unwrap_or(&[])
    }

    /// Critical-path blame analysis of the last run's telemetry,
    /// correlated against the fault/recovery windows on the metrics
    /// timeline. `None` when telemetry is disabled.
    pub fn critical_path(&self) -> Option<CriticalPathAnalysis> {
        let annotations = self
            .tb
            .metrics
            .read(|m| m.annotations().to_vec())
            .unwrap_or_default();
        let end = self.run_end;
        self.tb.telemetry.read(|rec| {
            let windows = BlameWindows::from_annotations(&annotations, end);
            critical_path::analyze(rec, &windows)
        })
    }

    /// Renders the deterministic incident report for the last run:
    /// alerts + fault/recovery windows + `extra_events` (e.g. chaos
    /// oracle violations) in one ordered timeline, followed by blame
    /// profiles and the `top_k` slowest critical paths.
    pub fn incident_report(&self, extra_events: &[(SimTime, String)], top_k: usize) -> String {
        let annotations = self
            .tb
            .metrics
            .read(|m| m.annotations().to_vec())
            .unwrap_or_default();
        let analysis = self.critical_path();
        let (recoveries, replayed, aborted_on_recovery) = self
            .tb
            .engine()
            .map(|e| {
                let r = e.resilience_stats();
                (r.recoveries, r.replayed, r.aborted_on_recovery)
            })
            .unwrap_or((0, 0, 0));
        slo::render_incident(&slo::IncidentInput {
            alerts: self.slo_alerts(),
            annotations: &annotations,
            blame: analysis.as_ref(),
            extra_events,
            recoveries,
            replayed,
            aborted_on_recovery,
            top_k,
        })
    }

    fn call_client(&mut self, s: &mut Scheduler<World>, id: ClientId, call: ClientCall) {
        let now = s.now();
        self.tb.prof.enter(match &call {
            ClientCall::Start => "client:start",
            ClientCall::Completion(_) => "client:completion",
            ClientCall::Timer => "client:timer",
        });
        // bm-lint: allow(panic-path): take/put-back invariant — the client is put back unconditionally below, and client hooks cannot re-enter here
        let mut client = self.clients[id.0].take().expect("client present");
        let out = match call {
            ClientCall::Start => client.start(now),
            ClientCall::Completion(c) => client.on_completion(now, c),
            ClientCall::Timer => client.on_timer(now),
        };
        self.clients[id.0] = Some(client);
        for req in out.requests {
            self.submit_request(s, id, req);
        }
        if let Some(at) = out.next_timer {
            s.schedule_at(at, move |w: &mut World, s| {
                w.call_client(s, id, ClientCall::Timer);
            });
        }
        self.tb.prof.exit();
    }

    /// Runs `f` with the scheme taken out of the testbed, so hooks can
    /// borrow the scheme and the remaining testbed resources at once.
    fn with_scheme<R>(&mut self, f: impl FnOnce(&mut dyn Scheme, &mut SchemeCtx) -> R) -> R {
        // bm-lint: allow(panic-path): take/put-back invariant — the scheme is put back unconditionally after the hook returns, and hooks cannot re-enter here
        let mut scheme = self.tb.scheme.take().expect("scheme present");
        let out = {
            let mut ctx = SchemeCtx {
                host_mem: &mut self.tb.host_mem,
                ssds: &mut self.tb.ssds,
                kernel: &self.tb.kernel,
            };
            f(scheme.as_mut(), &mut ctx)
        };
        self.tb.scheme = Some(scheme);
        out
    }

    /// Entry point for client I/O.
    fn submit_request(&mut self, s: &mut Scheduler<World>, client: ClientId, req: IoRequest) {
        let popped = self.tb.devices[req.dev.0].free_cids.pop();
        match popped {
            Some(cid) => self.do_submit(s, client, req, Cid(cid)),
            None => self.tb.devices[req.dev.0].waiting.push_back((client, req)),
        }
    }

    fn do_submit(&mut self, s: &mut Scheduler<World>, client: ClientId, req: IoRequest, cid: Cid) {
        let now = s.now();
        self.tb.prof.enter("submit");
        let (prp, bytes) = if req.op == IoOp::Flush {
            (
                PrpPair {
                    prp1: PciAddr::NULL,
                    prp2: PciAddr::NULL,
                    len: 0,
                },
                0,
            )
        } else {
            let prp = self.tb.buffers[req.buf.0];
            let bytes = req.blocks as u64 * 4096;
            debug_assert!(bytes <= prp.len, "buffer too small for request");
            (prp, bytes)
        };
        let lba = self.tb.scheme_ref().translate(req.dev, req.lba);
        let opcode = match req.op {
            IoOp::Read => IoOpcode::Read,
            IoOp::Write => IoOpcode::Write,
            IoOp::Flush => IoOpcode::Flush,
        };
        let sqe = Sqe::io(
            opcode,
            cid,
            Nsid::ONE,
            lba,
            req.blocks.max(1),
            prp.prp1,
            prp.prp2,
        );
        let dev = &mut self.tb.devices[req.dev.0];
        dev.sq
            .push(&mut self.tb.host_mem, &sqe)
            // bm-lint: allow(panic-path): config invariant — submit() gates on queue-depth credits, so the ring can never be full here
            .expect("ring sized above queue depth");
        dev.pending.insert(
            cid.0,
            PendingHost {
                client,
                tag: req.tag,
                submitted: now,
                bytes,
                is_write: req.op.is_write(),
            },
        );
        self.observe(now, PipelineStage::Submit, req.dev, cid);
        self.observe(now, PipelineStage::Translate, req.dev, cid);
        // Open the root telemetry span; the scheme's stage spans hang
        // off the CmdId this allocates. Inert when telemetry is off.
        self.tb
            .telemetry
            .begin_command(now, req.dev.0 as u16, cid.0, sqe.opcode.code());
        // bm-lint: allow(panic-path): take/put-back invariant — restored two lines below; submit cannot re-enter the testbed
        let mut scheme = self.tb.scheme.take().expect("scheme present");
        let effects = scheme.submit(now, req.dev, &sqe, &self.tb.kernel);
        self.tb.scheme = Some(scheme);
        self.apply_effects(s, effects);
        self.tb.prof.exit();
    }

    /// Dispatches a pipeline continuation back into the scheme.
    fn run_stage(&mut self, s: &mut Scheduler<World>, stage: Stage) {
        let now = s.now();
        self.tb.prof.enter(stage_seg(&stage));
        let effects = match stage {
            Stage::Doorbell { dev, cid } => {
                let tail = self.tb.devices[dev.0].sq.tail() as u32;
                self.observe(now, PipelineStage::Doorbell, dev, cid);
                if self.tb.telemetry.is_enabled() {
                    // Host submission span: SQE push → doorbell ring.
                    let (cmd, opcode) = self.tb.telemetry.lookup(dev.0 as u16, cid.0);
                    if cmd.is_some() {
                        let submitted = self.tb.devices[dev.0]
                            .pending
                            .get(&cid.0)
                            .map(|p| p.submitted)
                            .unwrap_or(now);
                        self.tb.telemetry.span(
                            cmd,
                            dev.0 as u16,
                            dev.0 as u8,
                            opcode,
                            TelemetryStage::Submit,
                            submitted,
                            now,
                            true,
                        );
                    }
                }
                self.with_scheme(|scheme, ctx| scheme.on_doorbell(now, dev, tail, ctx))
            }
            // bm-lint: allow(wildcard-arm): delegation, not omission — every non-doorbell stage is routed to the scheme, whose own dispatcher is exhaustive
            other => self.with_scheme(|scheme, ctx| scheme.on_stage(now, other, ctx)),
        };
        self.apply_effects(s, effects);
        self.tb.prof.exit();
    }

    fn apply_effects(&mut self, s: &mut Scheduler<World>, effects: Vec<Effect>) {
        for effect in effects {
            self.apply_effect(s, effect);
        }
    }

    /// A bus crossing scheduled inside a PCIe link-retrain window is
    /// deferred to the window's end (and the deferral is observable).
    /// Inert when no retrain is active: `link_until` defaults to time
    /// zero, which nothing precedes.
    fn defer_past_retrain(&self, s: &Scheduler<World>, at: SimTime) -> SimTime {
        if at < self.faults.link_until {
            let until = self.faults.link_until;
            self.observe_fault(s.now(), &FaultTraceEvent::LinkDeferred { until });
            until
        } else {
            at
        }
    }

    /// The generic interpreter: one typed effect, one event-loop rule.
    fn apply_effect(&mut self, s: &mut Scheduler<World>, effect: Effect) {
        self.tb.prof.enter(effect_seg(&effect));
        match effect {
            Effect::ScheduleAt { at, stage } => {
                // Doorbell MMIO writes cross the PCIe link; completions
                // and internal engine timers do not. Every stage is
                // named so adding one forces a link-crossing decision.
                let at = match stage {
                    Stage::Doorbell { .. }
                    | Stage::Forward { .. }
                    | Stage::EngineDoorbell { .. }
                    | Stage::EngineBackendDoorbell { .. } => self.defer_past_retrain(s, at),
                    Stage::BackendComplete { .. }
                    | Stage::GuestComplete { .. }
                    | Stage::EngineBackendComplete { .. }
                    | Stage::EngineHostCompletion { .. }
                    | Stage::EngineQosWakeup
                    | Stage::EngineDeadline { .. } => at,
                };
                s.schedule_at(at, move |w: &mut World, s| {
                    w.run_stage(s, stage);
                });
            }
            Effect::ForwardToSsd { at, ssd, qid, tail } => {
                let at = self.defer_past_retrain(s, at);
                s.schedule_at(at, move |w: &mut World, s| {
                    w.tb.prof.enter("ssd:doorbell");
                    let completions =
                        w.tb.ssds[ssd].ring_sq_doorbell(s.now(), qid, tail, &mut w.tb.host_mem);
                    for io in completions {
                        let at = io.at;
                        s.schedule_at(at, move |w: &mut World, s| {
                            w.run_stage(s, Stage::BackendComplete { ssd, io });
                        });
                    }
                    w.tb.prof.exit();
                });
            }
            Effect::RaiseInterrupt {
                at,
                dev,
                cid,
                status,
            } => {
                let at = self.defer_past_retrain(s, at);
                // A mediator injecting at the current instant completes
                // inline, in the same event (not behind queued peers).
                if at <= s.now() {
                    self.host_notify(s, dev, cid, status);
                } else {
                    s.schedule_at(at, move |w: &mut World, s| {
                        w.host_notify(s, dev, cid, status);
                    });
                }
            }
            Effect::ChargeCpu { dev, cid, status } => self.charge_cpu(s, dev, cid, status),
            Effect::CompleteToClient {
                at,
                dev,
                cid,
                status,
            } => {
                s.schedule_at(at, move |w: &mut World, s| {
                    w.tb.prof.enter("deliver");
                    w.deliver_to_client(s, dev, cid, status);
                    w.tb.prof.exit();
                });
            }
            Effect::Trace { stage, dev, cid } => self.observe(s.now(), stage, dev, cid),
            Effect::FaultTrace { event } => self.observe_fault(s.now(), &event),
        }
        self.tb.prof.exit();
    }

    /// Injects one scheduled fault into its target layer.
    fn apply_fault(&mut self, s: &mut Scheduler<World>, kind: FaultKind) {
        let now = s.now();
        let _scope = self.tb.prof.scope("fault");
        match kind {
            FaultKind::SsdLatencySpike { ssd, extra, until } => {
                if let Some(dev) = self.tb.ssds.get_mut(ssd) {
                    dev.inject_latency_spike(extra, until);
                }
            }
            FaultKind::SsdStall { ssd, until } => {
                if let Some(dev) = self.tb.ssds.get_mut(ssd) {
                    dev.inject_stall(until);
                }
            }
            FaultKind::SsdDeath { ssd } => {
                if let Some(dev) = self.tb.ssds.get_mut(ssd) {
                    dev.inject_death();
                }
            }
            FaultKind::SsdErrorBurst {
                ssd,
                probability,
                until,
            } => {
                let rng = self.tb.cfg.fault_plan.rng_for_ssd(ssd);
                if let Some(dev) = self.tb.ssds.get_mut(ssd) {
                    dev.inject_error_burst(probability, until, rng);
                }
            }
            FaultKind::SsdDropCommands { ssd, count } => {
                if let Some(dev) = self.tb.ssds.get_mut(ssd) {
                    dev.inject_command_drops(count);
                }
            }
            FaultKind::MctpDrop { count } => self.faults.mctp_drops += count,
            FaultKind::LinkRetrain { until } => {
                self.faults.link_until = self.faults.link_until.max(until);
            }
            FaultKind::EngineCrash { restart_after } => {
                self.crash_engine(s, now + restart_after);
            }
            FaultKind::PowerLoss { torn_writes } => {
                // The whole card loses power: every SSD's un-acked
                // writes may tear, then the engine cold-restarts.
                for i in 0..self.tb.ssds.len() {
                    let rng = self.tb.cfg.fault_plan.rng_for_ssd(i);
                    self.tb.ssds[i].power_loss(now, torn_writes, rng);
                }
                self.crash_engine(s, now + POWER_LOSS_RESTART);
            }
            FaultKind::SsdReinsert { ssd } => self.reinsert_ssd(s, ssd),
        }
        self.observe_fault(now, &FaultTraceEvent::Injected(kind));
        // Fault windows annotate the metrics timeline, so utilization
        // excursions in the report line up with their cause.
        if self.tb.metrics.is_enabled() {
            let (end, label) = match kind {
                FaultKind::SsdLatencySpike { until, .. } => {
                    (Some(until), "fault:ssd-latency-spike")
                }
                FaultKind::SsdStall { until, .. } => (Some(until), "fault:ssd-stall"),
                FaultKind::SsdDeath { .. } => (None, "fault:ssd-death"),
                FaultKind::SsdErrorBurst { until, .. } => (Some(until), "fault:ssd-error-burst"),
                FaultKind::SsdDropCommands { .. } => (None, "fault:ssd-drop-commands"),
                FaultKind::MctpDrop { .. } => (None, "fault:mctp-drop"),
                FaultKind::LinkRetrain { until } => (Some(until), "fault:link-retrain"),
                FaultKind::EngineCrash { restart_after } => {
                    (Some(now + restart_after), "fault:engine-crash")
                }
                FaultKind::PowerLoss { .. } => (Some(now + POWER_LOSS_RESTART), "fault:power-loss"),
                FaultKind::SsdReinsert { .. } => (None, "fault:ssd-reinsert"),
            };
            self.tb.metrics.with(|m| m.annotate(now, end, label));
        }
        // Fault injections appear in the exported trace as instants, so
        // latency excursions can be lined up with their cause.
        self.tb.telemetry.event(
            now,
            bm_sim::telemetry::CmdId::NONE,
            0,
            0,
            TelemetryEventKind::Mark {
                label: "fault-injected",
            },
        );
    }

    /// The periodic metrics sampler: refreshes occupancy gauges from
    /// every layer, snapshots all gauges into their bounded series, and
    /// re-arms itself. It stops once the event queue is otherwise empty
    /// — in a drained discrete-event simulation nothing can schedule
    /// new work, so rescheduling would keep `run_until_idle` alive
    /// forever.
    fn sample_metrics(&mut self, s: &mut Scheduler<World>, interval: SimDuration) {
        let now = s.now();
        let _scope = self.tb.prof.scope("sampler");
        self.record_scheduler_sample(now, s);
        self.record_metric_sample(now);
        self.evaluate_slo(now);
        if s.pending() == 0 {
            return;
        }
        s.schedule_at(now + interval, move |w: &mut World, s| {
            w.sample_metrics(s, interval);
        });
    }

    /// Per-tick scheduler stats: occupancy gauges (snapshotted into
    /// series by the gauge pass) plus cumulative tallies sampled as
    /// series, so event-rate and clamp excursions line up with the rest
    /// of the timeline. Runs before `record_metric_sample` so this
    /// tick's `snapshot_gauges` captures the fresh values.
    fn record_scheduler_sample(&mut self, now: SimTime, s: &Scheduler<World>) {
        if !self.tb.metrics.is_enabled() {
            return;
        }
        let keys = self
            .sampler_keys
            .sched
            .get_or_insert_with(|| SamplerSchedKeys {
                events_fired: MetricKey::new(metric_names::SCHED_EVENTS_FIRED),
                pending: MetricKey::new(metric_names::SCHED_PENDING),
                clamped_past: MetricKey::new(metric_names::SCHED_CLAMPED_PAST),
                arena_slots: MetricKey::new(metric_names::SCHED_ARENA_SLOTS),
            });
        let fired = s.events_fired() as f64;
        let pending = s.pending() as f64;
        let clamped = s.clamped_past() as f64;
        let arena = s.arena_slots() as f64;
        self.tb.metrics.with(|m| {
            m.sample_ref(now, &keys.events_fired, fired);
            m.gauge_set_ref(now, &keys.pending, pending);
            m.sample_ref(now, &keys.clamped_past, clamped);
            m.gauge_set_ref(now, &keys.arena_slots, arena);
        });
    }

    /// One SLO evaluation tick: burn rates + the stall watchdog. Each
    /// alert edge lands on the metrics timeline as an annotation (full
    /// dynamic label) and in the telemetry stream as a static mark.
    fn evaluate_slo(&mut self, now: SimTime) {
        let Some(engine) = self.slo.as_mut() else {
            return;
        };
        let outstanding: u64 = self
            .tb
            .devices
            .iter()
            .map(|d| (d.pending.len() + d.waiting.len()) as u64)
            .sum();
        let edges = engine.evaluate(now, outstanding);
        for alert in &edges {
            let label = alert.annotation_label();
            self.tb.metrics.with(|m| m.annotate(now, None, label));
            let mark = match (alert.state, alert.kind) {
                (AlertState::Fire, AlertKind::Stall) => "slo-stall",
                (AlertState::Fire, _) => "slo-alert-fire",
                (AlertState::Clear, _) => "slo-alert-clear",
            };
            self.tb.telemetry.event(
                now,
                bm_sim::telemetry::CmdId::NONE,
                alert.tenant.unwrap_or(0),
                0,
                TelemetryEventKind::Mark { label: mark },
            );
        }
    }

    /// One sampling tick: read live occupancy state into gauges and
    /// cumulative-tally series. The sampler only *reads* the pipeline
    /// (ports, backlogs, device queues, SSD service tallies); the few
    /// event-time pushes (stage busy, MCTP counters) happen where the
    /// events fire.
    fn record_metric_sample(&mut self, now: SimTime) {
        let handle = self.tb.metrics.clone();
        if handle.with(|m| m.mark_sample_tick(now)).is_none() {
            return;
        }
        // Grow the cached key tables to the current topology; stable in
        // steady state, so the per-tick path builds no key strings.
        while self.sampler_keys.host.len() < self.tb.devices.len() {
            let i = self.sampler_keys.host.len();
            self.sampler_keys.host.push((
                MetricKey::labeled(metric_names::HOST_SQ_INFLIGHT, "function", i),
                MetricKey::labeled(metric_names::HOST_SQ_WAITING, "function", i),
            ));
        }
        while self.sampler_keys.ssd_service.len() < self.tb.ssds.len() {
            let i = self.sampler_keys.ssd_service.len();
            self.sampler_keys.ssd_service.push((
                MetricKey::labeled(metric_names::SSD_BUSY_NS, "ssd", i),
                MetricKey::labeled(metric_names::SSD_OPS, "ssd", i),
            ));
        }
        let port_count = self.tb.engine().map_or(0, |e| e.adaptor().len());
        while self.sampler_keys.port.len() < port_count {
            let i = self.sampler_keys.port.len();
            let key = |name| MetricKey::labeled(name, "ssd", i);
            self.sampler_keys.port.push(SamplerPortKeys {
                backlog: key(metric_names::DOORBELL_BACKLOG),
                inflight: key(metric_names::BACKEND_INFLIGHT),
                live: key(metric_names::BACKEND_LIVE),
                zombies: key(metric_names::BACKEND_ZOMBIES),
                bytes: key(metric_names::DMA_INFLIGHT_BYTES),
                forwarded: key(metric_names::BACKEND_FORWARDED),
                completed: key(metric_names::BACKEND_COMPLETED),
                abandoned: key(metric_names::BACKEND_ABANDONED),
            });
        }
        // Host-side tenant queues (every scheme).
        for (i, dev) in self.tb.devices.iter().enumerate() {
            let inflight = dev.pending.len() as f64;
            let waiting = dev.waiting.len() as f64;
            let (inflight_key, waiting_key) = &self.sampler_keys.host[i];
            handle.with(|m| {
                m.gauge_set_ref(now, inflight_key, inflight);
                m.gauge_set_ref(now, waiting_key, waiting);
            });
        }
        // SSD service tallies (cumulative counters, sampled as series so
        // windowed service-time utilization falls out of any two ticks).
        for (i, ssd) in self.tb.ssds.iter().enumerate() {
            let stats = ssd.service_stats();
            let (busy_key, ops_key) = &self.sampler_keys.ssd_service[i];
            handle.with(|m| {
                m.sample_ref(now, busy_key, stats.busy.as_nanos_f64());
                m.sample_ref(now, ops_key, stats.ops as f64);
            });
        }
        // BM-Store engine: per-port occupancy and the conservation
        // tallies (live == forwarded - completed - abandoned).
        if let Some(engine) = self.tb.engine() {
            for (i, port) in engine.adaptor().ports().enumerate() {
                let backlog = engine.backlog_len(SsdId(i as u8)) as f64;
                let inflight = port.inflight() as f64;
                let live = port.live() as f64;
                let zombies = port.zombie_count() as f64;
                let bytes = port.inflight_bytes() as f64;
                let forwarded = port.forwarded() as f64;
                let completed = port.completed() as f64;
                let abandoned = port.abandoned() as f64;
                let keys = &self.sampler_keys.port[i];
                handle.with(|m| {
                    m.gauge_set_ref(now, &keys.backlog, backlog);
                    m.gauge_set_ref(now, &keys.inflight, inflight);
                    m.gauge_set_ref(now, &keys.live, live);
                    m.gauge_set_ref(now, &keys.zombies, zombies);
                    m.gauge_set_ref(now, &keys.bytes, bytes);
                    m.sample_ref(now, &keys.forwarded, forwarded);
                    m.sample_ref(now, &keys.completed, completed);
                    m.sample_ref(now, &keys.abandoned, abandoned);
                });
            }
        }
        // Management plane: torn reassemblies pending at the controller.
        if let Some(controller) = self.tb.controller() {
            let partials = controller.assembler().in_progress() as f64;
            let key = self
                .sampler_keys
                .mctp_partials
                .get_or_insert_with(|| MetricKey::new(metric_names::MCTP_PARTIALS));
            handle.with(|m| {
                m.gauge_set_ref(now, key, partials);
            });
        }
        // Snapshot every gauge into its series at this tick.
        handle.with(|m| m.snapshot_gauges(now));
    }

    /// Interrupt arrives at the host/guest: consume the CQE, ack it
    /// through the scheme, then charge the completion-side stack.
    fn host_notify(
        &mut self,
        s: &mut Scheduler<World>,
        dev_id: DeviceId,
        cid: Cid,
        status: Status,
    ) {
        let now = s.now();
        self.tb.prof.enter("notify");
        let (cid, status, head) = {
            let dev = &mut self.tb.devices[dev_id.0];
            let polled = dev.cq.poll(&mut self.tb.host_mem);
            let (cid, status) = polled.map(|c| (c.cid, c.status)).unwrap_or((cid, status));
            (cid, status, dev.cq.head() as u32)
        };
        self.with_scheme(|scheme, ctx| scheme.ack_host_cq(now, dev_id, head, ctx));
        self.apply_effect(
            s,
            Effect::ChargeCpu {
                dev: dev_id,
                cid,
                status,
            },
        );
        self.tb.prof.exit();
    }

    /// Completion-side stack latency: guest IRQ vCPU or host softirq.
    fn charge_cpu(&mut self, s: &mut Scheduler<World>, dev_id: DeviceId, cid: Cid, status: Status) {
        let now = s.now();
        let dev = &mut self.tb.devices[dev_id.0];
        let is_write = dev.pending.get(&cid.0).map(|p| p.is_write).unwrap_or(false);
        let deliver_at = match &mut dev.vm {
            Some(vm) => {
                let mut cost = vm.costs.guest_complete;
                if is_write {
                    cost += vm.costs.guest_write_complete_extra;
                }
                let start = now + vm.costs.interrupt_delivery;
                vm.irq_cpu.occupy(start, cost) + self.tb.kernel.extra_latency
            }
            None => {
                let t = dev.softirq.occupy(now, self.tb.kernel.softirq_per_io);
                t + self.tb.kernel.complete_cost + self.tb.kernel.extra_latency
            }
        };
        self.apply_effect(
            s,
            Effect::CompleteToClient {
                at: deliver_at,
                dev: dev_id,
                cid,
                status,
            },
        );
    }

    fn deliver_to_client(
        &mut self,
        s: &mut Scheduler<World>,
        dev_id: DeviceId,
        cid: Cid,
        status: Status,
    ) {
        let now = s.now();
        let Some(pending) = self.tb.devices[dev_id.0].pending.remove(&cid.0) else {
            return; // duplicate/late notify (defensive)
        };
        {
            let dev = &mut self.tb.devices[dev_id.0];
            dev.free_cids.push(cid.0);
            // The device consumed one SQE for this completion; retire
            // the slot in the host's ring view.
            dev.sq.retire();
        }
        self.observe(now, PipelineStage::Complete, dev_id, cid);
        self.tb
            .telemetry
            .end_command(now, dev_id.0 as u16, cid.0, status.is_success());
        if let Some(slo) = self.slo.as_mut() {
            slo.observe_completion(
                dev_id.0 as u16,
                now.saturating_since(pending.submitted),
                status.is_success(),
            );
        }
        let completed = if self.tb.cfg.apply_plug_factor {
            let real = now.saturating_since(pending.submitted);
            pending.submitted
                + SimDuration::from_nanos((real.as_nanos_f64() * self.tb.kernel.plug_factor) as u64)
        } else {
            now
        };
        let completion = Completion {
            tag: pending.tag,
            dev: dev_id,
            submitted: pending.submitted,
            completed,
            status,
            bytes: pending.bytes,
            is_write: pending.is_write,
        };
        // Refill from the waiting queue before calling the client, so a
        // full ring drains fairly.
        if let Some((client, req)) = self.tb.devices[dev_id.0].waiting.pop_front() {
            if let Some(cid) = self.tb.devices[dev_id.0].free_cids.pop() {
                self.do_submit(s, client, req, Cid(cid));
            }
        }
        let client = pending.client;
        self.call_client(s, client, ClientCall::Completion(completion));
    }

    /// Sends one management command through the full MCTP → controller
    /// path and applies the resulting actions.
    ///
    /// The link may be eating packets ([`FaultKind::MctpDrop`]). A torn
    /// message never reaches the protocol analyzer — the reassembler
    /// holds (or rejects) the partial — so the console retransmits the
    /// whole request with the same tag, up to three times. A fresh SOM
    /// packet resets any stale partial, making the retransmit safe and
    /// the command exactly-once.
    fn do_management(&mut self, s: &mut Scheduler<World>, cmd: BmsCommand) {
        let now = s.now();
        let _scope = self.tb.prof.scope("mgmt");
        self.next_mgmt_tag = (self.next_mgmt_tag + 1) % 8;
        let tag = self.next_mgmt_tag;
        const MAX_RETRANSMITS: u32 = 3;
        let mut attempt = 0u32;
        loop {
            let mut dropped = 0u32;
            let actions = {
                let faults = &mut self.faults;
                let tb = &mut self.tb;
                let Some(scheme) = tb.scheme.as_mut() else {
                    return;
                };
                let Some((engine, controller)) = scheme.bm_parts() else {
                    return;
                };
                let mut driver = AdminDriver {
                    ssds: &mut tb.ssds,
                    now,
                };
                let packets = request_packets(Eid(9), controller.eid(), tag, &cmd);
                let mut actions = Vec::new();
                for pkt in packets {
                    if faults.mctp_drops > 0 {
                        faults.mctp_drops -= 1;
                        dropped += 1;
                        continue;
                    }
                    actions.extend(controller.on_packet(
                        now,
                        pkt,
                        engine,
                        &mut driver,
                        &mut tb.host_mem,
                    ));
                }
                actions
            };
            for _ in 0..dropped {
                self.observe_fault(now, &FaultTraceEvent::MctpPacketDropped);
            }
            if dropped > 0 {
                self.tb.metrics.with(|m| {
                    m.counter_add(
                        MetricKey::new(metric_names::MCTP_DROPPED),
                        u64::from(dropped),
                    )
                });
            }
            if dropped == 0 {
                self.handle_controller_actions(s, actions);
                return;
            }
            // With ≥1 packet missing the message cannot have reassembled;
            // whatever the torn attempt produced (at most a reassembly
            // error) is discarded and the console resends.
            if attempt >= MAX_RETRANSMITS {
                return; // link declared dead for this command
            }
            attempt += 1;
            self.observe_fault(now, &FaultTraceEvent::MctpRetransmit { attempt });
            self.tb
                .metrics
                .with(|m| m.counter_add(MetricKey::new(metric_names::MCTP_RETRANSMITS), 1));
        }
    }

    fn handle_controller_actions(
        &mut self,
        s: &mut Scheduler<World>,
        actions: Vec<ControllerAction>,
    ) {
        for action in actions {
            match action {
                ControllerAction::Respond { packets } => {
                    // Reassemble on the console side and log the response.
                    let mut asm = bm_pcie::mctp::Assembler::new();
                    for p in packets {
                        if let Ok(Some(msg)) = asm.push(p) {
                            if let Ok(resp) = MiResponse::from_bytes(&msg.body) {
                                self.mgmt_responses.borrow_mut().push((s.now(), resp));
                            }
                        }
                    }
                }
                ControllerAction::FinishUpgrade { ssd, at } => {
                    s.schedule_at(at, move |w: &mut World, s| {
                        let engine_actions = {
                            let tb = &mut w.tb;
                            let Some(scheme) = tb.scheme.as_mut() else {
                                return;
                            };
                            let Some((engine, controller)) = scheme.bm_parts() else {
                                return;
                            };
                            controller.finish_upgrade(s.now(), ssd, engine, &mut tb.host_mem)
                        };
                        let effects = match w.tb.scheme.as_mut() {
                            Some(scheme) => scheme.on_engine_actions(engine_actions),
                            None => Vec::new(),
                        };
                        w.apply_effects(s, effects);
                    });
                }
                ControllerAction::Engine(a) => {
                    let effects = match self.tb.scheme.as_mut() {
                        Some(scheme) => scheme.on_engine_actions(vec![a]),
                        None => Vec::new(),
                    };
                    self.apply_effects(s, effects);
                }
            }
        }
    }

    /// Physically replaces SSD `idx` with a factory-fresh device and
    /// re-attaches the engine's back-end rings (the operator action of
    /// a hot-plug, between prepare and complete).
    ///
    /// # Panics
    ///
    /// Panics if not running the BM-Store scheme.
    pub fn swap_ssd_hardware(&mut self, idx: usize) {
        let tb = &mut self.tb;
        // bm-lint: allow(panic-path): same take/put-back invariant as scheme_mut(); field access kept so cfg stays borrowable alongside
        let scheme = tb.scheme.as_deref_mut().expect("scheme present");
        let Some((engine, _)) = scheme.bm_parts() else {
            // bm-lint: allow(panic-path): documented test-API precondition — the doc comment says "Panics if not running the BM-Store scheme"
            panic!("hot-plug swap requires the BM-Store scheme");
        };
        let cfg = SsdConfig::p4510_2tb(SsdId(idx as u8))
            .with_profile(tb.cfg.ssd_profile.clone())
            .with_data_mode(tb.cfg.data_mode);
        let mut fresh = Ssd::new(cfg);
        // Zombie adaptor slots (commands abandoned to the departed
        // device) can never complete now — reclaim them — and the
        // back-end rings restart from zero on both sides.
        engine.on_ssd_replaced(SsdId(idx as u8));
        let (sq, cq) = engine.ssd_rings(SsdId(idx as u8));
        fresh.attach_io_queues(sq, cq);
        tb.ssds[idx] = fresh;
    }

    /// Crashes the BMS-Engine firmware at the current instant and
    /// schedules the cold restart. A crash while already down only
    /// extends the outage — the pending restart re-arms itself.
    fn crash_engine(&mut self, s: &mut Scheduler<World>, restart_at: SimTime) {
        let now = s.now();
        let (was_crashed, effects) = {
            let tb = &mut self.tb;
            let Some(scheme) = tb.scheme.as_mut() else {
                return;
            };
            let Some((engine, _)) = scheme.bm_parts() else {
                return;
            };
            let was_crashed = engine.is_crashed();
            engine.crash(now, restart_at);
            // Flush the crash recovery-log entry to the observer now,
            // not when the next I/O happens to pass through the scheme.
            (was_crashed, scheme.on_engine_actions(Vec::new()))
        };
        self.apply_effects(s, effects);
        if !was_crashed {
            s.schedule_at(restart_at, |w: &mut World, s| w.restart_engine(s));
        }
    }

    /// The firmware comes back up: back-end rings re-attach on both
    /// sides, the crash journal replays or aborts, and the resulting
    /// engine actions re-enter the pipeline. Deferred host doorbells
    /// land at the same instant but were inserted later, so recovery
    /// runs first.
    fn restart_engine(&mut self, s: &mut Scheduler<World>) {
        let now = s.now();
        let extended = self
            .tb
            .engine()
            .map(|e| e.restart_at())
            .unwrap_or(SimTime::ZERO);
        if extended > now {
            // A second crash during the outage pushed the restart out.
            s.schedule_at(extended, |w: &mut World, s| w.restart_engine(s));
            return;
        }
        let engine_actions = {
            let tb = &mut self.tb;
            let Some(scheme) = tb.scheme.as_mut() else {
                return;
            };
            let Some((engine, _)) = scheme.bm_parts() else {
                return;
            };
            if !engine.is_crashed() {
                return;
            }
            // The crash reset the engine-side ring state; reset the
            // SSD side to match and attach fresh queue views before
            // the journal replays anything into them.
            for (i, ssd) in tb.ssds.iter_mut().enumerate() {
                ssd.reset();
                let (sq, cq) = engine.ssd_rings(SsdId(i as u8));
                ssd.attach_io_queues(sq, cq);
            }
            engine.recover(now, &mut tb.host_mem)
        };
        let effects = match self.tb.scheme.as_mut() {
            Some(scheme) => scheme.on_engine_actions(engine_actions),
            None => Vec::new(),
        };
        self.apply_effects(s, effects);
    }

    /// Surprise re-attach of a dead SSD in the same bay: the device
    /// (and its stored data) survives, rings restart from zero, and —
    /// behind the engine — zombie slots are reclaimed and quiesced
    /// traffic resumes.
    fn reinsert_ssd(&mut self, s: &mut Scheduler<World>, idx: usize) {
        let now = s.now();
        let engine_actions = {
            let tb = &mut self.tb;
            if tb.ssds.get(idx).is_none() {
                return;
            }
            tb.ssds[idx].revive();
            let Some(scheme) = tb.scheme.as_mut() else {
                return;
            };
            let Some((engine, _)) = scheme.bm_parts() else {
                return;
            };
            let sid = SsdId(idx as u8);
            tb.ssds[idx].reset();
            let actions = engine.surprise_reinsert(now, sid, &mut tb.host_mem);
            let (sq, cq) = engine.ssd_rings(sid);
            tb.ssds[idx].attach_io_queues(sq, cq);
            actions
        };
        let effects = match self.tb.scheme.as_mut() {
            Some(scheme) => scheme.on_engine_actions(engine_actions),
            None => Vec::new(),
        };
        self.apply_effects(s, effects);
    }
}

/// The controller's private admin channel to the physical SSDs.
struct AdminDriver<'a> {
    ssds: &'a mut Vec<Ssd>,
    now: SimTime,
}

impl BackendAdmin for AdminDriver<'_> {
    fn firmware_download(&mut self, ssd: SsdId, image: &[u8]) -> Result<(), Status> {
        let dev = self
            .ssds
            .get_mut(ssd.0 as usize)
            .ok_or(Status::InternalError)?;
        let mut offset = 0u64;
        for chunk in image.chunks(4096) {
            dev.mgmt_firmware_download(offset, chunk)?;
            offset += chunk.len() as u64;
        }
        Ok(())
    }

    fn firmware_commit_activate(
        &mut self,
        now: SimTime,
        ssd: SsdId,
        slot: u8,
    ) -> Result<SimDuration, Status> {
        let _ = now;
        let dev = self
            .ssds
            .get_mut(ssd.0 as usize)
            .ok_or(Status::InternalError)?;
        match dev.mgmt_firmware_commit(self.now, slot as usize, CommitAction::ActivateNow)? {
            Some(dur) => Ok(dur),
            None => Err(Status::InvalidFirmwareImage),
        }
    }

    fn firmware_version(&mut self, ssd: SsdId) -> String {
        self.ssds
            .get(ssd.0 as usize)
            .map(|d| d.firmware().running().0.clone())
            .unwrap_or_default()
    }

    fn health(&mut self, ssd: SsdId) -> HealthStatus {
        let reads = self
            .ssds
            .get(ssd.0 as usize)
            .map(|d| d.perf().reads())
            .unwrap_or(0);
        HealthStatus {
            temperature_k: 305 + (reads % 5) as u16,
            percent_used: 1,
            available_spare: 100,
            critical_warning: 0,
        }
    }
}
