//! # bm-testbed — the composed simulation testbed
//!
//! Wires hosts, schemes (native / VFIO / BM-Store / SPDK vhost / ARM
//! offload), and back-end SSDs into one deterministic event-driven
//! simulation, and exposes the [`Client`] trait workloads implement.
//!
//! ## Architecture: the scheme effects pipeline
//!
//! The crate is split along one seam:
//!
//! * [`schemes`] — each I/O scheme implements the [`schemes::Scheme`]
//!   trait. A hook receives a pipeline event (a submission, a doorbell,
//!   a backend completion) and returns typed [`schemes::Effect`]s; it
//!   never touches the scheduler.
//! * [`world`] — a generic interpreter. [`World`] drives clients,
//!   dispatches pipeline stages into the scheme, and interprets the
//!   returned effects (schedule a stage, ring a backend SSD, raise an
//!   interrupt, charge the completion stack, deliver to the client,
//!   trace). It contains no per-scheme branches after construction.
//!
//! Every command traverses the same five observable points — submit →
//! translate → doorbell → backend → complete — reported to an optional
//! [`schemes::PipelineObserver`] installed with [`World::set_observer`].
//!
//! ## Running a workload
//!
//! ```
//! use bm_testbed::schemes::CountingObserver;
//! use bm_testbed::{Testbed, TestbedConfig, World};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let tb = Testbed::new(TestbedConfig::native(1));
//! assert_eq!(tb.device_count(), 1);
//! let mut world = World::new(tb);
//! let observer = Rc::new(RefCell::new(CountingObserver::default()));
//! world.set_observer(observer.clone());
//! let world = world.run(None); // no clients: returns immediately
//! assert_eq!(world.tb.device_count(), 1);
//! ```
//!
//! ## Worked example: adding a scheme
//!
//! Suppose you want to model a hypothetical "CXL window" scheme where
//! the doorbell write itself carries the command to the device. The
//! whole job is one module in `src/schemes/` plus two lines of wiring:
//!
//! 1. **Implement [`schemes::Scheme`]** in `src/schemes/cxl.rs`. Keep
//!    per-device backend state (which SSD, which queue) in the struct;
//!    the world owns everything else:
//!
//!    ```ignore
//!    pub(crate) struct CxlScheme {
//!        attach: Vec<(usize, QueueId)>,                 // per DeviceId
//!        direct_map: HashMap<(usize, u16), DeviceId>,   // completions
//!    }
//!
//!    impl Scheme for CxlScheme {
//!        fn name(&self) -> &'static str { "cxl-window" }
//!
//!        // Doorbell → forward to the SSD in the same hop (no BUS_HOP:
//!        // the window write is the transport).
//!        fn on_doorbell(&mut self, now, dev, tail, _ctx) -> Vec<Effect> {
//!            let (ssd, qid) = self.attach[dev.0];
//!            vec![Effect::ForwardToSsd { at: now, ssd, qid, tail }]
//!        }
//!
//!        // The interpreter hands back each SSD completion.
//!        fn on_stage(&mut self, now, stage, ctx) -> Vec<Effect> {
//!            let Stage::BackendComplete { ssd, io } = stage else { .. };
//!            Ssd::deliver_read_payload(&io, ctx.host_mem);
//!            let cqe = ctx.ssds[ssd].post_completion(&io, ctx.host_mem)?;
//!            let dev = self.direct_map[&(ssd, io.qid.0)];
//!            vec![
//!                Effect::Trace { stage: PipelineStage::Backend, dev, cid: cqe.cid },
//!                Effect::RaiseInterrupt { at: now, dev, cid: cqe.cid, status: cqe.status },
//!            ]
//!        }
//!
//!        fn ack_host_cq(&mut self, _now, dev, head, ctx) {
//!            let (ssd, qid) = self.attach[dev.0];
//!            ctx.ssds[ssd].ring_cq_doorbell(qid, head);
//!        }
//!    }
//!
//!    // Construction: allocate rings via ctx.alloc_rings, attach SSD
//!    // queue views, push one `Device` per spec, return the boxed scheme.
//!    pub(crate) fn build(ctx: &mut BuildCtx) -> Box<dyn Scheme> { .. }
//!    ```
//!
//! 2. **Wire it up**: add `pub mod cxl;` to `src/schemes/mod.rs`, a
//!    `SchemeKind` variant, and one match arm in `Testbed::new`. That
//!    match is the only place in the crate that names the scheme.
//!
//! Latency modelling guidance: submit-side costs go in
//! [`schemes::Scheme::submit`] (override the default to add e.g. a
//! virtio kick), transport hops go in the `at` fields of the effects
//! you emit, and completion-stack costs are charged uniformly by the
//! interpreter (`Effect::ChargeCpu`), so schemes never duplicate them.
//! The scheme-equivalence suite in `tests/scheme_equivalence.rs` will
//! pick the new scheme up and check payload integrity and determinism
//! against the others once it is added to its scheme list.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod schemes;
pub mod types;
pub mod world;

pub use config::{DeviceSpec, SchemeKind, TestbedConfig};
pub use schemes::{
    CountingObserver, Effect, FaultLog, FaultTraceEvent, PipelineObserver, PipelineStage, Scheme,
    SchemeCtx, Stage,
};
pub use types::{BufferId, Client, ClientId, ClientOutput, Completion, DeviceId, IoOp, IoRequest};
pub use world::{Testbed, World};
