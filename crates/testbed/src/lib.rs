//! # bm-testbed — the composed simulation testbed
//!
//! Wires hosts, schemes (native / VFIO / BM-Store / SPDK vhost / ARM
//! offload), and back-end SSDs into one deterministic event-driven
//! simulation, and exposes the [`Client`] trait workloads implement.
//!
//! # Examples
//!
//! ```
//! use bm_testbed::{Testbed, TestbedConfig, World};
//!
//! let tb = Testbed::new(TestbedConfig::native(1));
//! assert_eq!(tb.device_count(), 1);
//! let world = World::new(tb);
//! let world = world.run(None); // no clients: returns immediately
//! assert_eq!(world.tb.device_count(), 1);
//! ```

pub mod config;
pub mod types;
pub mod world;

pub use config::{DeviceSpec, SchemeKind, TestbedConfig};
pub use types::{BufferId, Client, ClientId, ClientOutput, Completion, DeviceId, IoOp, IoRequest};
pub use world::{Testbed, World};
