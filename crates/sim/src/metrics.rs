//! Deterministic, sim-time-sampled metrics.
//!
//! [`telemetry`](crate::telemetry) answers *"what happened to command
//! X"* (spans and traces); this module answers *"where is the system
//! saturated, and is it getting slower release over release"*. It is a
//! registry of three metric shapes, all keyed by a
//! ([`MetricKey`]) metric name plus ordered label pairs:
//!
//! * **counters** — monotonic `u64` totals (commands started, bytes
//!   forwarded, retransmits, per-stage busy nanoseconds),
//! * **gauges** — instantaneous values with a peak watermark and a
//!   time-weighted integral, so the *mean occupancy over the run* falls
//!   out without storing every transition,
//! * **bounded time series** — `(SimTime, f64)` traces recorded by the
//!   testbed's periodic sampling event, capped at a fixed capacity so a
//!   long run cannot grow without bound (overflow is counted, never
//!   silent).
//!
//! Fault windows are recorded as [`Annotation`]s so excursions in the
//! series line up with their cause.
//!
//! # Determinism
//!
//! The registry is driven entirely by simulated time: it never
//! schedules events, draws randomness, or reads a wall clock. Sampling
//! is a *simulator event* (the testbed schedules it only when metrics
//! are enabled), so with metrics off the event stream — and therefore
//! every figure table — is byte-identical to a build without this
//! module. A disabled [`MetricsHandle`] makes every call a no-op, the
//! same contract as [`TelemetryHandle`](crate::telemetry::TelemetryHandle).
//!
//! # Bottleneck analysis
//!
//! Components account per-stage *busy time* (the interval a command
//! occupies the stage, waiting included) and *arrivals* via
//! [`MetricsRegistry::stage_busy`]. Over a window `T` this yields, per
//! stage, a Little's-law breakdown: arrival rate `λ = arrivals / T`,
//! mean occupancy `L = busy / T`, and implied latency `W = L / λ =
//! busy / arrivals`. The stage with the highest occupancy is the
//! saturated stage ([`MetricsRegistry::bottleneck_report`]).
//!
//! # Examples
//!
//! ```
//! use bm_sim::metrics::{MetricKey, MetricsHandle};
//! use bm_sim::{SimDuration, SimTime};
//!
//! let m = MetricsHandle::enabled();
//! let t0 = SimTime::ZERO;
//! m.with(|r| {
//!     r.stage_busy("ssd", SimDuration::from_us(80), 1);
//!     r.gauge_set(t0, MetricKey::new("depth"), 4.0);
//!     r.sample(t0, MetricKey::new("depth"), 4.0);
//! });
//! let report = m
//!     .read(|r| r.bottleneck_report(SimTime::ZERO + SimDuration::from_us(100), 4))
//!     .unwrap();
//! assert_eq!(report.saturated.as_deref(), Some("ssd"));
//!
//! // Disabled handles are inert: no allocation, no recording.
//! let off = MetricsHandle::disabled();
//! assert!(off.with(|r| r.counter_add(MetricKey::new("x"), 1)).is_none());
//! ```

use crate::stats::TimeSeries;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

/// Default capacity of each bounded time series (samples per key).
pub const DEFAULT_SERIES_CAPACITY: usize = 1 << 14;

/// Canonical metric names, shared by every instrumented crate so the
/// exposition is consistent and the report generators can find them.
pub mod names {
    /// Per-stage busy nanoseconds (counter; label `stage`).
    pub const STAGE_BUSY_NS: &str = "bm_stage_busy_ns_total";
    /// Per-stage command arrivals (counter; label `stage`).
    pub const STAGE_ARRIVALS: &str = "bm_stage_arrivals_total";
    /// Commands inside the engine pipeline (gauge; label `function`).
    pub const ENGINE_OUTSTANDING: &str = "bm_engine_outstanding";
    /// Commands fetched into the pipeline (counter; label `function`).
    pub const ENGINE_STARTED: &str = "bm_engine_commands_started_total";
    /// Commands that left the pipeline (counter; label `function`).
    pub const ENGINE_FINISHED: &str = "bm_engine_commands_finished_total";
    /// Commands parked behind a paused/full back-end port (gauge; label `ssd`).
    pub const DOORBELL_BACKLOG: &str = "bm_engine_doorbell_backlog";
    /// Back-end SQ slots in flight, zombies included (gauge; label `ssd`).
    pub const BACKEND_INFLIGHT: &str = "bm_backend_sq_inflight";
    /// SQEs pushed to a back-end ring (counter; label `ssd`).
    pub const BACKEND_FORWARDED: &str = "bm_backend_forwarded_total";
    /// CQEs drained from a back-end ring (counter; label `ssd`).
    pub const BACKEND_COMPLETED: &str = "bm_backend_completed_total";
    /// Timed-out attempts abandoned (counter; label `ssd`).
    pub const BACKEND_ABANDONED: &str = "bm_backend_abandoned_total";
    /// Live (non-zombie) back-end slots (gauge; label `ssd`).
    pub const BACKEND_LIVE: &str = "bm_backend_live";
    /// Zombie slots awaiting stale completions (gauge; label `ssd`).
    pub const BACKEND_ZOMBIES: &str = "bm_backend_zombie_slots";
    /// Payload bytes owned by in-flight back-end commands (gauge).
    pub const DMA_INFLIGHT_BYTES: &str = "bm_dma_inflight_bytes";
    /// Host-visible SQ entries awaiting completion (gauge; label `function`).
    pub const HOST_SQ_INFLIGHT: &str = "bm_host_sq_inflight";
    /// Host submissions waiting for a free ring slot (gauge; label `function`).
    pub const HOST_SQ_WAITING: &str = "bm_host_sq_waiting";
    /// SSD media busy nanoseconds (counter; label `ssd`).
    pub const SSD_BUSY_NS: &str = "bm_ssd_service_busy_ns_total";
    /// SSD commands serviced (counter; label `ssd`).
    pub const SSD_OPS: &str = "bm_ssd_service_ops_total";
    /// In-flight management requests: MCTP reassemblies in progress at
    /// the controller (SOM received, EOM still missing) (gauge).
    pub const MCTP_PARTIALS: &str = "bm_mctp_partial_assemblies";
    /// Management packets lost on the wire (counter).
    pub const MCTP_DROPPED: &str = "bm_mctp_packets_dropped_total";
    /// Management retransmissions issued (counter).
    pub const MCTP_RETRANSMITS: &str = "bm_mctp_retransmits_total";
    /// Engine command timeouts observed (counter).
    pub const ENGINE_TIMEOUTS: &str = "bm_engine_timeouts_total";
    /// Engine command retries issued (counter).
    pub const ENGINE_RETRIES: &str = "bm_engine_retries_total";
    /// Simulator events executed (counter; sampled per tick).
    pub const SCHED_EVENTS_FIRED: &str = "bm_sched_events_fired_total";
    /// Events pending in the scheduler (gauge; peak twin = high-water).
    pub const SCHED_PENDING: &str = "bm_sched_pending_events";
    /// Exact scheduler high-water mark, set once at run end (gauge).
    pub const SCHED_PEAK_PENDING: &str = "bm_sched_peak_pending_events";
    /// Past-due schedules clamped to now (counter).
    pub const SCHED_CLAMPED_PAST: &str = "bm_sched_clamped_past_total";
    /// Scheduler arena slots allocated (gauge; growth = leak signal).
    pub const SCHED_ARENA_SLOTS: &str = "bm_sched_arena_slots";
    /// Engine crash/recovery cycles completed (counter).
    pub const ENGINE_RECOVERIES: &str = "bm_engine_recoveries_total";
    /// Journaled commands replayed across recoveries (counter).
    pub const ENGINE_RECOVERY_REPLAYED: &str = "bm_engine_recovery_replayed_total";
    /// Journaled commands aborted to host on recovery (counter).
    pub const ENGINE_RECOVERY_ABORTED: &str = "bm_engine_recovery_aborted_total";
    /// Nanoseconds spent down across recoveries (counter).
    pub const ENGINE_RECOVERY_TIME_NS: &str = "bm_engine_recovery_time_ns_total";
}

/// Engine pipeline stage labels, in paper order (Fig. 3), plus the
/// back-end device stage used by the bottleneck report.
pub mod stages {
    /// SR-IOV front end: doorbell decode + SQE fetch.
    pub const FRONT_END: &str = "front_end";
    /// NVMe target controller: validation + per-command processing.
    pub const TARGET_CTRL: &str = "target_ctrl";
    /// LBA mapping table lookup / chunk split.
    pub const MAPPING: &str = "mapping";
    /// QoS admission (busy only while commands wait in the throttle).
    pub const QOS: &str = "qos";
    /// DMA routing + back-end forward (store-and-forward link included).
    pub const DMA_ROUTING: &str = "dma_routing";
    /// Host adaptor: CQE forward + interrupt post.
    pub const HOST_ADAPTOR: &str = "host_adaptor";
    /// The back-end device itself (service interval, internal queueing
    /// included) — not an engine stage, but the report needs it to tell
    /// "SSD-bound" from "engine-bound".
    pub const SSD: &str = "ssd";

    /// All stages the bottleneck report knows about, in display order.
    pub const ALL: [&str; 7] = [
        FRONT_END,
        TARGET_CTRL,
        MAPPING,
        QOS,
        DMA_ROUTING,
        HOST_ADAPTOR,
        SSD,
    ];
}

/// A metric identity: name plus ordered `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus-style snake case).
    pub name: &'static str,
    /// Label pairs, in a fixed order chosen by the instrumentation site.
    pub labels: Vec<(&'static str, String)>,
}

impl MetricKey {
    /// A key with no labels.
    pub fn new(name: &'static str) -> Self {
        MetricKey {
            name,
            labels: Vec::new(),
        }
    }

    /// A key with one label.
    pub fn labeled(name: &'static str, label: &'static str, value: impl fmt::Display) -> Self {
        MetricKey {
            name,
            labels: vec![(label, value.to_string())],
        }
    }

    /// The value of `label`, if present.
    pub fn label(&self, label: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| *k == label)
            .map(|(_, v)| v.as_str())
    }

    fn render(&self) -> String {
        self.render_as(self.name)
    }

    /// Renders with `name` substituted for the key's own (peak twins:
    /// the suffix must precede the label set in Prometheus syntax).
    fn render_as(&self, name: &str) -> String {
        if self.labels.is_empty() {
            return name.to_string();
        }
        let mut out = String::from(name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
        out
    }
}

/// A gauge: instantaneous value, peak watermark, and a time-weighted
/// integral maintained piecewise between updates so mean occupancy is
/// available without storing the full transition history.
#[derive(Debug, Clone)]
pub struct GaugeState {
    value: f64,
    peak: f64,
    integral_ns: f64,
    last_update: SimTime,
}

impl GaugeState {
    fn new(now: SimTime, value: f64) -> Self {
        GaugeState {
            value,
            peak: value,
            integral_ns: 0.0,
            last_update: now,
        }
    }

    fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.saturating_since(self.last_update).as_nanos_f64();
        self.integral_ns += self.value * dt;
        self.last_update = now;
        self.value = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Highest value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[start, now]`, treating the time before
    /// the gauge existed as zero.
    pub fn mean_over(&self, start: SimTime, now: SimTime) -> f64 {
        let window = now.saturating_since(start).as_nanos_f64();
        if window == 0.0 {
            return self.value;
        }
        let tail = now.saturating_since(self.last_update).as_nanos_f64();
        (self.integral_ns + self.value * tail) / window
    }
}

/// A capacity-bounded time series. Once full, further samples are
/// dropped and counted — determinism over completeness.
#[derive(Debug, Clone)]
pub struct BoundedSeries {
    series: TimeSeries,
    capacity: usize,
    dropped: u64,
}

impl BoundedSeries {
    fn new(name: &str, capacity: usize) -> Self {
        BoundedSeries {
            series: TimeSeries::new(name),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, at: SimTime, value: f64) {
        if self.series.len() < self.capacity {
            self.series.push(at, value);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        self.series.points()
    }

    /// Samples discarded after the series filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The underlying series (name, aggregates).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

/// A labeled time window (e.g. an injected fault) pinned to the run's
/// series so excursions can be matched to their cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Window start.
    pub start: SimTime,
    /// Window end; `None` for instantaneous or still-open windows.
    pub end: Option<SimTime>,
    /// Human-readable cause.
    pub label: String,
}

/// One stage's row in the [`BottleneckReport`].
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage label (see [`stages`]).
    pub stage: String,
    /// Commands that entered the stage.
    pub arrivals: u64,
    /// Total busy time accumulated by the stage.
    pub busy: SimDuration,
    /// Mean occupancy `L = busy / window` (may exceed 1 for stages with
    /// internal parallelism, e.g. the SSD's flash dies).
    pub occupancy: f64,
    /// Arrival rate `λ` in commands per second.
    pub arrival_rate_per_s: f64,
    /// Little's-law implied latency `W = L / λ = busy / arrivals`.
    pub implied_latency: SimDuration,
}

/// The utilization / queueing summary for a run window.
#[derive(Debug, Clone)]
pub struct BottleneckReport {
    /// Window the rates are computed over.
    pub window: SimDuration,
    /// Per-stage breakdown, sorted by descending occupancy.
    pub stages: Vec<StageReport>,
    /// The stage with the highest occupancy, if any stage was busy.
    pub saturated: Option<String>,
    /// Top tenants by mean pipeline occupancy: `(function label, mean L)`.
    pub top_tenants: Vec<(String, f64)>,
}

/// The metrics store: counters, gauges, bounded series, annotations.
///
/// Not used directly by components — they hold a [`MetricsHandle`].
#[derive(Debug)]
pub struct MetricsRegistry {
    series_capacity: usize,
    started: SimTime,
    last_sample: Option<SimTime>,
    sample_ticks: u64,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, GaugeState>,
    series: BTreeMap<MetricKey, BoundedSeries>,
    annotations: Vec<Annotation>,
    /// Per-stage `(busy, arrivals)` key pair, built once per stage so
    /// [`MetricsRegistry::stage_busy`] allocates nothing in steady state.
    stage_keys: BTreeMap<&'static str, (MetricKey, MetricKey)>,
}

impl MetricsRegistry {
    /// An empty registry with [`DEFAULT_SERIES_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SERIES_CAPACITY)
    }

    /// An empty registry with `series_capacity` samples per series key.
    pub fn with_capacity(series_capacity: usize) -> Self {
        MetricsRegistry {
            series_capacity,
            started: SimTime::ZERO,
            last_sample: None,
            sample_ticks: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            series: BTreeMap::new(),
            annotations: Vec::new(),
            stage_keys: BTreeMap::new(),
        }
    }

    /// Adds `delta` to a counter, creating it at zero.
    pub fn counter_add(&mut self, key: MetricKey, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Adds `delta` to a counter through a borrowed key: the hot-path
    /// variant for call sites that cache their [`MetricKey`]s. Clones
    /// the key only on first use.
    pub fn counter_add_ref(&mut self, key: &MetricKey, delta: u64) {
        match self.counters.get_mut(key) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(key.clone(), delta);
            }
        }
    }

    /// Reads a counter (zero if never written).
    pub fn counter(&self, key: &MetricKey) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sets a gauge, folding the elapsed interval into its integral.
    pub fn gauge_set(&mut self, now: SimTime, key: MetricKey, value: f64) {
        match self.gauges.get_mut(&key) {
            Some(g) => g.set(now, value),
            None => {
                self.gauges.insert(key, GaugeState::new(now, value));
            }
        }
    }

    /// Sets a gauge through a borrowed key: the hot-path variant for
    /// call sites that cache their [`MetricKey`]s. Clones the key only
    /// on first use.
    pub fn gauge_set_ref(&mut self, now: SimTime, key: &MetricKey, value: f64) {
        match self.gauges.get_mut(key) {
            Some(g) => g.set(now, value),
            None => {
                self.gauges.insert(key.clone(), GaugeState::new(now, value));
            }
        }
    }

    /// Reads a gauge.
    pub fn gauge(&self, key: &MetricKey) -> Option<&GaugeState> {
        self.gauges.get(key)
    }

    /// Appends one point to a bounded series, creating it on first use.
    pub fn sample(&mut self, at: SimTime, key: MetricKey, value: f64) {
        match self.series.get_mut(&key) {
            Some(s) => s.push(at, value),
            None => {
                let mut s = BoundedSeries::new(&key.render(), self.series_capacity);
                s.push(at, value);
                self.series.insert(key, s);
            }
        }
    }

    /// Appends one point through a borrowed key: the hot-path variant
    /// for call sites that cache their [`MetricKey`]s. Clones the key
    /// only when the series is first created.
    pub fn sample_ref(&mut self, at: SimTime, key: &MetricKey, value: f64) {
        match self.series.get_mut(key) {
            Some(s) => s.push(at, value),
            None => {
                let mut s = BoundedSeries::new(&key.render(), self.series_capacity);
                s.push(at, value);
                self.series.insert(key.clone(), s);
            }
        }
    }

    /// Snapshots every gauge's current value into its series at `now`
    /// — the periodic sampler's bulk step, equivalent to calling
    /// [`MetricsRegistry::sample`] per gauge but without cloning every
    /// key on every tick.
    pub fn snapshot_gauges(&mut self, now: SimTime) {
        let capacity = self.series_capacity;
        let (gauges, series) = (&self.gauges, &mut self.series);
        for (key, gauge) in gauges {
            let value = gauge.value();
            match series.get_mut(key) {
                Some(s) => s.push(now, value),
                None => {
                    let mut s = BoundedSeries::new(&key.render(), capacity);
                    s.push(now, value);
                    series.insert(key.clone(), s);
                }
            }
        }
    }

    /// Reads a series.
    pub fn series(&self, key: &MetricKey) -> Option<&BoundedSeries> {
        self.series.get(key)
    }

    /// Accounts one stage traversal: `busy` occupancy-time (waiting
    /// included) and `arrivals` commands entering the stage. The key
    /// pair per stage is cached, so steady-state calls do not allocate.
    pub fn stage_busy(&mut self, stage: &'static str, busy: SimDuration, arrivals: u64) {
        let (busy_key, arrivals_key) = self.stage_keys.entry(stage).or_insert_with(|| {
            (
                MetricKey::labeled(names::STAGE_BUSY_NS, "stage", stage),
                MetricKey::labeled(names::STAGE_ARRIVALS, "stage", stage),
            )
        });
        match self.counters.get_mut(busy_key) {
            Some(v) => *v += busy.as_nanos(),
            None => {
                self.counters.insert(busy_key.clone(), busy.as_nanos());
            }
        }
        if arrivals > 0 {
            match self.counters.get_mut(arrivals_key) {
                Some(v) => *v += arrivals,
                None => {
                    self.counters.insert(arrivals_key.clone(), arrivals);
                }
            }
        }
    }

    /// Records a labeled window annotation (e.g. a fault injection).
    pub fn annotate(&mut self, start: SimTime, end: Option<SimTime>, label: impl Into<String>) {
        self.annotations.push(Annotation {
            start,
            end,
            label: label.into(),
        });
    }

    /// Marks one firing of the periodic sampling event.
    pub fn mark_sample_tick(&mut self, now: SimTime) {
        self.sample_ticks += 1;
        self.last_sample = Some(now);
    }

    /// Number of sampling-event firings.
    pub fn sample_ticks(&self) -> u64 {
        self.sample_ticks
    }

    /// Time of the most recent sampling-event firing.
    pub fn last_sample(&self) -> Option<SimTime> {
        self.last_sample
    }

    /// All recorded annotations, in recording order.
    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// All counters, in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// All gauges, in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, &GaugeState)> {
        self.gauges.iter()
    }

    /// All series, in key order.
    pub fn series_iter(&self) -> impl Iterator<Item = (&MetricKey, &BoundedSeries)> {
        self.series.iter()
    }

    /// Total samples dropped across all series after filling.
    pub fn series_dropped(&self) -> u64 {
        self.series.values().map(|s| s.dropped).sum()
    }

    /// Builds the utilization / Little's-law summary as of `now`,
    /// listing up to `top_k` tenants by mean pipeline occupancy.
    pub fn bottleneck_report(&self, now: SimTime, top_k: usize) -> BottleneckReport {
        let window = now.saturating_since(self.started);
        let window_ns = window.as_nanos_f64();
        let mut stage_rows = Vec::new();
        for (key, busy_ns) in &self.counters {
            if key.name != names::STAGE_BUSY_NS {
                continue;
            }
            let Some(stage) = key.label("stage") else {
                continue;
            };
            let arrivals = self.counter(&MetricKey::labeled(names::STAGE_ARRIVALS, "stage", stage));
            let busy = SimDuration::from_nanos(*busy_ns);
            let occupancy = if window_ns > 0.0 {
                busy.as_nanos_f64() / window_ns
            } else {
                0.0
            };
            let arrival_rate_per_s = if window_ns > 0.0 {
                arrivals as f64 * 1e9 / window_ns
            } else {
                0.0
            };
            let implied_latency = busy_ns
                .checked_div(arrivals)
                .map(SimDuration::from_nanos)
                .unwrap_or(SimDuration::ZERO);
            stage_rows.push(StageReport {
                stage: stage.to_string(),
                arrivals,
                busy,
                occupancy,
                arrival_rate_per_s,
                implied_latency,
            });
        }
        stage_rows.sort_by(|a, b| {
            b.occupancy
                .total_cmp(&a.occupancy)
                .then_with(|| a.stage.cmp(&b.stage))
        });
        let saturated = stage_rows
            .first()
            .filter(|s| s.busy > SimDuration::ZERO)
            .map(|s| s.stage.clone());

        let mut tenants: Vec<(String, f64)> = self
            .gauges
            .iter()
            .filter(|(k, _)| k.name == names::ENGINE_OUTSTANDING)
            .filter_map(|(k, g)| {
                k.label("function")
                    .map(|f| (f.to_string(), g.mean_over(self.started, now)))
            })
            .collect();
        tenants.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        tenants.truncate(top_k);

        BottleneckReport {
            window,
            stages: stage_rows,
            saturated,
            top_tenants: tenants,
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// A cheaply clonable, possibly-disabled reference to a registry.
///
/// Disabled handles make every access a no-op, so metrics-off runs are
/// bit-identical to a tree without the instrumentation (the same
/// contract as [`TelemetryHandle`](crate::telemetry::TelemetryHandle)).
#[derive(Debug, Clone, Default)]
pub struct MetricsHandle(Option<Rc<RefCell<MetricsRegistry>>>);

impl MetricsHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        MetricsHandle(None)
    }

    /// A live handle over a fresh registry.
    pub fn enabled() -> Self {
        MetricsHandle(Some(Rc::new(RefCell::new(MetricsRegistry::new()))))
    }

    /// A live handle with a custom per-series capacity.
    pub fn enabled_with_capacity(series_capacity: usize) -> Self {
        MetricsHandle(Some(Rc::new(RefCell::new(MetricsRegistry::with_capacity(
            series_capacity,
        )))))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Runs `f` with mutable access to the registry, if enabled.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.0.as_ref().map(|r| f(&mut r.borrow_mut()))
    }

    /// Runs `f` with shared access to the registry, if enabled.
    pub fn read<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        self.0.as_ref().map(|r| f(&r.borrow()))
    }
}

fn fmt_f64(v: f64) -> String {
    // bm-lint: allow(float-determinism): integer-rendering threshold in a formatter; it inspects an already-computed value, not sim state
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Renders the registry as Prometheus text-format exposition
/// (counters and gauges; series are exported via [`csv`]). Annotations
/// and sampler health appear as trailing comments. Deterministic: keys
/// are emitted in `BTreeMap` order.
pub fn prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for (key, value) in reg.counters() {
        if key.name != last_name {
            let _ = writeln!(out, "# TYPE {} counter", key.name);
            last_name = key.name;
        }
        let _ = writeln!(out, "{} {}", key.render(), value);
    }
    last_name = "";
    for (key, gauge) in reg.gauges() {
        if key.name != last_name {
            let _ = writeln!(out, "# TYPE {} gauge", key.name);
            last_name = key.name;
        }
        let _ = writeln!(out, "{} {}", key.render(), fmt_f64(gauge.value()));
    }
    last_name = "";
    for (key, gauge) in reg.gauges() {
        let peak_name = format!("{}_peak", key.name);
        if key.name != last_name {
            let _ = writeln!(out, "# TYPE {peak_name} gauge");
            last_name = key.name;
        }
        let _ = writeln!(
            out,
            "{} {}",
            key.render_as(&peak_name),
            fmt_f64(gauge.peak())
        );
    }
    let _ = writeln!(out, "# TYPE bm_metrics_sample_ticks counter");
    let _ = writeln!(out, "bm_metrics_sample_ticks {}", reg.sample_ticks());
    let _ = writeln!(out, "# TYPE bm_metrics_series_dropped counter");
    let _ = writeln!(out, "bm_metrics_series_dropped {}", reg.series_dropped());
    for a in reg.annotations() {
        let end = a
            .end
            .map(|e| e.as_nanos().to_string())
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "# ANNOTATION {} {} {}",
            a.start.as_nanos(),
            end,
            a.label
        );
    }
    out
}

/// Renders every bounded series as CSV: `series,t_ns,value`, one row
/// per sample, keys in `BTreeMap` order.
pub fn csv(reg: &MetricsRegistry) -> String {
    let mut out = String::from("series,t_ns,value\n");
    for (key, series) in reg.series_iter() {
        let rendered = key.render();
        for (at, v) in series.points() {
            let _ = writeln!(out, "\"{}\",{},{}", rendered, at.as_nanos(), fmt_f64(*v));
        }
    }
    out
}

/// Renders a [`BottleneckReport`] as an aligned text table.
pub fn render_bottleneck(report: &BottleneckReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "window {:.3} ms; saturated stage: {}",
        report.window.as_secs_f64() * 1e3,
        report.saturated.as_deref().unwrap_or("(idle)")
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "stage", "arrivals", "lambda/s", "mean L", "W (us)", "util %"
    );
    for s in &report.stages {
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>12.0} {:>10.3} {:>12.1} {:>12.1}",
            s.stage,
            s.arrivals,
            s.arrival_rate_per_s,
            s.occupancy,
            s.implied_latency.as_micros_f64(),
            100.0 * s.occupancy.min(1.0),
        );
    }
    if !report.top_tenants.is_empty() {
        let _ = writeln!(out, "top tenants by mean pipeline occupancy:");
        for (tenant, l) in &report.top_tenants {
            let _ = writeln!(out, "  {tenant:<12} {l:>8.3}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000)
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        let key = MetricKey::labeled(names::ENGINE_STARTED, "function", 0);
        assert_eq!(reg.counter(&key), 0);
        reg.counter_add(key.clone(), 2);
        reg.counter_add(key.clone(), 3);
        assert_eq!(reg.counter(&key), 5);
    }

    #[test]
    fn gauge_integral_gives_time_weighted_mean() {
        let mut reg = MetricsRegistry::new();
        let key = MetricKey::new("depth");
        // 0..10µs at 4, 10..20µs at 8 → mean 6 over 20µs.
        reg.gauge_set(us(0), key.clone(), 4.0);
        reg.gauge_set(us(10), key.clone(), 8.0);
        let g = reg.gauge(&key).unwrap();
        assert_eq!(g.value(), 8.0);
        assert_eq!(g.peak(), 8.0);
        let mean = g.mean_over(SimTime::ZERO, us(20));
        assert!((mean - 6.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn gauge_created_mid_window_counts_zero_before() {
        let mut reg = MetricsRegistry::new();
        let key = MetricKey::new("depth");
        reg.gauge_set(us(10), key.clone(), 10.0);
        // 0..10µs implicit zero, 10..20µs at 10 → mean 5.
        let mean = reg.gauge(&key).unwrap().mean_over(SimTime::ZERO, us(20));
        assert!((mean - 5.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn bounded_series_counts_overflow() {
        let mut reg = MetricsRegistry::with_capacity(2);
        let key = MetricKey::new("s");
        for i in 0..5u64 {
            reg.sample(us(i), key.clone(), i as f64);
        }
        let s = reg.series(&key).unwrap();
        assert_eq!(s.points().len(), 2);
        assert_eq!(s.dropped(), 3);
        assert_eq!(reg.series_dropped(), 3);
    }

    #[test]
    fn bottleneck_names_busiest_stage_and_obeys_littles_law() {
        let mut reg = MetricsRegistry::new();
        // 100 commands × 80µs in the SSD, 100 × 1µs in the front end,
        // over a 1ms window: L_ssd = 8, W_ssd = 80µs, λ = 100k/s.
        reg.stage_busy(stages::SSD, SimDuration::from_us(80) * 100, 100);
        reg.stage_busy(stages::FRONT_END, SimDuration::from_us(1) * 100, 100);
        let report = reg.bottleneck_report(us(1_000), 4);
        assert_eq!(report.saturated.as_deref(), Some(stages::SSD));
        let ssd = &report.stages[0];
        assert_eq!(ssd.arrivals, 100);
        assert!((ssd.occupancy - 8.0).abs() < 1e-9);
        assert!((ssd.arrival_rate_per_s - 100_000.0).abs() < 1e-6);
        assert_eq!(ssd.implied_latency, SimDuration::from_us(80));
        // Little's law: L = λ · W.
        let lw = ssd.arrival_rate_per_s * ssd.implied_latency.as_secs_f64();
        assert!((ssd.occupancy - lw).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_ranks_tenants_by_mean_occupancy() {
        let mut reg = MetricsRegistry::new();
        for (f, depth) in [(0u8, 2.0), (1, 9.0), (2, 4.0)] {
            let key = MetricKey::labeled(names::ENGINE_OUTSTANDING, "function", format!("f{f}"));
            reg.gauge_set(us(0), key, depth);
        }
        let report = reg.bottleneck_report(us(100), 2);
        assert_eq!(report.top_tenants.len(), 2);
        assert_eq!(report.top_tenants[0].0, "f1");
        assert_eq!(report.top_tenants[1].0, "f2");
    }

    #[test]
    fn idle_registry_reports_no_saturation() {
        let reg = MetricsRegistry::new();
        let report = reg.bottleneck_report(us(10), 4);
        assert!(report.saturated.is_none());
        assert!(report.stages.is_empty());
        // The renderer copes with an empty report.
        assert!(render_bottleneck(&report).contains("(idle)"));
    }

    #[test]
    fn prometheus_exposition_is_deterministic_and_typed() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(MetricKey::labeled(names::SSD_OPS, "ssd", 1), 7);
        reg.counter_add(MetricKey::labeled(names::SSD_OPS, "ssd", 0), 3);
        reg.gauge_set(us(5), MetricKey::new(names::DMA_INFLIGHT_BYTES), 4096.0);
        reg.annotate(us(1), Some(us(2)), "fault: spike ssd0");
        let text = prometheus(&reg);
        let again = prometheus(&reg);
        assert_eq!(text, again);
        assert!(text.contains("# TYPE bm_ssd_service_ops_total counter"));
        // BTreeMap order: ssd="0" before ssd="1".
        let a = text.find("ssd=\"0\"").unwrap();
        let b = text.find("ssd=\"1\"").unwrap();
        assert!(a < b);
        assert!(text.contains("bm_dma_inflight_bytes 4096"));
        assert!(text.contains("bm_dma_inflight_bytes_peak 4096"));
        assert!(text.contains("# ANNOTATION 1000 2000 fault: spike ssd0"));
    }

    #[test]
    fn csv_lists_every_sample() {
        let mut reg = MetricsRegistry::new();
        let key = MetricKey::labeled(names::BACKEND_INFLIGHT, "ssd", 0);
        reg.sample(us(1), key.clone(), 3.0);
        reg.sample(us(2), key, 5.0);
        let text = csv(&reg);
        assert!(text.starts_with("series,t_ns,value\n"));
        assert!(text.contains("\"bm_backend_sq_inflight{ssd=\"0\"}\",1000,3"));
        assert!(text.contains("\"bm_backend_sq_inflight{ssd=\"0\"}\",2000,5"));
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = MetricsHandle::disabled();
        assert!(!h.is_enabled());
        assert!(h.with(|r| r.counter_add(MetricKey::new("x"), 1)).is_none());
        assert!(h.read(|r| r.sample_ticks()).is_none());
    }

    #[test]
    fn handle_clones_share_the_registry() {
        let h = MetricsHandle::enabled();
        let h2 = h.clone();
        h.with(|r| r.counter_add(MetricKey::new("x"), 1));
        h2.with(|r| r.counter_add(MetricKey::new("x"), 2));
        assert_eq!(h.read(|r| r.counter(&MetricKey::new("x"))), Some(3));
    }

    #[test]
    fn sample_ticks_and_last_sample_track_the_sampler() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.sample_ticks(), 0);
        reg.mark_sample_tick(us(10));
        reg.mark_sample_tick(us(20));
        assert_eq!(reg.sample_ticks(), 2);
        assert_eq!(reg.last_sample(), Some(us(20)));
    }
}
