//! Seeded randomness for device models.
//!
//! Every simulation owns exactly one [`SimRng`] (or deterministically
//! forks per-component streams from it), so a run is fully reproducible
//! from its seed. On top of the raw generator this module provides the
//! sampling shapes used by the storage models: uniform jitter around a
//! mean, exponential inter-arrivals, and log-normal service times (a good
//! fit for flash read latency).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random number generator for one simulation (or one
/// component's stream within it).
///
/// # Examples
///
/// ```
/// use bm_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Forks a new independent stream. The child's sequence is a pure
    /// function of the parent's state and `salt`, so forking is itself
    /// deterministic.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A duration jittered uniformly within `±frac` of `mean`.
    ///
    /// `frac` is clamped to `[0, 1]`. With `frac = 0` this returns `mean`
    /// unchanged.
    pub fn jitter(&mut self, mean: SimDuration, frac: f64) -> SimDuration {
        let frac = frac.clamp(0.0, 1.0);
        if frac == 0.0 {
            return mean;
        }
        let m = mean.as_nanos_f64();
        let lo = m * (1.0 - frac);
        let hi = m * (1.0 + frac);
        SimDuration::from_nanos((lo + (hi - lo) * self.unit()).round() as u64)
    }

    /// An exponentially distributed duration with the given mean
    /// (inter-arrival times of a Poisson process).
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        let u = 1.0 - self.unit(); // avoid ln(0)
        SimDuration::from_nanos((-(u.ln()) * mean.as_nanos_f64()).round() as u64)
    }

    /// A log-normally distributed duration with the given *median* and
    /// shape `sigma` (standard deviation of the underlying normal).
    ///
    /// Flash read service times are well approximated by a log-normal with
    /// a small sigma: most reads cluster at the median with a long but
    /// light right tail.
    pub fn lognormal(&mut self, median: SimDuration, sigma: f64) -> SimDuration {
        let z = self.standard_normal();
        let v = median.as_nanos_f64() * (sigma * z).exp();
        SimDuration::from_nanos(v.round() as u64)
    }

    /// A standard normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.unit();
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Samples an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// A Zipfian-distributed index in `[0, n)` with skew `theta`
    /// (used by the YCSB workload generator).
    ///
    /// Uses the rejection-inversion-free approximate method: draws from
    /// the normalized harmonic CDF computed incrementally. For large `n`
    /// prefer building a [`ZipfTable`] once.
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self)
    }
}

/// Precomputed CDF for Zipfian sampling over `n` items.
///
/// # Examples
///
/// ```
/// use bm_sim::rng::ZipfTable;
/// use bm_sim::SimRng;
/// let table = ZipfTable::new(1000, 0.99);
/// let mut rng = SimRng::seed_from(7);
/// let i = table.sample(&mut rng);
/// assert!(i < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the CDF for `n` items with skew `theta` (`0.99` is the YCSB
    /// default).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of items in the distribution.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples an index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        match self.cdf.binary_search_by(|probe| probe.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = SimRng::seed_from(9).fork(2);
        // Extremely unlikely to collide if the streams are distinct.
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn jitter_within_bounds() {
        let mut rng = SimRng::seed_from(1);
        let mean = SimDuration::from_us(100);
        for _ in 0..1000 {
            let d = rng.jitter(mean, 0.1);
            assert!(d >= SimDuration::from_us(90) && d <= SimDuration::from_us(110));
        }
        assert_eq!(rng.jitter(mean, 0.0), mean);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(2);
        let mean = SimDuration::from_us(50);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_micros_f64()).sum();
        let observed = total / n as f64;
        assert!((observed - 50.0).abs() < 2.0, "observed mean {observed}");
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = SimRng::seed_from(3);
        let median = SimDuration::from_us(70);
        let mut samples: Vec<u64> = (0..10_001)
            .map(|_| rng.lognormal(median, 0.1).as_nanos())
            .collect();
        samples.sort_unstable();
        let observed = samples[samples.len() / 2] as f64 / 1_000.0;
        assert!((observed - 70.0).abs() < 3.0, "observed median {observed}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed_from(4);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac = counts[2] as f64 / 30_000.0;
        assert!((frac - 0.7).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let table = ZipfTable::new(10_000, 0.99);
        let mut rng = SimRng::seed_from(5);
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            if table.sample(&mut rng) < 100 {
                low += 1;
            }
        }
        // With theta=0.99, the first 1% of items draw a large share.
        assert!(low as f64 / n as f64 > 0.3, "low fraction {low}/{n}");
    }

    #[test]
    fn pick_and_below_stay_in_range() {
        let mut rng = SimRng::seed_from(6);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
            assert!(rng.below(5) < 5);
            let r = rng.range(3, 7);
            assert!((3..7).contains(&r));
        }
    }
}
