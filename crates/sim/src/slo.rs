//! Per-tenant SLO engine: declarative objectives, multi-window
//! burn-rate alerting, and deterministic incident reports.
//!
//! The telemetry layer records what happened and the critical-path pass
//! explains per-command blame; this module decides *when to page*.
//! Tenants declare latency or throughput objectives ([`SloSpec`]); the
//! engine consumes every command completion and, on each periodic
//! sampler tick, evaluates the classic SRE multi-window burn rate: an
//! alert fires only when **both** a short and a long window burn error
//! budget faster than `fire_burn`, and clears when the short window
//! drops below `clear_burn`. A progress watchdog raises a [`Stall`]
//! alert when completions stop arriving while commands are
//! outstanding — the alerting analogue of the chaos drain oracle.
//!
//! Everything is driven by sim time and integer completion counts, so
//! the alert sequence is a pure function of `(seed, fault plan,
//! config)`: same run, same alerts, same rendered incident text, every
//! time. There is no wall clock, no randomness, and no allocation on
//! the completion hot path beyond checkpoint bookkeeping.
//!
//! [`render_incident`] correlates the alert log with fault/recovery
//! windows (metric annotations), chaos oracle violations, and blame
//! profiles into one ordered, parseable incident timeline; see the
//! module-level format note on [`parse_incident`].
//!
//! [`Stall`]: AlertKind::Stall

use crate::metrics::Annotation;
use crate::telemetry::critical_path::CriticalPathAnalysis;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// What a tenant is promised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloObjective {
    /// Completions must finish within `threshold`; failures also count
    /// against the error budget.
    Latency {
        /// Per-command latency objective.
        threshold: SimDuration,
    },
    /// The tenant must sustain at least `min_iops` completions per
    /// second over each evaluation window.
    Throughput {
        /// Floor on delivered IOPS.
        min_iops: f64,
    },
}

impl SloObjective {
    fn kind(&self) -> AlertKind {
        match self {
            SloObjective::Latency { .. } => AlertKind::Latency,
            SloObjective::Throughput { .. } => AlertKind::Throughput,
        }
    }
}

/// Alert severity attached to a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a dashboard.
    Warning,
    /// Worth a page.
    Critical,
}

impl Severity {
    /// Stable lowercase name used in rendered alerts.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One declarative objective for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Tenant the objective covers.
    pub tenant: u16,
    /// The promised behaviour.
    pub objective: SloObjective,
    /// Allowed bad fraction (error budget), e.g. `0.01` = 1% of
    /// completions may miss the objective. Clamped away from zero.
    pub budget: f64,
    /// Fast-reacting evaluation window.
    pub short_window: SimDuration,
    /// Slow, sustained-burn evaluation window.
    pub long_window: SimDuration,
    /// Fire when both windows burn at ≥ this multiple of budget.
    pub fire_burn: f64,
    /// Clear when the short window drops below this multiple.
    pub clear_burn: f64,
    /// Severity stamped on alerts from this spec.
    pub severity: Severity,
}

impl SloSpec {
    /// Latency objective with burn-rate defaults: 1% budget, 100µs/1ms
    /// windows, fire at 2× budget, clear at 1×.
    pub fn latency(tenant: u16, threshold: SimDuration) -> Self {
        SloSpec {
            tenant,
            objective: SloObjective::Latency { threshold },
            budget: 0.01,
            short_window: SimDuration::from_us(100),
            long_window: SimDuration::from_ms(1),
            fire_burn: 2.0,
            clear_burn: 1.0,
            severity: Severity::Critical,
        }
    }

    /// Throughput-floor objective with the same window defaults.
    pub fn throughput(tenant: u16, min_iops: f64) -> Self {
        SloSpec {
            tenant,
            objective: SloObjective::Throughput { min_iops },
            budget: 0.25,
            short_window: SimDuration::from_us(100),
            long_window: SimDuration::from_ms(1),
            fire_burn: 2.0,
            clear_burn: 1.0,
            severity: Severity::Warning,
        }
    }

    /// Overrides the error budget (fraction of completions allowed to
    /// miss the objective).
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the evaluation windows.
    pub fn with_windows(mut self, short: SimDuration, long: SimDuration) -> Self {
        self.short_window = short;
        self.long_window = long;
        self
    }

    /// Overrides the fire/clear burn thresholds.
    pub fn with_burn(mut self, fire: f64, clear: f64) -> Self {
        self.fire_burn = fire;
        self.clear_burn = clear;
        self
    }

    /// Overrides the severity.
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }
}

/// The full SLO policy handed to the testbed via
/// `TestbedConfig::with_slo`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloConfig {
    /// Objectives, evaluated in order (deterministic alert sequence).
    pub specs: Vec<SloSpec>,
    /// Progress watchdog: raise a `Stall` alert when no completion has
    /// arrived for this long while commands are outstanding. `None`
    /// disables the watchdog.
    pub stall_after: Option<SimDuration>,
}

impl SloConfig {
    /// An empty policy (no specs, watchdog off).
    pub fn new() -> Self {
        SloConfig::default()
    }

    /// Adds one objective.
    pub fn with_spec(mut self, spec: SloSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Arms the progress watchdog.
    pub fn with_stall_after(mut self, after: SimDuration) -> Self {
        self.stall_after = Some(after);
        self
    }
}

/// What kind of objective an alert concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Latency objective burn.
    Latency,
    /// Throughput-floor burn.
    Throughput,
    /// Progress watchdog: outstanding work but no completions.
    Stall,
}

impl AlertKind {
    /// Stable lowercase name used in rendered alerts.
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::Latency => "latency",
            AlertKind::Throughput => "throughput",
            AlertKind::Stall => "stall",
        }
    }
}

/// Fire/clear edge of an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition began.
    Fire,
    /// Condition ended.
    Clear,
}

impl AlertState {
    /// Stable lowercase name used in rendered alerts.
    pub fn name(self) -> &'static str {
        match self {
            AlertState::Fire => "fire",
            AlertState::Clear => "clear",
        }
    }
}

/// One seed-stable alert edge emitted by [`SloEngine::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Sampler tick that produced the edge.
    pub at: SimTime,
    /// Tenant under the objective; `None` for the global stall
    /// watchdog.
    pub tenant: Option<u16>,
    /// Objective kind.
    pub kind: AlertKind,
    /// Fire or clear.
    pub state: AlertState,
    /// Severity from the spec (`Critical` for stalls).
    pub severity: Severity,
    /// Short-window burn multiple at the edge (for stalls: elapsed
    /// silence as a multiple of the watchdog threshold).
    pub burn: f64,
}

impl Alert {
    /// Canonical one-line rendering, e.g.
    /// `t=150000ns alert fire latency tenant=0 severity=critical burn=4.20`.
    pub fn render(&self) -> String {
        let tenant = match self.tenant {
            Some(t) => t.to_string(),
            None => "-".to_string(),
        };
        format!(
            "t={}ns alert {} {} tenant={} severity={} burn={:.2}",
            self.at.as_nanos(),
            self.state.name(),
            self.kind.name(),
            tenant,
            self.severity.name(),
            self.burn,
        )
    }

    /// Compact label recorded as a metrics-timeline annotation.
    pub fn annotation_label(&self) -> String {
        let tenant = match self.tenant {
            Some(t) => t.to_string(),
            None => "-".to_string(),
        };
        format!(
            "slo:{}:{}:tenant={}:burn={:.2}",
            self.state.name(),
            self.kind.name(),
            tenant,
            self.burn,
        )
    }
}

/// Cumulative counters at a sampler tick: `(at, good, bad)`.
type Checkpoint = (SimTime, u64, u64);

#[derive(Debug, Clone)]
struct SpecState {
    good: u64,
    bad: u64,
    checkpoints: VecDeque<Checkpoint>,
    firing: bool,
}

impl SpecState {
    fn new() -> Self {
        let mut checkpoints = VecDeque::new();
        checkpoints.push_back((SimTime::ZERO, 0, 0));
        SpecState {
            good: 0,
            bad: 0,
            checkpoints,
            firing: false,
        }
    }

    /// Latest checkpoint at least `window` old, if the window is full.
    fn baseline(&self, now: SimTime, window: SimDuration) -> Option<Checkpoint> {
        self.checkpoints
            .iter()
            .rev()
            .find(|(at, _, _)| at.as_nanos() + window.as_nanos() <= now.as_nanos())
            .copied()
    }
}

/// The evaluator. Owned by the testbed world; fed by
/// `observe_completion` on every delivered completion and ticked by
/// `evaluate` from the periodic metrics sampler.
#[derive(Debug, Clone)]
pub struct SloEngine {
    config: SloConfig,
    states: Vec<SpecState>,
    alerts: Vec<Alert>,
    completions_total: u64,
    last_progress: (SimTime, u64),
    stall_firing: bool,
}

impl SloEngine {
    /// Builds the engine for a policy.
    pub fn new(config: SloConfig) -> Self {
        let states = config.specs.iter().map(|_| SpecState::new()).collect();
        SloEngine {
            config,
            states,
            alerts: Vec::new(),
            completions_total: 0,
            last_progress: (SimTime::ZERO, 0),
            stall_firing: false,
        }
    }

    /// The policy under evaluation.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Every alert edge emitted so far, in emission order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Classifies one delivered completion against every matching
    /// spec. `ok=false` completions always count as bad for latency
    /// objectives and never count toward throughput.
    pub fn observe_completion(&mut self, tenant: u16, latency: SimDuration, ok: bool) {
        self.completions_total += 1;
        for (spec, state) in self.config.specs.iter().zip(self.states.iter_mut()) {
            if spec.tenant != tenant {
                continue;
            }
            match spec.objective {
                SloObjective::Latency { threshold } => {
                    if ok && latency <= threshold {
                        state.good += 1;
                    } else {
                        state.bad += 1;
                    }
                }
                SloObjective::Throughput { .. } => {
                    if ok {
                        state.good += 1;
                    }
                }
            }
        }
    }

    /// Burn multiple for one spec over one window, or `None` while the
    /// window has not filled yet.
    fn window_burn(
        spec: &SloSpec,
        state: &SpecState,
        now: SimTime,
        window: SimDuration,
    ) -> Option<f64> {
        let (at, g0, b0) = state.baseline(now, window)?;
        let budget = spec.budget.max(1e-9);
        match spec.objective {
            SloObjective::Latency { .. } => {
                let dbad = state.bad - b0;
                let dtotal = (state.good + state.bad) - (g0 + b0);
                if dtotal == 0 {
                    return Some(0.0);
                }
                Some((dbad as f64 / dtotal as f64) / budget)
            }
            SloObjective::Throughput { min_iops } => {
                let elapsed = now.saturating_since(at).as_secs_f64();
                if elapsed <= 0.0 || min_iops <= 0.0 {
                    return Some(0.0);
                }
                let rate = (state.good - g0) as f64 / elapsed;
                let shortfall = ((min_iops - rate) / min_iops).max(0.0);
                Some(shortfall / budget)
            }
        }
    }

    /// One sampler tick: evaluates every spec's two windows, runs the
    /// stall watchdog, checkpoints counters, and returns (and logs) the
    /// alert edges this tick produced. `outstanding` is the number of
    /// commands currently in flight host-side.
    pub fn evaluate(&mut self, now: SimTime, outstanding: u64) -> Vec<Alert> {
        let mut edges = Vec::new();
        for (spec, state) in self.config.specs.iter().zip(self.states.iter_mut()) {
            let short = Self::window_burn(spec, state, now, spec.short_window);
            let long = Self::window_burn(spec, state, now, spec.long_window);
            if !state.firing {
                if let (Some(s), Some(l)) = (short, long) {
                    if s >= spec.fire_burn && l >= spec.fire_burn {
                        state.firing = true;
                        edges.push(Alert {
                            at: now,
                            tenant: Some(spec.tenant),
                            kind: spec.objective.kind(),
                            state: AlertState::Fire,
                            severity: spec.severity,
                            burn: s,
                        });
                    }
                }
            } else if let Some(s) = short {
                if s < spec.clear_burn {
                    state.firing = false;
                    edges.push(Alert {
                        at: now,
                        tenant: Some(spec.tenant),
                        kind: spec.objective.kind(),
                        state: AlertState::Clear,
                        severity: spec.severity,
                        burn: s,
                    });
                }
            }
            state.checkpoints.push_back((now, state.good, state.bad));
            // Keep exactly one checkpoint older than the long window so
            // baselines stay resolvable without unbounded growth.
            while state.checkpoints.len() >= 2 {
                let second_old = state.checkpoints[1].0.as_nanos() + spec.long_window.as_nanos()
                    <= now.as_nanos();
                if second_old {
                    state.checkpoints.pop_front();
                } else {
                    break;
                }
            }
        }

        // Progress watchdog.
        if self.completions_total > self.last_progress.1 {
            self.last_progress = (now, self.completions_total);
            if self.stall_firing {
                self.stall_firing = false;
                edges.push(Alert {
                    at: now,
                    tenant: None,
                    kind: AlertKind::Stall,
                    state: AlertState::Clear,
                    severity: Severity::Critical,
                    burn: 0.0,
                });
            }
        } else if let Some(after) = self.config.stall_after {
            let silent = now.saturating_since(self.last_progress.0);
            if outstanding > 0 && silent >= after && !self.stall_firing {
                self.stall_firing = true;
                edges.push(Alert {
                    at: now,
                    tenant: None,
                    kind: AlertKind::Stall,
                    state: AlertState::Fire,
                    severity: Severity::Critical,
                    burn: silent.as_nanos_f64()
                        / after.max(SimDuration::from_nanos(1)).as_nanos_f64(),
                });
            }
        }

        self.alerts.extend(edges.iter().cloned());
        edges
    }
}

/// Everything an incident report correlates.
pub struct IncidentInput<'a> {
    /// The alert log (usually [`SloEngine::alerts`]).
    pub alerts: &'a [Alert],
    /// Metrics-timeline annotations (fault/recovery windows; `slo:*`
    /// entries are skipped here because the alert log already carries
    /// them).
    pub annotations: &'a [Annotation],
    /// Optional blame analysis for the "critical path shifted" story.
    pub blame: Option<&'a CriticalPathAnalysis>,
    /// Extra timeline entries (e.g. chaos oracle violations).
    pub extra_events: &'a [(SimTime, String)],
    /// Engine recovery counters for the summary line.
    pub recoveries: u64,
    /// Commands replayed across recoveries.
    pub replayed: u64,
    /// Commands aborted to host on recovery.
    pub aborted_on_recovery: u64,
    /// How many slowest commands to include.
    pub top_k: usize,
}

/// Renders the deterministic incident report: a versioned header, a
/// machine-checkable summary line, one ordered timeline correlating
/// faults + recoveries + alerts + extra events, the per-tenant blame
/// story (including the dominant-stage shift inside fault windows), the
/// top-k critical paths, and an `end` terminator.
pub fn render_incident(input: &IncidentInput<'_>) -> String {
    let mut out = String::new();
    let faults = input
        .annotations
        .iter()
        .filter(|a| a.label.starts_with("fault:"))
        .count();
    let _ = writeln!(out, "bmstore-incident v1");
    let _ = writeln!(
        out,
        "summary alerts={} faults={} recoveries={} replayed={} aborted={}",
        input.alerts.len(),
        faults,
        input.recoveries,
        input.replayed,
        input.aborted_on_recovery,
    );

    let mut timeline: Vec<(u64, String)> = Vec::new();
    for a in input.annotations {
        if a.label.starts_with("slo:") {
            continue;
        }
        let line = match a.end {
            Some(end) => format!(
                "t={}ns {} (until {}ns)",
                a.start.as_nanos(),
                a.label,
                end.as_nanos()
            ),
            None => format!("t={}ns {} (open)", a.start.as_nanos(), a.label),
        };
        timeline.push((a.start.as_nanos(), line));
    }
    for alert in input.alerts {
        timeline.push((alert.at.as_nanos(), alert.render()));
    }
    for (at, text) in input.extra_events {
        timeline.push((at.as_nanos(), format!("t={}ns {}", at.as_nanos(), text)));
    }
    timeline.sort();
    let _ = writeln!(out, "timeline ({} events):", timeline.len());
    for (_, line) in &timeline {
        let _ = writeln!(out, "  {line}");
    }

    if let Some(blame) = input.blame {
        let tenants: Vec<u16> = {
            let mut t: Vec<u16> = blame.profiles.keys().map(|(tenant, _)| *tenant).collect();
            t.dedup();
            t
        };
        let _ = writeln!(out, "blame ({} tenants):", tenants.len());
        for tenant in tenants {
            let profile = blame.tenant_profile(tenant);
            let dominant = profile.dominant().map(|(n, _)| n).unwrap_or("(idle)");
            let _ = writeln!(
                out,
                "  tenant={} n={} mean={}ns p99={}ns dominant={}",
                tenant,
                profile.commands,
                profile.total.mean().as_nanos(),
                profile.total.percentile(0.99).as_nanos(),
                dominant,
            );
            let (inside, outside) = blame.tenant_fault_split(tenant);
            if inside.commands > 0 && outside.commands > 0 {
                let din = inside.dominant().map(|(n, _)| n).unwrap_or("(idle)");
                let dout = outside.dominant().map(|(n, _)| n).unwrap_or("(idle)");
                if din != dout {
                    let _ = writeln!(
                        out,
                        "  tenant={tenant} critical path shifted: {dout} -> {din} during fault windows",
                    );
                }
            }
        }
        let _ = writeln!(out, "top critical paths:");
        for b in blame.top_slowest(input.top_k) {
            let _ = writeln!(
                out,
                "  cmd={} tenant={} op=0x{:02x} total={}ns path: {}",
                b.cmd.0,
                b.tenant,
                b.opcode,
                b.total().as_nanos(),
                b.render_path(),
            );
        }
    }
    let _ = writeln!(out, "end");
    out
}

/// Machine-checkable digest parsed back out of a rendered incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentSummary {
    /// `alerts=` count from the summary line.
    pub alerts: u64,
    /// `faults=` count from the summary line.
    pub faults: u64,
    /// `recoveries=` count from the summary line.
    pub recoveries: u64,
    /// Timeline entry count from the `timeline (N events):` header.
    pub timeline_events: u64,
    /// Alert lines actually present in the timeline.
    pub alert_lines: u64,
}

fn summary_field(line: &str, key: &str) -> Result<u64, String> {
    let needle = format!("{key}=");
    let start = line
        .find(&needle)
        .ok_or_else(|| format!("incident summary missing `{key}=`"))?
        + needle.len();
    let rest = &line[start..];
    let end = rest.find(' ').unwrap_or(rest.len());
    rest[..end]
        .parse::<u64>()
        .map_err(|e| format!("incident summary field `{key}`: {e}"))
}

/// Validates a rendered incident report and extracts its digest.
/// Checks the version header, the `end` terminator, and that the
/// timeline's alert-line count matches the summary's claim — so a
/// truncated or hand-mangled report fails loudly instead of parsing to
/// a rosier story.
pub fn parse_incident(text: &str) -> Result<IncidentSummary, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty incident report")?;
    if header != "bmstore-incident v1" {
        return Err(format!("bad incident header: {header:?}"));
    }
    let summary = lines.next().ok_or("incident report missing summary")?;
    if !summary.starts_with("summary ") {
        return Err(format!("bad incident summary line: {summary:?}"));
    }
    let alerts = summary_field(summary, "alerts")?;
    let faults = summary_field(summary, "faults")?;
    let recoveries = summary_field(summary, "recoveries")?;
    let timeline_header = lines.next().ok_or("incident report missing timeline")?;
    let timeline_events = timeline_header
        .strip_prefix("timeline (")
        .and_then(|r| r.strip_suffix(" events):"))
        .ok_or_else(|| format!("bad timeline header: {timeline_header:?}"))?
        .parse::<u64>()
        .map_err(|e| format!("timeline count: {e}"))?;
    let mut alert_lines = 0u64;
    let mut saw_end = false;
    for line in lines {
        if line == "end" {
            saw_end = true;
        } else if line.starts_with("  t=") && line.contains("ns alert ") {
            alert_lines += 1;
        }
    }
    if !saw_end {
        return Err("incident report missing `end` terminator".to_string());
    }
    if alert_lines != alerts {
        return Err(format!(
            "incident summary claims {alerts} alerts but timeline has {alert_lines}"
        ));
    }
    Ok(IncidentSummary {
        alerts,
        faults,
        recoveries,
        timeline_events,
        alert_lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    fn latency_spec() -> SloSpec {
        SloSpec::latency(0, SimDuration::from_us(50))
            .with_budget(0.01)
            .with_windows(SimDuration::from_us(100), SimDuration::from_us(300))
            .with_burn(2.0, 1.0)
    }

    #[test]
    fn burn_fires_on_both_windows_and_clears_on_short() {
        let mut eng = SloEngine::new(SloConfig::new().with_spec(latency_spec()));
        // Ticks every 100us. First 3 ticks: all good -> no alert.
        for tick in 1..=3u64 {
            for _ in 0..10 {
                eng.observe_completion(0, SimDuration::from_us(10), true);
            }
            assert!(eng.evaluate(t(tick * 100), 0).is_empty());
        }
        // Next 3 ticks: everything misses the objective -> fire once.
        let mut fired = Vec::new();
        for tick in 4..=6u64 {
            for _ in 0..10 {
                eng.observe_completion(0, SimDuration::from_us(500), true);
            }
            fired.extend(eng.evaluate(t(tick * 100), 0));
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].state, AlertState::Fire);
        assert_eq!(fired[0].kind, AlertKind::Latency);
        assert_eq!(fired[0].tenant, Some(0));
        assert!(fired[0].burn >= 2.0);
        // Recovery: good completions drain the short window -> clear.
        let mut cleared = Vec::new();
        for tick in 7..=10u64 {
            for _ in 0..10 {
                eng.observe_completion(0, SimDuration::from_us(10), true);
            }
            cleared.extend(eng.evaluate(t(tick * 100), 0));
        }
        assert_eq!(cleared.len(), 1);
        assert_eq!(cleared[0].state, AlertState::Clear);
        assert_eq!(eng.alerts().len(), 2);
    }

    #[test]
    fn short_spike_does_not_fire_the_long_window() {
        let mut eng = SloEngine::new(SloConfig::new().with_spec(latency_spec()));
        // Long window needs 300us of history; burn only one tick.
        for tick in 1..=3u64 {
            for _ in 0..100 {
                eng.observe_completion(0, SimDuration::from_us(10), true);
            }
            assert!(eng.evaluate(t(tick * 100), 0).is_empty());
        }
        // One bad tick out of a long good history: short window burns
        // hard, long window stays under threshold -> no page.
        for _ in 0..2 {
            eng.observe_completion(0, SimDuration::from_us(500), true);
        }
        for _ in 0..98 {
            eng.observe_completion(0, SimDuration::from_us(10), true);
        }
        let edges = eng.evaluate(t(400), 0);
        assert!(edges.is_empty(), "long window should gate: {edges:?}");
    }

    #[test]
    fn failed_completions_count_against_latency_budget() {
        let mut eng = SloEngine::new(SloConfig::new().with_spec(latency_spec()));
        for tick in 1..=4u64 {
            for _ in 0..10 {
                eng.observe_completion(0, SimDuration::from_us(1), false);
            }
            let edges = eng.evaluate(t(tick * 100), 0);
            if tick >= 3 {
                assert_eq!(edges.len(), if tick == 3 { 1 } else { 0 });
            }
        }
        assert_eq!(eng.alerts()[0].state, AlertState::Fire);
    }

    #[test]
    fn throughput_floor_fires_when_rate_collapses() {
        let spec = SloSpec::throughput(1, 100_000.0)
            .with_budget(0.25)
            .with_windows(SimDuration::from_us(100), SimDuration::from_us(300))
            .with_burn(2.0, 1.0);
        let mut eng = SloEngine::new(SloConfig::new().with_spec(spec));
        // 20 completions / 100us = 200k IOPS: healthy.
        for tick in 1..=3u64 {
            for _ in 0..20 {
                eng.observe_completion(1, SimDuration::from_us(10), true);
            }
            assert!(eng.evaluate(t(tick * 100), 0).is_empty());
        }
        // Rate collapses to zero: shortfall 1.0 / budget 0.25 = 4x.
        let mut edges = Vec::new();
        for tick in 4..=6u64 {
            edges.extend(eng.evaluate(t(tick * 100), 0));
        }
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].kind, AlertKind::Throughput);
        assert_eq!(edges[0].state, AlertState::Fire);
        assert!(edges[0].burn >= 2.0);
    }

    #[test]
    fn stall_watchdog_fires_and_clears() {
        let cfg = SloConfig::new().with_stall_after(SimDuration::from_us(250));
        let mut eng = SloEngine::new(cfg);
        eng.observe_completion(0, SimDuration::from_us(10), true);
        assert!(eng.evaluate(t(100), 5).is_empty());
        // Silence with outstanding work: fires once past the threshold.
        assert!(eng.evaluate(t(200), 5).is_empty());
        let edges = eng.evaluate(t(400), 5);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].kind, AlertKind::Stall);
        assert_eq!(edges[0].state, AlertState::Fire);
        assert_eq!(edges[0].tenant, None);
        // No double-fire while still stalled.
        assert!(eng.evaluate(t(500), 5).is_empty());
        // Progress clears it.
        eng.observe_completion(0, SimDuration::from_us(10), true);
        let edges = eng.evaluate(t(600), 5);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].state, AlertState::Clear);
    }

    #[test]
    fn stall_needs_outstanding_work() {
        let cfg = SloConfig::new().with_stall_after(SimDuration::from_us(100));
        let mut eng = SloEngine::new(cfg);
        assert!(eng.evaluate(t(1000), 0).is_empty(), "idle is not a stall");
    }

    #[test]
    fn identical_inputs_give_identical_alert_logs() {
        let run = || {
            let mut eng = SloEngine::new(
                SloConfig::new()
                    .with_spec(latency_spec())
                    .with_stall_after(SimDuration::from_us(500)),
            );
            for tick in 1..=8u64 {
                for i in 0..10u64 {
                    let lat = if (4..=5).contains(&tick) { 900 } else { 5 + i };
                    eng.observe_completion(0, SimDuration::from_us(lat), true);
                }
                eng.evaluate(t(tick * 100), 3);
            }
            eng.alerts()
                .iter()
                .map(Alert::render)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn checkpoints_stay_bounded() {
        let mut eng = SloEngine::new(SloConfig::new().with_spec(latency_spec()));
        for tick in 1..=1000u64 {
            eng.observe_completion(0, SimDuration::from_us(1), true);
            eng.evaluate(t(tick * 100), 0);
        }
        // long_window = 300us at 100us ticks: one stale + ~3 in-window
        // + the fresh one.
        assert!(eng.states[0].checkpoints.len() <= 6);
    }

    #[test]
    fn incident_renders_and_round_trips() {
        let alerts = vec![
            Alert {
                at: t(150),
                tenant: Some(3),
                kind: AlertKind::Latency,
                state: AlertState::Fire,
                severity: Severity::Critical,
                burn: 4.2,
            },
            Alert {
                at: t(900),
                tenant: Some(3),
                kind: AlertKind::Latency,
                state: AlertState::Clear,
                severity: Severity::Critical,
                burn: 0.1,
            },
        ];
        let annotations = vec![
            Annotation {
                start: t(100),
                end: Some(t(600)),
                label: "fault:ssd-stall".to_string(),
            },
            Annotation {
                start: t(150),
                end: None,
                label: "slo:fire:latency:tenant=3:burn=4.20".to_string(),
            },
        ];
        let extras = vec![(t(700), "oracle: LostCompletions tenant=3".to_string())];
        let text = render_incident(&IncidentInput {
            alerts: &alerts,
            annotations: &annotations,
            blame: None,
            extra_events: &extras,
            recoveries: 1,
            replayed: 4,
            aborted_on_recovery: 0,
            top_k: 3,
        });
        assert!(text.starts_with("bmstore-incident v1\n"));
        assert!(text.contains("t=150000ns alert fire latency tenant=3"));
        assert!(text.contains("fault:ssd-stall (until 600000ns)"));
        assert!(text.contains("oracle: LostCompletions"));
        // slo:* annotations are skipped (alert log already has them).
        assert!(!text.contains("slo:fire"));
        let parsed = parse_incident(&text).unwrap();
        assert_eq!(parsed.alerts, 2);
        assert_eq!(parsed.faults, 1);
        assert_eq!(parsed.recoveries, 1);
        assert_eq!(parsed.timeline_events, 4);
        // Determinism: rendering twice gives the same bytes.
        let again = render_incident(&IncidentInput {
            alerts: &alerts,
            annotations: &annotations,
            blame: None,
            extra_events: &extras,
            recoveries: 1,
            replayed: 4,
            aborted_on_recovery: 0,
            top_k: 3,
        });
        assert_eq!(text, again);
    }

    #[test]
    fn parse_rejects_mangled_reports() {
        assert!(parse_incident("").is_err());
        assert!(parse_incident("bogus\n").is_err());
        let good = render_incident(&IncidentInput {
            alerts: &[],
            annotations: &[],
            blame: None,
            extra_events: &[],
            recoveries: 0,
            replayed: 0,
            aborted_on_recovery: 0,
            top_k: 1,
        });
        assert!(parse_incident(&good).is_ok());
        // Truncation loses the terminator.
        let truncated = good.trim_end_matches("end\n");
        assert!(parse_incident(truncated).is_err());
        // A forged alert count no longer matches the timeline.
        let forged = good.replace("alerts=0", "alerts=7");
        assert!(parse_incident(&forged).is_err());
    }
}
