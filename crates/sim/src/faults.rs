//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] is pure data: a list of [`FaultEvent`]s, each an
//! instant plus a [`FaultKind`], and a seed for the probabilistic kinds.
//! The plan itself performs no injection — the testbed's `World`
//! schedules each event on the simulation clock and interprets the kind
//! against the layer it targets (SSD model, MCTP link, PCIe link,
//! engine).  Because the plan is scheduled like any other event and the
//! probabilistic kinds draw from RNG streams forked from the plan's own
//! seed, two runs with identical configuration and identical plans
//! produce identical traces — and a run with an *empty* plan draws no
//! random numbers and schedules no events, so it is byte-identical to a
//! run of a build that has no fault machinery at all.
//!
//! # Event grammar
//!
//! | kind | layer | effect |
//! |------|-------|--------|
//! | [`FaultKind::SsdLatencySpike`] | SSD | adds `extra` to every completion until `until` |
//! | [`FaultKind::SsdStall`] | SSD | freezes the device pipeline until `until` |
//! | [`FaultKind::SsdDeath`] | SSD | device errors every subsequent I/O (surprise removal) |
//! | [`FaultKind::SsdErrorBurst`] | SSD | each I/O fails with `probability` until `until` |
//! | [`FaultKind::SsdDropCommands`] | SSD | silently swallows the next `count` I/O commands |
//! | [`FaultKind::MctpDrop`] | management link | drops the next `count` MCTP packets |
//! | [`FaultKind::LinkRetrain`] | PCIe link | defers bus crossings (doorbells, DMA, interrupts) until `until` |
//!
//! # Writing a plan
//!
//! ```
//! use bm_sim::faults::{FaultKind, FaultPlan};
//! use bm_sim::{SimDuration, SimTime};
//!
//! let t = |ms| SimTime::ZERO + SimDuration::from_ms(ms);
//! let plan = FaultPlan::new(0x5EED)
//!     .with(t(10), FaultKind::SsdLatencySpike {
//!         ssd: 0,
//!         extra: SimDuration::from_us(200),
//!         until: t(20),
//!     })
//!     .with(t(15), FaultKind::MctpDrop { count: 1 });
//! assert!(!plan.is_empty());
//! assert_eq!(plan.events().len(), 2);
//! ```

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One kind of injectable fault. See the [module docs](self) for the
/// layer each kind targets.
///
/// SSDs are addressed by testbed index (position in the configured SSD
/// list); this keeps `bm-sim` free of device-layer dependencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Every completion from SSD `ssd` takes `extra` longer, for
    /// commands arriving before `until`.
    SsdLatencySpike {
        /// Testbed index of the target SSD.
        ssd: usize,
        /// Additional latency added to each completion.
        extra: SimDuration,
        /// End of the spike window.
        until: SimTime,
    },
    /// SSD `ssd` stops making progress until `until`; commands issued
    /// meanwhile complete only after the stall lifts.
    SsdStall {
        /// Testbed index of the target SSD.
        ssd: usize,
        /// Instant the device thaws.
        until: SimTime,
    },
    /// SSD `ssd` dies permanently (surprise removal): every subsequent
    /// I/O completes quickly with an internal error status. Only a
    /// hardware swap ([hot-plug]) brings the bay back.
    ///
    /// [hot-plug]: ../../bmstore_core/controller/index.html
    SsdDeath {
        /// Testbed index of the target SSD.
        ssd: usize,
    },
    /// Until `until`, each I/O on SSD `ssd` independently fails with
    /// `probability`, sampled from a stream forked from the plan seed.
    SsdErrorBurst {
        /// Testbed index of the target SSD.
        ssd: usize,
        /// Per-command failure probability in `[0, 1]`.
        probability: f64,
        /// End of the burst window.
        until: SimTime,
    },
    /// SSD `ssd` consumes the next `count` I/O submissions without ever
    /// completing them — the stimulus for engine command timeouts.
    SsdDropCommands {
        /// Testbed index of the target SSD.
        ssd: usize,
        /// Number of commands to swallow.
        count: u32,
    },
    /// The management (MCTP-over-SMBus/PCIe-VDM) link drops the next
    /// `count` packets; the reassembler sees the gap and the sender
    /// must retransmit.
    MctpDrop {
        /// Number of packets to drop.
        count: u32,
    },
    /// PCIe link retrain: bus crossings (doorbell MMIO, DMA forwards,
    /// interrupts) that would occur before `until` are deferred to
    /// `until`.
    LinkRetrain {
        /// Instant the link is back at full width/speed.
        until: SimTime,
    },
}

/// A fault scheduled at an absolute instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault is injected.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, plus the seed feeding the
/// probabilistic kinds.
///
/// An empty (default) plan is inert: interpreters must schedule
/// nothing and draw nothing from any RNG, so the no-fault path is
/// byte-for-byte identical to a fault-free build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: u64,
}

impl FaultPlan {
    /// Creates an empty plan whose probabilistic faults will draw from
    /// streams forked from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            events: Vec::new(),
            seed,
        }
    }

    /// Appends an event, builder-style.
    #[must_use]
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Appends an event.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// The scheduled events, in insertion order. Interpreters schedule
    /// each on the simulation clock; ties are broken by insertion
    /// order, like every other simulation event.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan schedules nothing — the zero-cost path.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The plan's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A deterministic RNG for the probabilistic behaviour of the fault
    /// targeting SSD `ssd`, independent of every other stream in the
    /// simulation (forked from the plan seed, not the testbed seed).
    pub fn rng_for_ssd(&self, ssd: usize) -> SimRng {
        SimRng::seed_from(
            self.seed ^ 0xFA17_0000 ^ (ssd as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.events().is_empty());
    }

    #[test]
    fn builder_preserves_insertion_order() {
        let t = |ms| SimTime::ZERO + SimDuration::from_ms(ms);
        let plan = FaultPlan::new(1)
            .with(t(5), FaultKind::MctpDrop { count: 2 })
            .with(t(1), FaultKind::SsdDeath { ssd: 0 });
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.events()[0].at, t(5));
        assert_eq!(plan.events()[1].kind, FaultKind::SsdDeath { ssd: 0 });
    }

    #[test]
    fn per_ssd_rng_is_deterministic_and_distinct() {
        let plan = FaultPlan::new(42);
        let mut a1 = plan.rng_for_ssd(0);
        let mut a2 = plan.rng_for_ssd(0);
        let mut b = plan.rng_for_ssd(1);
        let x = a1.next_u64();
        assert_eq!(x, a2.next_u64(), "same ssd, same stream");
        assert_ne!(x, b.next_u64(), "different ssd, different stream");
    }
}
