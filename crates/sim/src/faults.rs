//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] is pure data: a list of [`FaultEvent`]s, each an
//! instant plus a [`FaultKind`], and a seed for the probabilistic kinds.
//! The plan itself performs no injection — the testbed's `World`
//! schedules each event on the simulation clock and interprets the kind
//! against the layer it targets (SSD model, MCTP link, PCIe link,
//! engine).  Because the plan is scheduled like any other event and the
//! probabilistic kinds draw from RNG streams forked from the plan's own
//! seed, two runs with identical configuration and identical plans
//! produce identical traces — and a run with an *empty* plan draws no
//! random numbers and schedules no events, so it is byte-identical to a
//! run of a build that has no fault machinery at all.
//!
//! # Event grammar
//!
//! | kind | layer | effect |
//! |------|-------|--------|
//! | [`FaultKind::SsdLatencySpike`] | SSD | adds `extra` to every completion until `until` |
//! | [`FaultKind::SsdStall`] | SSD | freezes the device pipeline until `until` |
//! | [`FaultKind::SsdDeath`] | SSD | device errors every subsequent I/O (surprise removal) |
//! | [`FaultKind::SsdErrorBurst`] | SSD | each I/O fails with `probability` until `until` |
//! | [`FaultKind::SsdDropCommands`] | SSD | silently swallows the next `count` I/O commands |
//! | [`FaultKind::MctpDrop`] | management link | drops the next `count` MCTP packets |
//! | [`FaultKind::LinkRetrain`] | PCIe link | defers bus crossings (doorbells, DMA, interrupts) until `until` |
//! | [`FaultKind::EngineCrash`] | engine | firmware dies, cold-restarts after `restart_after`, losing in-flight pipeline state |
//! | [`FaultKind::PowerLoss`] | host + card | full reset; up to `torn_writes` unflushed writes tear at a sector boundary |
//! | [`FaultKind::SsdReinsert`] | SSD | surprise re-attach of a dead SSD (rings reset, commands replayable) |
//!
//! # Writing a plan
//!
//! ```
//! use bm_sim::faults::{FaultKind, FaultPlan};
//! use bm_sim::{SimDuration, SimTime};
//!
//! let t = |ms| SimTime::ZERO + SimDuration::from_ms(ms);
//! let plan = FaultPlan::new(0x5EED)
//!     .with(t(10), FaultKind::SsdLatencySpike {
//!         ssd: 0,
//!         extra: SimDuration::from_us(200),
//!         until: t(20),
//!     })
//!     .with(t(15), FaultKind::MctpDrop { count: 1 });
//! assert!(!plan.is_empty());
//! assert_eq!(plan.events().len(), 2);
//! ```
//!
//! # Repro artifacts
//!
//! Plans round-trip through a dependency-free line-oriented text format
//! ([`FaultPlan::to_text`] / [`FaultPlan::from_text`]) so a failing
//! chaos campaign can emit a repro file that replays bit-identically.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One kind of injectable fault. See the [module docs](self) for the
/// layer each kind targets.
///
/// SSDs are addressed by testbed index (position in the configured SSD
/// list); this keeps `bm-sim` free of device-layer dependencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Every completion from SSD `ssd` takes `extra` longer, for
    /// commands arriving before `until`.
    SsdLatencySpike {
        /// Testbed index of the target SSD.
        ssd: usize,
        /// Additional latency added to each completion.
        extra: SimDuration,
        /// End of the spike window.
        until: SimTime,
    },
    /// SSD `ssd` stops making progress until `until`; commands issued
    /// meanwhile complete only after the stall lifts.
    SsdStall {
        /// Testbed index of the target SSD.
        ssd: usize,
        /// Instant the device thaws.
        until: SimTime,
    },
    /// SSD `ssd` dies permanently (surprise removal): every subsequent
    /// I/O completes quickly with an internal error status. Only a
    /// hardware swap ([hot-plug]) or a surprise re-attach
    /// ([`FaultKind::SsdReinsert`]) brings the bay back.
    ///
    /// [hot-plug]: ../../bmstore_core/controller/index.html
    SsdDeath {
        /// Testbed index of the target SSD.
        ssd: usize,
    },
    /// Until `until`, each I/O on SSD `ssd` independently fails with
    /// `probability`, sampled from a stream forked from the plan seed.
    SsdErrorBurst {
        /// Testbed index of the target SSD.
        ssd: usize,
        /// Per-command failure probability in `[0, 1]`.
        probability: f64,
        /// End of the burst window.
        until: SimTime,
    },
    /// SSD `ssd` consumes the next `count` I/O submissions without ever
    /// completing them — the stimulus for engine command timeouts.
    SsdDropCommands {
        /// Testbed index of the target SSD.
        ssd: usize,
        /// Number of commands to swallow.
        count: u32,
    },
    /// The management (MCTP-over-SMBus/PCIe-VDM) link drops the next
    /// `count` packets; the reassembler sees the gap and the sender
    /// must retransmit.
    MctpDrop {
        /// Number of packets to drop.
        count: u32,
    },
    /// PCIe link retrain: bus crossings (doorbell MMIO, DMA forwards,
    /// interrupts) that would occur before `until` are deferred to
    /// `until`.
    LinkRetrain {
        /// Instant the link is back at full width/speed.
        until: SimTime,
    },
    /// The BMS-Engine firmware crashes, losing all volatile in-flight
    /// pipeline state, and cold-restarts `restart_after` later. The
    /// journal in the persistent-model region drives replay-or-abort
    /// on restart per the engine's `FailPolicy`.
    EngineCrash {
        /// Delay between the crash and the firmware coming back up.
        restart_after: SimDuration,
    },
    /// Host + card power loss: the engine crashes as in
    /// [`FaultKind::EngineCrash`], every SSD's rings reset, and up to
    /// `torn_writes` of the most recent *unacknowledged* DMA writes may
    /// be torn at a 512-byte sector boundary.
    PowerLoss {
        /// Maximum number of in-flight writes torn by the outage.
        torn_writes: u32,
    },
    /// Surprise re-attach of a dead SSD `ssd` in the same bay: the
    /// device comes back alive with rings reset; the engine reclaims
    /// zombie slots and (under `QuiesceReplay`) replays buffered I/O.
    SsdReinsert {
        /// Testbed index of the target SSD.
        ssd: usize,
    },
}

/// A fault scheduled at an absolute instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault is injected.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, plus the seed feeding the
/// probabilistic kinds.
///
/// An empty (default) plan is inert: interpreters must schedule
/// nothing and draw nothing from any RNG, so the no-fault path is
/// byte-for-byte identical to a fault-free build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: u64,
}

impl FaultPlan {
    /// Creates an empty plan whose probabilistic faults will draw from
    /// streams forked from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            events: Vec::new(),
            seed,
        }
    }

    /// Inserts an event, builder-style.
    #[must_use]
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Inserts an event in stable `(time, insertion order)` position:
    /// the list stays sorted by time, and equal-time events keep the
    /// order they were pushed in. Two plans holding the same events end
    /// up identical regardless of construction order (up to the
    /// relative order of exactly-equal-time events).
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind });
    }

    /// The scheduled events, sorted by time; equal-time events appear
    /// in insertion order. Interpreters schedule each on the simulation
    /// clock; equal-time ties are then broken by scheduling order, like
    /// every other simulation event.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan schedules nothing — the zero-cost path.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The plan's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A deterministic RNG for the probabilistic behaviour of the fault
    /// targeting SSD `ssd`, independent of every other stream in the
    /// simulation (forked from the plan seed, not the testbed seed).
    pub fn rng_for_ssd(&self, ssd: usize) -> SimRng {
        SimRng::seed_from(
            self.seed ^ 0xFA17_0000 ^ (ssd as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    /// Serializes the plan to the line-oriented repro text format:
    ///
    /// ```text
    /// bmstore-fault-plan v1
    /// seed 94
    /// at 10000000 ssd-latency-spike ssd=0 extra=200000 until=20000000
    /// at 15000000 mctp-drop count=1
    /// ```
    ///
    /// Times and durations are nanoseconds; `probability` uses Rust's
    /// `{:?}` float rendering, which round-trips exactly. The format is
    /// dependency-free on purpose: chaos repro artifacts must stay
    /// readable and replayable with nothing but this crate.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Infallible writes to a String; ignore the Result without
        // unwrap so the panic-path lint stays clean.
        let _ = writeln!(out, "bmstore-fault-plan v1");
        let _ = writeln!(out, "seed {}", self.seed);
        for e in &self.events {
            let _ = write!(out, "at {} ", e.at.as_nanos());
            let _ = match e.kind {
                FaultKind::SsdLatencySpike { ssd, extra, until } => writeln!(
                    out,
                    "ssd-latency-spike ssd={} extra={} until={}",
                    ssd,
                    extra.as_nanos(),
                    until.as_nanos()
                ),
                FaultKind::SsdStall { ssd, until } => {
                    writeln!(out, "ssd-stall ssd={} until={}", ssd, until.as_nanos())
                }
                FaultKind::SsdDeath { ssd } => writeln!(out, "ssd-death ssd={ssd}"),
                FaultKind::SsdErrorBurst {
                    ssd,
                    probability,
                    until,
                } => writeln!(
                    out,
                    "ssd-error-burst ssd={} probability={:?} until={}",
                    ssd,
                    probability,
                    until.as_nanos()
                ),
                FaultKind::SsdDropCommands { ssd, count } => {
                    writeln!(out, "ssd-drop-commands ssd={ssd} count={count}")
                }
                FaultKind::MctpDrop { count } => writeln!(out, "mctp-drop count={count}"),
                FaultKind::LinkRetrain { until } => {
                    writeln!(out, "link-retrain until={}", until.as_nanos())
                }
                FaultKind::EngineCrash { restart_after } => writeln!(
                    out,
                    "engine-crash restart_after={}",
                    restart_after.as_nanos()
                ),
                FaultKind::PowerLoss { torn_writes } => {
                    writeln!(out, "power-loss torn_writes={torn_writes}")
                }
                FaultKind::SsdReinsert { ssd } => writeln!(out, "ssd-reinsert ssd={ssd}"),
            };
        }
        out
    }

    /// Parses the text format produced by [`Self::to_text`]. Blank
    /// lines and `#` comment lines are skipped. Returns a description
    /// of the first malformed line on error.
    pub fn from_text(text: &str) -> Result<FaultPlan, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some("bmstore-fault-plan v1") => {}
            other => {
                return Err(format!(
                    "bad header: expected `bmstore-fault-plan v1`, got {other:?}"
                ))
            }
        }
        let seed_line = lines.next().ok_or("missing `seed` line")?;
        let seed = seed_line
            .strip_prefix("seed ")
            .ok_or_else(|| format!("bad seed line: {seed_line:?}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad seed value in {seed_line:?}: {e}"))?;
        let mut plan = FaultPlan::new(seed);
        for line in lines {
            let rest = line
                .strip_prefix("at ")
                .ok_or_else(|| format!("bad event line (no `at`): {line:?}"))?;
            let mut words = rest.split_ascii_whitespace();
            let at_nanos = words
                .next()
                .ok_or_else(|| format!("bad event line (no instant): {line:?}"))?
                .parse::<u64>()
                .map_err(|e| format!("bad instant in {line:?}: {e}"))?;
            let name = words
                .next()
                .ok_or_else(|| format!("bad event line (no kind): {line:?}"))?;
            let fields = Fields::parse(words, line)?;
            let kind = FaultKind::from_name_and_fields(name, &fields, line)?;
            plan.push(SimTime::from_nanos(at_nanos), kind);
        }
        Ok(plan)
    }
}

/// Parsed `key=value` pairs of one event line.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    line: &'a str,
}

impl<'a> Fields<'a> {
    fn parse(words: impl Iterator<Item = &'a str>, line: &'a str) -> Result<Fields<'a>, String> {
        let mut pairs = Vec::new();
        for w in words {
            let (k, v) = w
                .split_once('=')
                .ok_or_else(|| format!("bad field {w:?} (expected key=value) in {line:?}"))?;
            pairs.push((k, v));
        }
        Ok(Fields { pairs, line })
    }

    fn raw(&self, key: &str) -> Result<&'a str, String> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("missing field `{key}` in {:?}", self.line))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.raw(key)?
            .parse::<u64>()
            .map_err(|e| format!("bad `{key}` in {:?}: {e}", self.line))
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        self.raw(key)?
            .parse::<usize>()
            .map_err(|e| format!("bad `{key}` in {:?}: {e}", self.line))
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        self.raw(key)?
            .parse::<u32>()
            .map_err(|e| format!("bad `{key}` in {:?}: {e}", self.line))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.raw(key)?
            .parse::<f64>()
            .map_err(|e| format!("bad `{key}` in {:?}: {e}", self.line))
    }

    fn time(&self, key: &str) -> Result<SimTime, String> {
        Ok(SimTime::from_nanos(self.u64(key)?))
    }

    fn duration(&self, key: &str) -> Result<SimDuration, String> {
        Ok(SimDuration::from_nanos(self.u64(key)?))
    }
}

impl FaultKind {
    fn from_name_and_fields(name: &str, f: &Fields<'_>, line: &str) -> Result<FaultKind, String> {
        Ok(match name {
            "ssd-latency-spike" => FaultKind::SsdLatencySpike {
                ssd: f.usize("ssd")?,
                extra: f.duration("extra")?,
                until: f.time("until")?,
            },
            "ssd-stall" => FaultKind::SsdStall {
                ssd: f.usize("ssd")?,
                until: f.time("until")?,
            },
            "ssd-death" => FaultKind::SsdDeath {
                ssd: f.usize("ssd")?,
            },
            "ssd-error-burst" => FaultKind::SsdErrorBurst {
                ssd: f.usize("ssd")?,
                probability: f.f64("probability")?,
                until: f.time("until")?,
            },
            "ssd-drop-commands" => FaultKind::SsdDropCommands {
                ssd: f.usize("ssd")?,
                count: f.u32("count")?,
            },
            "mctp-drop" => FaultKind::MctpDrop {
                count: f.u32("count")?,
            },
            "link-retrain" => FaultKind::LinkRetrain {
                until: f.time("until")?,
            },
            "engine-crash" => FaultKind::EngineCrash {
                restart_after: f.duration("restart_after")?,
            },
            "power-loss" => FaultKind::PowerLoss {
                torn_writes: f.u32("torn_writes")?,
            },
            "ssd-reinsert" => FaultKind::SsdReinsert {
                ssd: f.usize("ssd")?,
            },
            other => return Err(format!("unknown fault kind {other:?} in {line:?}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.events().is_empty());
    }

    #[test]
    fn push_keeps_time_sorted_order() {
        let t = |ms| SimTime::ZERO + SimDuration::from_ms(ms);
        let plan = FaultPlan::new(1)
            .with(t(5), FaultKind::MctpDrop { count: 2 })
            .with(t(1), FaultKind::SsdDeath { ssd: 0 });
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.events()[0].at, t(1));
        assert_eq!(plan.events()[0].kind, FaultKind::SsdDeath { ssd: 0 });
        assert_eq!(plan.events()[1].at, t(5));
    }

    #[test]
    fn construction_order_does_not_matter() {
        let t = |ms| SimTime::ZERO + SimDuration::from_ms(ms);
        let evs = [
            (t(9), FaultKind::MctpDrop { count: 1 }),
            (t(2), FaultKind::SsdDeath { ssd: 1 }),
            (
                t(2),
                FaultKind::SsdStall {
                    ssd: 0,
                    until: t(4),
                },
            ),
            (t(7), FaultKind::LinkRetrain { until: t(8) }),
        ];
        let forward = evs
            .iter()
            .fold(FaultPlan::new(7), |p, &(at, k)| p.with(at, k));
        // Reversed construction, except the equal-time pair keeps its
        // relative order (insertion order is part of the contract).
        let reorder = [evs[3], evs[1], evs[2], evs[0]];
        let backward = reorder
            .iter()
            .fold(FaultPlan::new(7), |p, &(at, k)| p.with(at, k));
        assert_eq!(forward, backward);
        assert!(forward.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn equal_time_events_keep_insertion_order() {
        let t = |ms| SimTime::ZERO + SimDuration::from_ms(ms);
        let plan = FaultPlan::new(3)
            .with(t(2), FaultKind::MctpDrop { count: 1 })
            .with(t(2), FaultKind::MctpDrop { count: 2 })
            .with(t(2), FaultKind::MctpDrop { count: 3 });
        let counts: Vec<u32> = plan
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::MctpDrop { count } => count,
                _ => 0,
            })
            .collect();
        assert_eq!(counts, [1, 2, 3]);
    }

    #[test]
    fn per_ssd_rng_is_deterministic_and_distinct() {
        let plan = FaultPlan::new(42);
        let mut a1 = plan.rng_for_ssd(0);
        let mut a2 = plan.rng_for_ssd(0);
        let mut b = plan.rng_for_ssd(1);
        let x = a1.next_u64();
        assert_eq!(x, a2.next_u64(), "same ssd, same stream");
        assert_ne!(x, b.next_u64(), "different ssd, different stream");
    }

    #[test]
    fn text_round_trips_every_kind() {
        let t = |us| SimTime::ZERO + SimDuration::from_us(us);
        let plan = FaultPlan::new(0xC4A0_5EED)
            .with(
                t(10),
                FaultKind::SsdLatencySpike {
                    ssd: 2,
                    extra: SimDuration::from_us(150),
                    until: t(90),
                },
            )
            .with(
                t(20),
                FaultKind::SsdStall {
                    ssd: 0,
                    until: t(44),
                },
            )
            .with(t(30), FaultKind::SsdDeath { ssd: 3 })
            .with(
                t(40),
                FaultKind::SsdErrorBurst {
                    ssd: 1,
                    probability: 0.137,
                    until: t(88),
                },
            )
            .with(t(50), FaultKind::SsdDropCommands { ssd: 0, count: 9 })
            .with(t(60), FaultKind::MctpDrop { count: 4 })
            .with(t(70), FaultKind::LinkRetrain { until: t(95) })
            .with(
                t(80),
                FaultKind::EngineCrash {
                    restart_after: SimDuration::from_us(500),
                },
            )
            .with(t(85), FaultKind::PowerLoss { torn_writes: 2 })
            .with(t(92), FaultKind::SsdReinsert { ssd: 3 });
        let text = plan.to_text();
        let parsed = FaultPlan::from_text(&text).expect("round trip parses");
        assert_eq!(parsed, plan);
        // And serializing again is a fixpoint.
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(FaultPlan::from_text("").is_err());
        assert!(FaultPlan::from_text("bmstore-fault-plan v1\n").is_err());
        assert!(FaultPlan::from_text("bmstore-fault-plan v1\nseed x\n").is_err());
        let bad_kind = "bmstore-fault-plan v1\nseed 1\nat 5 not-a-kind\n";
        assert!(FaultPlan::from_text(bad_kind).is_err());
        let missing_field = "bmstore-fault-plan v1\nseed 1\nat 5 mctp-drop\n";
        assert!(FaultPlan::from_text(missing_field).is_err());
    }

    #[test]
    fn from_text_skips_comments_and_blank_lines() {
        let text = "# repro artifact\nbmstore-fault-plan v1\n\nseed 5\n# one event\nat 100 mctp-drop count=1\n";
        let plan = FaultPlan::from_text(text).expect("parses with comments");
        assert_eq!(plan.seed(), 5);
        assert_eq!(plan.events().len(), 1);
    }
}
