//! # bm-sim — deterministic discrete-event simulation engine
//!
//! Foundation substrate for the BM-Store reproduction. Provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`Simulation`] — an event loop over a user-supplied *world* type,
//!   with events ordered by `(time, sequence)` so that runs are fully
//!   deterministic,
//! * [`rng::SimRng`] — a seeded random number generator with the sampling
//!   helpers the device models need,
//! * [`stats`] — latency histograms with percentiles, counters and
//!   time-series recorders used by the benchmark harness,
//! * [`resource`] — reusable queueing primitives (busy servers, token
//!   buckets, shared bandwidth links) from which the device performance
//!   models are composed,
//! * [`faults`] — a deterministic, seeded fault-event vocabulary
//!   ([`faults::FaultPlan`]) interpreted by the testbed so any scheme
//!   can run under SSD, MCTP and PCIe-link misbehaviour,
//! * [`telemetry`] — a span/event recorder keyed by a [`telemetry::CmdId`]
//!   correlation ID, with per-(tenant, function, opcode, stage) latency
//!   aggregation and Chrome-trace/JSONL exporters,
//! * [`metrics`] — a deterministic counter/gauge/time-series registry
//!   sampled by a periodic simulator event, with a Little's-law
//!   bottleneck report and Prometheus/CSV exporters,
//! * [`telemetry::critical_path`] — per-command blame attribution
//!   (queue-wait vs service vs retry vs crash-recovery, per stage)
//!   aggregated into per-`(tenant, opcode)` blame profiles,
//! * [`slo`] — a per-tenant SLO engine with multi-window burn-rate
//!   alerting, a progress-stall watchdog, and deterministic incident
//!   reports correlating alerts, fault windows and blame profiles.
//!
//! # Examples
//!
//! ```
//! use bm_sim::{Simulation, SimTime, SimDuration};
//!
//! struct World { ticks: u32 }
//!
//! let mut sim = Simulation::new(World { ticks: 0 });
//! sim.schedule_in(SimDuration::from_us(5), |w: &mut World, _sched| {
//!     w.ticks += 1;
//! });
//! sim.run_until_idle();
//! assert_eq!(sim.world().ticks, 1);
//! assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_us(5));
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod engine;
pub mod faults;
pub mod metrics;
pub mod resource;
pub mod rng;
pub mod slo;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use engine::{SchedulePastError, Scheduler, Simulation};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use metrics::MetricsHandle;
pub use rng::SimRng;
pub use slo::{Alert, SloConfig, SloEngine, SloSpec};
pub use telemetry::{CmdId, TelemetryHandle};
pub use time::{SimDuration, SimTime};
