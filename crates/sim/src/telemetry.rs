//! End-to-end command telemetry: spans, events, aggregation, export.
//!
//! The paper's BMS-Controller treats I/O monitoring as a first-class
//! subsystem (§IV-D): the engine latches status into registers and the
//! controller serves them out-of-band. This module is the in-simulation
//! half of that story — a cheap, deterministic span/event recorder that
//! lets any pipeline layer attribute latency to a stage without touching
//! the data path's timing:
//!
//! * every command gets a [`CmdId`] correlation ID at submission,
//! * each layer records **one-shot spans** (`start`/`end` both known at
//!   record time — sim time is exact, so nothing needs an open-span map),
//! * faults and retries attach to the owning command as instant events,
//! * spans aggregate into per-`(tenant, function, opcode, stage)`
//!   [`LatencyHistogram`]s for roll-up reporting,
//! * the raw stream exports as Chrome `trace_event` JSON or JSONL.
//!
//! Determinism: the recorder only ever *reads* sim time handed to it by
//! the caller; it never schedules events, draws randomness, or consults
//! wall-clock time. With the [`TelemetryHandle`] disabled every call is
//! a no-op, so enabling telemetry cannot perturb event ordering.

pub mod critical_path;

use crate::stats::LatencyHistogram;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// Correlation ID assigned to each command at submission; threaded
/// through every pipeline layer so spans from different crates join
/// into one tree. `CmdId(0)` is reserved for "no command" (global
/// events such as fault injections).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CmdId(pub u64);

impl CmdId {
    /// The reserved "not attached to any command" ID.
    pub const NONE: CmdId = CmdId(0);

    /// Whether this is a real per-command ID.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for CmdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cmd{}", self.0)
    }
}

/// Pipeline stages a span can cover. Ordered roughly front-to-back;
/// the order index is used for deterministic sorting and display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TelemetryStage {
    /// Root span: client submission → completion delivered to client.
    Command,
    /// Host-side: SQE pushed → doorbell reaches the device.
    Submit,
    /// Engine: doorbell observed → SQE fetched over PCIe.
    Fetch,
    /// Engine: LBA mapping + command rewrite pipeline.
    Translate,
    /// Engine: command parked in the QoS deferral queue.
    Qos,
    /// Engine: forwarded to the back-end → back-end completion seen
    /// (one span per forwarding attempt; retries yield several).
    Dma,
    /// SSD-internal service time (inside the Dma window).
    Backend,
    /// Engine: CQE forwarded to the host + interrupt.
    Completion,
}

impl TelemetryStage {
    /// All stages, in pipeline order.
    pub const ALL: [TelemetryStage; 8] = [
        TelemetryStage::Command,
        TelemetryStage::Submit,
        TelemetryStage::Fetch,
        TelemetryStage::Translate,
        TelemetryStage::Qos,
        TelemetryStage::Dma,
        TelemetryStage::Backend,
        TelemetryStage::Completion,
    ];

    /// Short display name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            TelemetryStage::Command => "cmd",
            TelemetryStage::Submit => "submit",
            TelemetryStage::Fetch => "fetch",
            TelemetryStage::Translate => "translate",
            TelemetryStage::Qos => "qos",
            TelemetryStage::Dma => "dma",
            TelemetryStage::Backend => "backend",
            TelemetryStage::Completion => "completion",
        }
    }
}

/// What a telemetry event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryEventKind {
    /// A stage began.
    SpanBegin { stage: TelemetryStage },
    /// A stage ended; `ok` is false when it ended in error/abort/timeout.
    SpanEnd { stage: TelemetryStage, ok: bool },
    /// A retry attempt was scheduled for the owning command.
    Retry { attempt: u32 },
    /// A labelled instant (fault injected, abort, quiesce, ...).
    Mark { label: &'static str },
}

/// One entry in the telemetry stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Sim time of the event.
    pub at: SimTime,
    /// Owning command ([`CmdId::NONE`] for global events).
    pub cmd: CmdId,
    /// Tenant (device index on the host side, function index on the
    /// engine side — 1:1 for BM-Store).
    pub tenant: u16,
    /// NVMe opcode byte of the owning command (0 for global events).
    pub opcode: u8,
    /// Payload.
    pub kind: TelemetryEventKind,
}

/// Aggregation key: one latency histogram per distinct value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggKey {
    /// Tenant index.
    pub tenant: u16,
    /// Engine function index (mirrors tenant for BM-Store).
    pub function: u8,
    /// NVMe opcode byte.
    pub opcode: u8,
    /// Pipeline stage the histogram covers.
    pub stage: TelemetryStage,
}

/// A reconstructed span: one stage's `[start, end)` window for a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Owning command.
    pub cmd: CmdId,
    /// Tenant index.
    pub tenant: u16,
    /// NVMe opcode byte.
    pub opcode: u8,
    /// Stage covered.
    pub stage: TelemetryStage,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
    /// Whether the stage completed successfully.
    pub ok: bool,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// In-flight root-span binding for one `(tenant, cid)` slot.
#[derive(Debug, Clone, Copy)]
struct OpenCmd {
    cmd: CmdId,
    opcode: u8,
    started: SimTime,
}

/// The recorder: a bounded ring of [`TelemetryEvent`]s plus streaming
/// per-key latency aggregation. Owns [`CmdId`] allocation so IDs are
/// unique across the whole run.
#[derive(Debug)]
pub struct TelemetryRecorder {
    capacity: usize,
    ring: VecDeque<TelemetryEvent>,
    dropped: u64,
    next_cmd: u64,
    /// `(tenant, host cid)` → open root span. NVMe guarantees a cid is
    /// not reused while outstanding, so this binding is unambiguous.
    open: BTreeMap<(u16, u16), OpenCmd>,
    agg: BTreeMap<AggKey, LatencyHistogram>,
}

impl TelemetryRecorder {
    /// Default ring capacity: enough for ~8k commands' full span trees.
    pub const DEFAULT_CAPACITY: usize = 1 << 17;

    /// Creates a recorder holding at most `capacity` events; older
    /// events are evicted (and counted in [`dropped`](Self::dropped)).
    pub fn new(capacity: usize) -> Self {
        TelemetryRecorder {
            capacity: capacity.max(2),
            ring: VecDeque::new(),
            dropped: 0,
            next_cmd: 0,
            open: BTreeMap::new(),
            agg: BTreeMap::new(),
        }
    }

    fn push(&mut self, ev: TelemetryEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Opens the root span for a newly submitted command and returns its
    /// fresh [`CmdId`].
    pub fn begin_command(&mut self, now: SimTime, tenant: u16, cid: u16, opcode: u8) -> CmdId {
        self.next_cmd += 1;
        let cmd = CmdId(self.next_cmd);
        self.open.insert(
            (tenant, cid),
            OpenCmd {
                cmd,
                opcode,
                started: now,
            },
        );
        self.push(TelemetryEvent {
            at: now,
            cmd,
            tenant,
            opcode,
            kind: TelemetryEventKind::SpanBegin {
                stage: TelemetryStage::Command,
            },
        });
        cmd
    }

    /// Looks up the open command bound to `(tenant, cid)`.
    pub fn lookup(&self, tenant: u16, cid: u16) -> Option<(CmdId, u8)> {
        self.open.get(&(tenant, cid)).map(|o| (o.cmd, o.opcode))
    }

    /// Closes the root span when the completion reaches the client.
    /// Aggregates end-to-end latency under [`TelemetryStage::Command`].
    pub fn end_command(&mut self, now: SimTime, tenant: u16, cid: u16, ok: bool) -> Option<CmdId> {
        let open = self.open.remove(&(tenant, cid))?;
        self.push(TelemetryEvent {
            at: now,
            cmd: open.cmd,
            tenant,
            opcode: open.opcode,
            kind: TelemetryEventKind::SpanEnd {
                stage: TelemetryStage::Command,
                ok,
            },
        });
        self.aggregate(
            tenant,
            tenant as u8,
            open.opcode,
            TelemetryStage::Command,
            now.saturating_since(open.started),
        );
        Some(open.cmd)
    }

    /// Records a completed stage span in one shot (both endpoints are
    /// known exactly in sim time when the layer observes them).
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        cmd: CmdId,
        tenant: u16,
        function: u8,
        opcode: u8,
        stage: TelemetryStage,
        start: SimTime,
        end: SimTime,
        ok: bool,
    ) {
        self.push(TelemetryEvent {
            at: start,
            cmd,
            tenant,
            opcode,
            kind: TelemetryEventKind::SpanBegin { stage },
        });
        self.push(TelemetryEvent {
            at: end,
            cmd,
            tenant,
            opcode,
            kind: TelemetryEventKind::SpanEnd { stage, ok },
        });
        self.aggregate(tenant, function, opcode, stage, end.saturating_since(start));
    }

    /// Records an instant event (retry, fault mark) against `cmd`.
    pub fn event(
        &mut self,
        now: SimTime,
        cmd: CmdId,
        tenant: u16,
        opcode: u8,
        kind: TelemetryEventKind,
    ) {
        self.push(TelemetryEvent {
            at: now,
            cmd,
            tenant,
            opcode,
            kind,
        });
    }

    fn aggregate(
        &mut self,
        tenant: u16,
        function: u8,
        opcode: u8,
        stage: TelemetryStage,
        d: SimDuration,
    ) {
        self.agg
            .entry(AggKey {
                tenant,
                function,
                opcode,
                stage,
            })
            .or_default()
            .record(d);
    }

    /// The event stream, oldest first (bounded by the ring capacity).
    pub fn events(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.ring.iter()
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Commands whose root span is still open.
    pub fn open_commands(&self) -> usize {
        self.open.len()
    }

    /// Aggregation keys, sorted for deterministic iteration.
    pub fn agg_keys(&self) -> Vec<AggKey> {
        let mut keys: Vec<AggKey> = self.agg.keys().copied().collect();
        keys.sort();
        keys
    }

    /// The histogram for one key, if any samples were recorded.
    pub fn histogram(&self, key: &AggKey) -> Option<&LatencyHistogram> {
        self.agg.get(key)
    }

    /// Rolls all tenants' histograms for `stage` into one fleet total
    /// (a [`LatencyHistogram::merge`] roll-up, as an operator dashboard
    /// would).
    pub fn fleet_rollup(&self, stage: TelemetryStage) -> LatencyHistogram {
        let mut total = LatencyHistogram::new();
        for (k, h) in &self.agg {
            if k.stage == stage {
                total.merge(h);
            }
        }
        total
    }

    /// Per-tenant roll-up for `stage` (opcodes merged), sorted by tenant.
    pub fn tenant_rollup(&self, stage: TelemetryStage) -> Vec<(u16, LatencyHistogram)> {
        let mut by_tenant: BTreeMap<u16, LatencyHistogram> = BTreeMap::new();
        for (k, h) in &self.agg {
            if k.stage == stage {
                by_tenant.entry(k.tenant).or_default().merge(h);
            }
        }
        let mut out: Vec<_> = by_tenant.into_iter().collect();
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Reconstructs completed spans from the event ring by pairing each
    /// `SpanBegin` with the next `SpanEnd` of the same `(cmd, stage)`.
    /// Unmatched begins (still-open spans, or ends evicted from the
    /// ring) are omitted. Sorted by `(start, cmd, stage, end)` so the
    /// output is deterministic.
    pub fn spans(&self) -> Vec<Span> {
        // Open begins for a (cmd, stage), as (start, tenant, opcode).
        type OpenBegins = BTreeMap<(CmdId, TelemetryStage), Vec<(SimTime, u16, u8)>>;
        let mut open: OpenBegins = BTreeMap::new();
        let mut spans = Vec::new();
        for ev in &self.ring {
            match ev.kind {
                TelemetryEventKind::SpanBegin { stage } => open
                    .entry((ev.cmd, stage))
                    .or_default()
                    .push((ev.at, ev.tenant, ev.opcode)),
                TelemetryEventKind::SpanEnd { stage, ok } => {
                    if let Some((start, tenant, opcode)) =
                        open.get_mut(&(ev.cmd, stage)).and_then(Vec::pop)
                    {
                        spans.push(Span {
                            cmd: ev.cmd,
                            tenant,
                            opcode,
                            stage,
                            start,
                            end: ev.at,
                            ok,
                        });
                    }
                }
                _ => {}
            }
        }
        spans.sort_by_key(|s| (s.start, s.cmd, s.stage, s.end));
        spans
    }
}

/// Cheap cloneable handle shared by every layer. Disabled by default;
/// all methods are no-ops (no allocation, no borrow) when disabled, so
/// telemetry-off runs are bit-identical to never having telemetry at all.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHandle(Option<Rc<RefCell<TelemetryRecorder>>>);

impl TelemetryHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        TelemetryHandle(None)
    }

    /// A handle backed by a fresh recorder with `capacity` ring slots.
    pub fn enabled(capacity: usize) -> Self {
        TelemetryHandle(Some(Rc::new(RefCell::new(TelemetryRecorder::new(
            capacity,
        )))))
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Runs `f` against the recorder if enabled.
    pub fn with<R>(&self, f: impl FnOnce(&mut TelemetryRecorder) -> R) -> Option<R> {
        self.0.as_ref().map(|rc| f(&mut rc.borrow_mut()))
    }

    /// Runs `f` against the recorder immutably if enabled.
    pub fn read<R>(&self, f: impl FnOnce(&TelemetryRecorder) -> R) -> Option<R> {
        self.0.as_ref().map(|rc| f(&rc.borrow()))
    }

    /// See [`TelemetryRecorder::begin_command`]; [`CmdId::NONE`] when disabled.
    pub fn begin_command(&self, now: SimTime, tenant: u16, cid: u16, opcode: u8) -> CmdId {
        self.with(|r| r.begin_command(now, tenant, cid, opcode))
            .unwrap_or(CmdId::NONE)
    }

    /// See [`TelemetryRecorder::lookup`]; `(CmdId::NONE, 0)` when unbound.
    pub fn lookup(&self, tenant: u16, cid: u16) -> (CmdId, u8) {
        self.read(|r| r.lookup(tenant, cid))
            .flatten()
            .unwrap_or((CmdId::NONE, 0))
    }

    /// See [`TelemetryRecorder::end_command`].
    pub fn end_command(&self, now: SimTime, tenant: u16, cid: u16, ok: bool) {
        self.with(|r| r.end_command(now, tenant, cid, ok));
    }

    /// See [`TelemetryRecorder::span`].
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        cmd: CmdId,
        tenant: u16,
        function: u8,
        opcode: u8,
        stage: TelemetryStage,
        start: SimTime,
        end: SimTime,
        ok: bool,
    ) {
        self.with(|r| r.span(cmd, tenant, function, opcode, stage, start, end, ok));
    }

    /// See [`TelemetryRecorder::event`].
    pub fn event(
        &self,
        now: SimTime,
        cmd: CmdId,
        tenant: u16,
        opcode: u8,
        kind: TelemetryEventKind,
    ) {
        self.with(|r| r.event(now, cmd, tenant, opcode, kind));
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Writes the recorder's spans + instants as Chrome `trace_event` JSON
/// (load via `chrome://tracing` or Perfetto). Spans are emitted as
/// complete (`"ph":"X"`) events — `pid` is the tenant, `tid` the
/// command — so the viewer derives nesting from containment. Instants
/// become `"ph":"i"` events. One event per line, deterministic order.
pub fn chrome_trace(rec: &TelemetryRecorder) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for s in rec.spans() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
             \"args\":{{\"cmd\":{},\"opcode\":{},\"ok\":{}}}}}",
            s.stage.name(),
            s.tenant,
            s.cmd.0,
            s.start.as_micros_f64(),
            s.duration().as_micros_f64(),
            s.cmd.0,
            s.opcode,
            s.ok,
        ));
    }
    let mut instants: Vec<&TelemetryEvent> = rec
        .events()
        .filter(|e| {
            matches!(
                e.kind,
                TelemetryEventKind::Retry { .. } | TelemetryEventKind::Mark { .. }
            )
        })
        .collect();
    instants.sort_by_key(|e| (e.at, e.cmd));
    for e in instants {
        let name = match e.kind {
            TelemetryEventKind::Retry { attempt } => format!("retry#{attempt}"),
            TelemetryEventKind::Mark { label } => label.to_string(),
            _ => unreachable!(),
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\
             \"args\":{{\"cmd\":{}}}}}",
            name,
            e.tenant,
            e.cmd.0,
            e.at.as_micros_f64(),
            e.cmd.0,
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Writes the raw event stream as JSON Lines, one event per line.
pub fn jsonl(rec: &TelemetryRecorder) -> String {
    let mut out = String::new();
    for e in rec.events() {
        let (kind, detail) = match e.kind {
            TelemetryEventKind::SpanBegin { stage } => {
                ("span_begin", format!("\"stage\":\"{}\"", stage.name()))
            }
            TelemetryEventKind::SpanEnd { stage, ok } => (
                "span_end",
                format!("\"stage\":\"{}\",\"ok\":{}", stage.name(), ok),
            ),
            TelemetryEventKind::Retry { attempt } => ("retry", format!("\"attempt\":{attempt}")),
            TelemetryEventKind::Mark { label } => ("mark", format!("\"label\":\"{label}\"")),
        };
        out.push_str(&format!(
            "{{\"ts\":{},\"cmd\":{},\"tenant\":{},\"opcode\":{},\"kind\":\"{}\",{}}}\n",
            e.at.as_nanos(),
            e.cmd.0,
            e.tenant,
            e.opcode,
            kind,
            detail,
        ));
    }
    out
}

/// A span parsed back out of [`chrome_trace`] output (validation aid
/// for the smoke test and attribution tests — parses exactly the format
/// this module emits, nothing more).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpan {
    /// Event name (the stage name).
    pub name: String,
    /// Tenant (Chrome `pid`).
    pub pid: u64,
    /// Command ID (Chrome `tid`).
    pub tid: u64,
    /// Start, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(&rest[..end])
}

/// Parses `"ph":"X"` span events back out of [`chrome_trace`] output.
/// Returns `None` if any span line is missing a required field or the
/// braces don't balance (i.e. the JSON is malformed).
pub fn parse_chrome_trace(trace: &str) -> Option<Vec<ParsedSpan>> {
    let opens = trace.matches(['{', '[']).count();
    let closes = trace.matches(['}', ']']).count();
    if opens != closes {
        return None;
    }
    let mut spans = Vec::new();
    for line in trace.lines() {
        if !line.contains("\"ph\":\"X\"") {
            continue;
        }
        let name = field(line, "name")?.trim_matches('"').to_string();
        spans.push(ParsedSpan {
            name,
            pid: field(line, "pid")?.parse().ok()?,
            tid: field(line, "tid")?.parse().ok()?,
            ts_us: field(line, "ts")?.parse().ok()?,
            dur_us: field(line, "dur")?.parse().ok()?,
        });
    }
    Some(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn command_lifecycle_allocates_and_closes() {
        let mut r = TelemetryRecorder::new(1024);
        let a = r.begin_command(t(1), 0, 7, 0x02);
        let b = r.begin_command(t(1), 1, 7, 0x01);
        assert_ne!(a, b, "CmdIds are unique across tenants");
        assert_eq!(r.lookup(0, 7), Some((a, 0x02)));
        assert_eq!(r.lookup(1, 7), Some((b, 0x01)));
        assert_eq!(r.end_command(t(101), 0, 7, true), Some(a));
        assert_eq!(r.lookup(0, 7), None);
        assert_eq!(r.open_commands(), 1);
        let key = AggKey {
            tenant: 0,
            function: 0,
            opcode: 0x02,
            stage: TelemetryStage::Command,
        };
        let h = r.histogram(&key).expect("root span aggregated");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), SimDuration::from_us(100));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = TelemetryRecorder::new(4);
        for i in 0..6 {
            r.event(
                t(i),
                CmdId(i),
                0,
                0,
                TelemetryEventKind::Mark { label: "x" },
            );
        }
        assert_eq!(r.dropped(), 2);
        let first = r.events().next().unwrap();
        assert_eq!(first.at, t(2), "oldest events evicted first");
    }

    #[test]
    fn spans_reconstruct_and_sort() {
        let mut r = TelemetryRecorder::new(1024);
        let cmd = r.begin_command(t(0), 3, 1, 0x02);
        r.span(cmd, 3, 3, 0x02, TelemetryStage::Fetch, t(1), t(2), true);
        r.span(cmd, 3, 3, 0x02, TelemetryStage::Dma, t(2), t(9), false);
        r.span(cmd, 3, 3, 0x02, TelemetryStage::Dma, t(10), t(20), true);
        r.end_command(t(21), 3, 1, true);
        let spans = r.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].stage, TelemetryStage::Command);
        assert_eq!(spans[0].duration(), SimDuration::from_us(21));
        // Two Dma attempts survive as distinct spans.
        let dma: Vec<_> = spans
            .iter()
            .filter(|s| s.stage == TelemetryStage::Dma)
            .collect();
        assert_eq!(dma.len(), 2);
        assert!(!dma[0].ok && dma[1].ok);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = TelemetryHandle::disabled();
        assert!(!h.is_enabled());
        assert_eq!(h.begin_command(t(0), 0, 0, 0), CmdId::NONE);
        assert_eq!(h.lookup(0, 0), (CmdId::NONE, 0));
        h.span(CmdId::NONE, 0, 0, 0, TelemetryStage::Dma, t(0), t(1), true);
        h.end_command(t(1), 0, 0, true);
        assert_eq!(h.read(|r| r.events().count()), None);
    }

    #[test]
    fn rollups_merge_across_tenants() {
        let mut r = TelemetryRecorder::new(1024);
        for tenant in 0..3u16 {
            let cmd = r.begin_command(t(0), tenant, 1, 0x02);
            r.span(
                cmd,
                tenant,
                tenant as u8,
                0x02,
                TelemetryStage::Dma,
                t(0),
                t(10 * (tenant as u64 + 1)),
                true,
            );
        }
        let fleet = r.fleet_rollup(TelemetryStage::Dma);
        assert_eq!(fleet.count(), 3);
        assert_eq!(fleet.max(), SimDuration::from_us(30));
        let per_tenant = r.tenant_rollup(TelemetryStage::Dma);
        assert_eq!(per_tenant.len(), 3);
        assert_eq!(per_tenant[2].0, 2);
        assert_eq!(per_tenant[2].1.max(), SimDuration::from_us(30));
    }

    #[test]
    fn chrome_trace_round_trips_through_parser() {
        let mut r = TelemetryRecorder::new(1024);
        let cmd = r.begin_command(t(5), 1, 9, 0x01);
        r.span(cmd, 1, 1, 0x01, TelemetryStage::Fetch, t(6), t(7), true);
        r.event(t(8), cmd, 1, 0x01, TelemetryEventKind::Retry { attempt: 1 });
        r.end_command(t(50), 1, 9, true);
        let trace = chrome_trace(&r);
        let spans = parse_chrome_trace(&trace).expect("valid trace JSON");
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "cmd").unwrap();
        assert_eq!(root.pid, 1);
        assert_eq!(root.tid, cmd.0);
        assert!((root.ts_us - 5.0).abs() < 1e-9);
        assert!((root.dur_us - 45.0).abs() < 1e-9);
        // Children nest inside the root window.
        let fetch = spans.iter().find(|s| s.name == "fetch").unwrap();
        assert!(fetch.ts_us >= root.ts_us);
        assert!(fetch.ts_us + fetch.dur_us <= root.ts_us + root.dur_us);
    }

    #[test]
    fn jsonl_emits_one_line_per_event() {
        let mut r = TelemetryRecorder::new(1024);
        let cmd = r.begin_command(t(0), 0, 0, 0x02);
        r.event(
            t(1),
            cmd,
            0,
            0x02,
            TelemetryEventKind::Mark { label: "hit" },
        );
        r.end_command(t(2), 0, 0, false);
        let dump = jsonl(&r);
        assert_eq!(dump.lines().count(), 3);
        assert!(dump.contains("\"kind\":\"mark\""));
        assert!(dump.contains("\"label\":\"hit\""));
        assert!(dump.contains("\"ok\":false"));
    }
}
