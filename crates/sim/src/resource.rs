//! Queueing-theory building blocks.
//!
//! Device performance models are composed from three primitives:
//!
//! * [`FifoServer`] — a single serially-reused resource (a CPU core, a
//!   flash die, a DMA engine): requests are served in arrival order, each
//!   occupying the server for its service time.
//! * [`MultiServer`] — `m` identical servers fed from one queue (the
//!   die-level parallelism inside an SSD).
//! * [`BandwidthLink`] — a shared pipe with a byte rate (a PCIe link or a
//!   flash channel): a transfer occupies the pipe for `bytes / rate`.
//! * [`TokenBucket`] — a rate limiter with burst capacity (the QoS module
//!   and the SSD write cache are both token buckets).
//!
//! All primitives are *time-function* style: callers pass `now` and get
//! back the completion time; no events are scheduled internally. This
//! keeps them trivially unit-testable and lets the caller decide how to
//! turn completion times into events.

use crate::time::{SimDuration, SimTime};

/// A single FIFO resource with a busy-until horizon.
///
/// # Examples
///
/// ```
/// use bm_sim::resource::FifoServer;
/// use bm_sim::{SimDuration, SimTime};
///
/// let mut core = FifoServer::new();
/// let t0 = SimTime::ZERO;
/// let done1 = core.occupy(t0, SimDuration::from_us(2));
/// let done2 = core.occupy(t0, SimDuration::from_us(2));
/// assert_eq!(done1.as_nanos(), 2_000);
/// assert_eq!(done2.as_nanos(), 4_000); // queued behind the first
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    free_at: SimTime,
    busy_total: SimDuration,
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the server for `service` starting no earlier than `now`,
    /// returning the completion time.
    pub fn occupy(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.free_at.max(now);
        self.free_at = start + service;
        self.busy_total += service;
        self.free_at
    }

    /// When the server next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Whether the server is idle at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Total busy time accumulated (for utilization reporting).
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Utilization in `[0, 1]` over a window of length `elapsed`.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        (self.busy_total.as_secs_f64() / elapsed.as_secs_f64()).min(1.0)
    }
}

/// `m` identical FIFO servers fed from a single queue; work goes to the
/// earliest-free server.
///
/// Models the internal parallelism of an SSD: many flash dies service
/// commands concurrently, so throughput scales with outstanding depth
/// until all dies are busy.
///
/// # Examples
///
/// ```
/// use bm_sim::resource::MultiServer;
/// use bm_sim::{SimDuration, SimTime};
///
/// let mut dies = MultiServer::new(2);
/// let t0 = SimTime::ZERO;
/// let s = SimDuration::from_us(10);
/// assert_eq!(dies.occupy(t0, s).as_nanos(), 10_000);
/// assert_eq!(dies.occupy(t0, s).as_nanos(), 10_000); // second unit
/// assert_eq!(dies.occupy(t0, s).as_nanos(), 20_000); // queues
/// ```
#[derive(Debug, Clone)]
pub struct MultiServer {
    units: Vec<SimTime>,
    busy_total: SimDuration,
}

impl MultiServer {
    /// Creates `m` idle units.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "need at least one server");
        MultiServer {
            units: vec![SimTime::ZERO; m],
            busy_total: SimDuration::ZERO,
        }
    }

    /// Number of parallel units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Always false: a `MultiServer` has at least one unit.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serves a request of `service` on the earliest-free unit, returning
    /// completion time.
    pub fn occupy(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let (idx, _) = self
            .units
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            // bm-lint: allow(panic-path): `MultiServer::new` asserts m > 0, so `units` is never empty
            .expect("at least one unit");
        let start = self.units[idx].max(now);
        self.units[idx] = start + service;
        self.busy_total += service;
        self.units[idx]
    }

    /// Serves a request on a *specific* unit (e.g. the die an LBA maps to),
    /// returning completion time.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn occupy_unit(&mut self, unit: usize, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.units[unit].max(now);
        self.units[unit] = start + service;
        self.busy_total += service;
        self.units[unit]
    }

    /// Number of units still busy at `now`.
    pub fn busy_units(&self, now: SimTime) -> usize {
        self.units.iter().filter(|&&t| t > now).count()
    }

    /// Total busy time across all units.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }
}

/// A shared pipe with a fixed byte rate; transfers serialize.
///
/// # Examples
///
/// ```
/// use bm_sim::resource::BandwidthLink;
/// use bm_sim::SimTime;
///
/// // 1 GB/s link: a 1 MB transfer takes 1 ms.
/// let mut link = BandwidthLink::new(1_000_000_000.0);
/// let done = link.transfer(SimTime::ZERO, 1_000_000);
/// assert_eq!(done.as_nanos(), 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthLink {
    bytes_per_sec: f64,
    free_at: SimTime,
    bytes_total: u64,
}

impl BandwidthLink {
    /// Creates a link with the given rate in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "rate must be positive"
        );
        BandwidthLink {
            bytes_per_sec,
            free_at: SimTime::ZERO,
            bytes_total: 0,
        }
    }

    /// The configured rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Schedules a transfer of `bytes` starting no earlier than `now`,
    /// returning its completion time.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.free_at.max(now);
        let dur = SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        self.free_at = start + dur;
        self.bytes_total += bytes;
        self.free_at
    }

    /// When the link next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total bytes ever transferred.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }
}

/// A token bucket: sustained rate plus burst capacity.
///
/// Used for the QoS per-namespace throughput limits (tokens = bytes or
/// IOs) and the SSD write cache (tokens = free cache bytes, refilled at
/// the flash drain rate).
///
/// # Examples
///
/// ```
/// use bm_sim::resource::TokenBucket;
/// use bm_sim::{SimDuration, SimTime};
///
/// // 100 tokens/sec, burst of 10.
/// let mut tb = TokenBucket::new(100.0, 10.0);
/// let t0 = SimTime::ZERO;
/// assert_eq!(tb.earliest_available(t0, 10.0), t0); // burst is free
/// tb.consume(t0, 10.0);
/// // Next 5 tokens need 50 ms of refill.
/// let t = tb.earliest_available(t0, 5.0);
/// assert_eq!(t.as_nanos(), 50_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    capacity: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a bucket that refills at `rate_per_sec` with burst
    /// `capacity`, starting full.
    ///
    /// # Panics
    ///
    /// Panics if rate or capacity is not positive and finite.
    pub fn new(rate_per_sec: f64, capacity: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "rate must be positive"
        );
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        TokenBucket {
            rate_per_sec,
            capacity,
            tokens: capacity,
            last_refill: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last_refill {
            let dt = (now - self.last_refill).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.capacity);
            self.last_refill = now;
        }
    }

    /// Tokens available at `now`.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// The earliest time at which `amount` tokens will be available.
    pub fn earliest_available(&mut self, now: SimTime, amount: f64) -> SimTime {
        self.refill(now);
        if self.tokens >= amount {
            now
        } else {
            let deficit = amount - self.tokens;
            now + SimDuration::from_secs_f64(deficit / self.rate_per_sec)
        }
    }

    /// Consumes `amount` tokens at `now`; the balance may go negative,
    /// which models queueing behind the limiter (callers should gate on
    /// [`TokenBucket::earliest_available`] first if they want strict
    /// admission).
    pub fn consume(&mut self, now: SimTime, amount: f64) {
        self.refill(now);
        self.tokens -= amount;
    }

    /// Whether `amount` tokens can be consumed immediately at `now`.
    pub fn try_consume(&mut self, now: SimTime, amount: f64) -> bool {
        self.refill(now);
        if self.tokens >= amount {
            self.tokens -= amount;
            true
        } else {
            false
        }
    }

    /// The sustained refill rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// The burst capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: fn(u64) -> SimDuration = SimDuration::from_us;

    #[test]
    fn fifo_server_serializes() {
        let mut s = FifoServer::new();
        let t0 = SimTime::ZERO;
        assert!(s.is_idle(t0));
        let d1 = s.occupy(t0, US(5));
        let d2 = s.occupy(t0, US(5));
        assert_eq!(d1, SimTime::from_nanos(5_000));
        assert_eq!(d2, SimTime::from_nanos(10_000));
        assert!(!s.is_idle(t0));
        // Arriving after the server drained starts immediately.
        let late = SimTime::from_nanos(20_000);
        let d3 = s.occupy(late, US(5));
        assert_eq!(d3, SimTime::from_nanos(25_000));
        assert_eq!(s.busy_total(), US(15));
    }

    #[test]
    fn fifo_utilization() {
        let mut s = FifoServer::new();
        s.occupy(SimTime::ZERO, US(30));
        assert!((s.utilization(US(60)) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn multi_server_parallelism() {
        let mut m = MultiServer::new(4);
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            assert_eq!(m.occupy(t0, US(10)), SimTime::from_nanos(10_000));
        }
        // Fifth request queues behind the earliest-free unit.
        assert_eq!(m.occupy(t0, US(10)), SimTime::from_nanos(20_000));
        assert_eq!(m.busy_units(t0), 4);
        assert_eq!(m.busy_units(SimTime::from_nanos(15_000)), 1);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn multi_server_specific_unit() {
        let mut m = MultiServer::new(2);
        let t0 = SimTime::ZERO;
        assert_eq!(m.occupy_unit(0, t0, US(10)), SimTime::from_nanos(10_000));
        // Same unit queues even though unit 1 is free.
        assert_eq!(m.occupy_unit(0, t0, US(10)), SimTime::from_nanos(20_000));
        assert_eq!(m.occupy_unit(1, t0, US(10)), SimTime::from_nanos(10_000));
    }

    #[test]
    fn bandwidth_link_throughput() {
        // 3.2 GB/s, the paper's P4510 sequential-read ceiling.
        let mut link = BandwidthLink::new(3.2e9);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            t = link.transfer(SimTime::ZERO, 128 * 1024);
        }
        let total_bytes = 100u64 * 128 * 1024;
        let rate = total_bytes as f64 / (t - SimTime::ZERO).as_secs_f64();
        assert!((rate - 3.2e9).abs() / 3.2e9 < 0.01, "rate {rate}");
        assert_eq!(link.bytes_total(), total_bytes);
    }

    #[test]
    fn token_bucket_caps_burst_and_refills() {
        let mut tb = TokenBucket::new(1_000.0, 100.0);
        let t0 = SimTime::ZERO;
        assert!(tb.try_consume(t0, 100.0));
        assert!(!tb.try_consume(t0, 1.0));
        // After 10 ms, 10 tokens have refilled.
        let t1 = t0 + SimDuration::from_ms(10);
        assert!((tb.available(t1) - 10.0).abs() < 1e-9);
        assert!(tb.try_consume(t1, 10.0));
        // Tokens never exceed capacity.
        let t2 = t1 + SimDuration::from_secs(10);
        assert!((tb.available(t2) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn token_bucket_earliest_available() {
        let mut tb = TokenBucket::new(100.0, 10.0);
        let t0 = SimTime::ZERO;
        tb.consume(t0, 10.0);
        let t = tb.earliest_available(t0, 1.0);
        assert_eq!(t, t0 + SimDuration::from_ms(10));
        // Already-available amounts return `now`.
        let t3 = t0 + SimDuration::from_secs(1);
        assert_eq!(tb.earliest_available(t3, 5.0), t3);
    }

    #[test]
    fn token_bucket_negative_balance_models_queueing() {
        let mut tb = TokenBucket::new(100.0, 10.0);
        let t0 = SimTime::ZERO;
        tb.consume(t0, 30.0); // 20 tokens in debt
        let t = tb.earliest_available(t0, 0.0);
        assert_eq!(t, t0 + SimDuration::from_ms(200));
    }
}
