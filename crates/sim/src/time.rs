//! Virtual time types.
//!
//! The simulation clock counts nanoseconds from the start of the run.
//! [`SimTime`] is an absolute instant, [`SimDuration`] a span; both are
//! thin newtypes over `u64` so they are free to copy and compare.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in nanoseconds.
///
/// # Examples
///
/// ```
/// use bm_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_us(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use bm_sim::SimDuration;
/// assert_eq!(SimDuration::from_ms(1), SimDuration::from_us(1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Nanoseconds since simulation start, as a float.
    ///
    /// The one sanctioned ns→float conversion: every report-side cast
    /// goes through here so precision loss past 2^53 ns (~104 days of
    /// simulated time) has a single audit point.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64
    }

    /// Microseconds since simulation start, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    ///
    /// Prefer [`SimTime::since`] where `earlier <= self` is an invariant:
    /// silent clamping here has hidden time-travel bugs in management
    /// reports before.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Time elapsed since `earlier`.
    ///
    /// Debug builds panic if `earlier` is later than `self` — a
    /// negative elapsed time means an event ran out of order or a
    /// timestamp was recorded from the future, and should fail loudly
    /// in tests rather than be clamped. Release builds saturate to
    /// zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            self >= earlier,
            "time went backwards: {self} is before {earlier}"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Time elapsed since `earlier`, or `None` if `earlier` is later
    /// than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional microseconds (rounded to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "duration must be non-negative");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Creates a span from fractional seconds (rounded to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole nanoseconds, as a float.
    ///
    /// See [`SimTime::as_nanos_f64`]: the single sanctioned ns→float
    /// conversion point for report-side math.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64
    }

    /// The span in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_us(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_ms(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_secs_f64(), 0.25);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDuration::from_nanos(50);
        assert_eq!(t1 - t0, SimDuration::from_nanos(50));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t1.saturating_since(t0), SimDuration::from_nanos(50));
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_us(10);
        assert_eq!(d * 3, SimDuration::from_us(30));
        assert_eq!(d / 2, SimDuration::from_us(5));
        assert_eq!(d + d, SimDuration::from_us(20));
        assert_eq!(d - SimDuration::from_us(4), SimDuration::from_us(6));
        assert_eq!(
            d.saturating_sub(SimDuration::from_us(20)),
            SimDuration::ZERO
        );
        let total: SimDuration = vec![d, d, d].into_iter().sum();
        assert_eq!(total, SimDuration::from_us(30));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_us(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_micros_f64(-1.0);
    }

    #[test]
    fn since_measures_forward_spans() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDuration::from_nanos(50);
        assert_eq!(t1.since(t0), SimDuration::from_nanos(50));
        assert_eq!(t1.checked_since(t0), Some(SimDuration::from_nanos(50)));
        assert_eq!(t0.checked_since(t1), None);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "time went backwards"))]
    fn since_fails_loudly_on_time_travel() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDuration::from_nanos(50);
        // Debug builds panic; release builds saturate to zero.
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }
}
