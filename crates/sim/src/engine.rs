//! The event loop.
//!
//! A [`Simulation`] owns a *world* (the mutable state of every modeled
//! component) and a [`Scheduler`] (the pending-event queue). Events are
//! boxed closures that receive `&mut W` and `&mut Scheduler<W>` so they
//! can mutate state and schedule follow-up events. Ties on the timestamp
//! are broken by insertion order, which makes runs with the same seed
//! bit-for-bit reproducible.
//!
//! # Implementation: hierarchical timer wheel
//!
//! The queue is a hierarchical timer wheel (8 levels × 64 slots covering
//! 48 bits of nanosecond ticks) backed by a slab arena with an intrusive
//! free list, so steady-state scheduling performs no per-event heap
//! allocation: popped nodes are recycled, and boxing a non-capturing
//! closure is allocation-free. Events beyond the 2⁴⁸ ns horizon overflow
//! into a `BTreeMap` and migrate into the wheel when it drains; events
//! scheduled between `now` and a cursor that peeking fast-forwarded land
//! in a small spill map that always pops first. Same-tick events are
//! drained as one batch and sorted by sequence number, so pop order is
//! exactly the `(at, seq)` order the previous `BinaryHeap` implementation
//! produced — see DESIGN.md "Simulator core & hot path".

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A boxed event body.
type Action<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

/// Sentinel for "no node" in the intrusive lists.
const NIL: u32 = u32::MAX;
/// Wheel geometry: 8 levels of 64 slots, 6 bits per level.
const LEVELS: usize = 8;
const SLOTS: usize = 64;
const LEVEL_BITS: u32 = 6;
/// Total bits the wheel spans; ticks differing only above this go to
/// the overflow map.
const WHEEL_BITS: u32 = LEVELS as u32 * LEVEL_BITS;

/// An arena node: one pending event.
struct Node<W> {
    /// Absolute fire tick in nanoseconds.
    at: u64,
    /// Insertion order, breaks same-tick ties.
    seq: u64,
    /// Next node in the slot list (or the free list once recycled).
    next: u32,
    /// `Some` while pending; taken on pop.
    action: Option<Action<W>>,
}

/// Where [`Scheduler::prepare_front`] found the next event.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FrontSlot {
    /// In the spill map (scheduled behind a fast-forwarded cursor).
    Spill,
    /// In the current-tick batch.
    Batch,
}

/// Error returned by [`Scheduler::try_schedule_at`] for a target time
/// earlier than the current clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePastError {
    /// The requested (past) fire time.
    pub at: SimTime,
    /// The scheduler clock when the request was made.
    pub now: SimTime,
}

impl std::fmt::Display for SchedulePastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot schedule into the past: at={:?} < now={:?}",
            self.at, self.now
        )
    }
}

impl std::error::Error for SchedulePastError {}

/// The pending-event queue, passed to every event so it can schedule more.
///
/// # Examples
///
/// ```
/// use bm_sim::{Simulation, SimDuration};
/// let mut sim = Simulation::new(0u32);
/// sim.schedule_in(SimDuration::from_us(1), |w: &mut u32, sched| {
///     *w += 1;
///     // chain a follow-up event
///     sched.schedule_in(SimDuration::from_us(1), |w: &mut u32, _| *w += 10);
/// });
/// sim.run_until_idle();
/// assert_eq!(*sim.world(), 11);
/// ```
pub struct Scheduler<W> {
    now: SimTime,
    next_seq: u64,
    /// Total pending events across wheel, batch, spill and overflow.
    len: usize,
    /// Cumulative events fired since construction.
    fired: u64,
    /// High-water mark of `len`.
    peak_pending: usize,
    /// How many `schedule_at` calls were clamped from the past to `now`.
    clamped_past: u64,
    /// The wheel's read position. Invariant: every tick stored in the
    /// wheel or overflow is `>= cursor`; ticks below it live in `spill`.
    cursor: u64,
    /// Slab arena; freed nodes are chained through `free_head`.
    nodes: Vec<Node<W>>,
    free_head: u32,
    /// `LEVELS * SLOTS` list heads into the arena.
    slots: Vec<u32>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// Current-tick nodes, sorted by `seq`, drained via `batch_pos`.
    batch: Vec<u32>,
    batch_pos: usize,
    /// Events beyond the wheel horizon, keyed by `(at, seq)`.
    overflow: BTreeMap<(u64, u64), u32>,
    /// Events below `cursor` (but `>= now`), keyed by `(at, seq)`.
    spill: BTreeMap<(u64, u64), u32>,
}

impl<W> Default for Scheduler<W> {
    fn default() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            next_seq: 0,
            len: 0,
            fired: 0,
            peak_pending: 0,
            clamped_past: 0,
            cursor: 0,
            nodes: Vec::new(),
            free_head: NIL,
            slots: vec![NIL; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            batch: Vec::new(),
            batch_pos: 0,
            overflow: BTreeMap::new(),
            spill: BTreeMap::new(),
        }
    }
}

impl<W> Scheduler<W> {
    /// Creates an empty scheduler with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.len
    }

    /// Cumulative number of events fired since construction.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// High-water mark of the pending-event count.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// How many `schedule_at` calls asked for a time in the past and
    /// were clamped to `now`.
    pub fn clamped_past(&self) -> u64 {
        self.clamped_past
    }

    /// Number of arena node slots ever created. Stable under
    /// steady-state load: popped nodes are recycled through the free
    /// list instead of allocating.
    pub fn arena_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Schedules `action` to fire at absolute time `at`.
    ///
    /// A target earlier than the current clock is clamped to `now` (and
    /// counted in [`Scheduler::clamped_past`]); use
    /// [`Scheduler::try_schedule_at`] to treat that as an error instead.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        let at = if at < self.now {
            self.clamped_past += 1;
            self.now
        } else {
            at
        };
        self.push_event(at, Box::new(action));
    }

    /// Schedules `action` to fire at absolute time `at`, rejecting
    /// times earlier than the current clock with a typed error.
    pub fn try_schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) -> Result<(), SchedulePastError> {
        if at < self.now {
            return Err(SchedulePastError { at, now: self.now });
        }
        self.push_event(at, Box::new(action));
        Ok(())
    }

    /// Schedules `action` to fire `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.schedule_at(self.now + delay, action);
    }

    fn push_event(&mut self, at: SimTime, action: Action<W>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.alloc(at.as_nanos(), seq, action);
        self.insert(idx);
        self.len += 1;
        if self.len > self.peak_pending {
            self.peak_pending = self.len;
        }
    }

    /// Takes a node from the free list, or grows the arena.
    fn alloc(&mut self, at: u64, seq: u64, action: Action<W>) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.nodes[idx as usize];
            self.free_head = node.next;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.action = Some(action);
            idx
        } else {
            debug_assert!(self.nodes.len() < NIL as usize);
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                at,
                seq,
                next: NIL,
                action: None,
            });
            self.nodes[idx as usize].action = Some(action);
            idx
        }
    }

    /// Returns a popped node to the free list.
    fn free(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        debug_assert!(node.action.is_none());
        node.next = self.free_head;
        self.free_head = idx;
    }

    /// Routes a node to the spill map, overflow map, or a wheel slot.
    fn insert(&mut self, idx: u32) {
        let tick = self.nodes[idx as usize].at;
        if tick < self.cursor {
            // Possible only after a peek fast-forwarded the cursor past
            // `now`; spill entries always pop before wheel content.
            let seq = self.nodes[idx as usize].seq;
            self.spill.insert((tick, seq), idx);
        } else {
            self.place(idx);
        }
    }

    /// Places a node (with tick `>= cursor`) into the wheel or overflow.
    fn place(&mut self, idx: u32) {
        let (tick, seq) = {
            let node = &self.nodes[idx as usize];
            (node.at, node.seq)
        };
        debug_assert!(tick >= self.cursor);
        let diff = tick ^ self.cursor;
        if diff >> WHEEL_BITS != 0 {
            self.overflow.insert((tick, seq), idx);
            return;
        }
        // Level = highest 6-bit group where the tick differs from the
        // cursor; same-tick events land in level 0 at the cursor slot.
        let level = if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros()) as usize / LEVEL_BITS as usize
        };
        let slot = ((tick >> (level as u32 * LEVEL_BITS)) & 63) as usize;
        let pos = level * SLOTS + slot;
        self.nodes[idx as usize].next = self.slots[pos];
        self.slots[pos] = idx;
        self.occupied[level] |= 1u64 << slot;
    }

    /// Drains the level-0 slot at the cursor into `batch`, sorted by
    /// `seq`. Every node in the slot shares the cursor's tick.
    fn collect_batch(&mut self, slot: usize) {
        debug_assert!(self.batch_pos >= self.batch.len());
        self.batch.clear();
        self.batch_pos = 0;
        let head = std::mem::replace(&mut self.slots[slot], NIL);
        self.occupied[0] &= !(1u64 << slot);
        let mut idx = head;
        while idx != NIL {
            debug_assert_eq!(self.nodes[idx as usize].at, self.cursor);
            self.batch.push(idx);
            idx = self.nodes[idx as usize].next;
        }
        let (batch, nodes) = (&mut self.batch, &self.nodes);
        batch.sort_unstable_by_key(|&i| nodes[i as usize].seq);
    }

    /// Advances the cursor to the next occupied higher-level slot and
    /// redistributes its nodes into lower levels. Returns whether a
    /// slot was cascaded.
    fn cascade_next(&mut self) -> bool {
        debug_assert_eq!(self.occupied[0] & (!0u64 << (self.cursor & 63)), 0);
        for level in 1..LEVELS {
            let shift = level as u32 * LEVEL_BITS;
            let group = ((self.cursor >> shift) & 63) as u32;
            // Slots at or before the cursor's own group are spent; the
            // cursor's group itself only ever held ticks that differ
            // from the cursor below this level, which live lower down.
            let mask = if group >= 63 {
                0
            } else {
                self.occupied[level] & (!0u64 << (group + 1))
            };
            if mask != 0 {
                let slot = u64::from(mask.trailing_zeros());
                let keep = self.cursor & (!0u64 << (shift + LEVEL_BITS));
                self.cursor = keep | (slot << shift);
                let head = std::mem::replace(&mut self.slots[level * SLOTS + slot as usize], NIL);
                self.occupied[level] &= !(1u64 << slot);
                let mut idx = head;
                while idx != NIL {
                    let next = self.nodes[idx as usize].next;
                    self.place(idx);
                    idx = next;
                }
                return true;
            }
        }
        false
    }

    /// Ensures the front event (if any) is exposed in the spill map or
    /// the current batch, advancing the cursor as needed, and returns
    /// where it lives and when it fires. Shared by peek and pop.
    fn prepare_front(&mut self) -> Option<(FrontSlot, SimTime)> {
        loop {
            // Spill ticks are all < cursor, and wheel/batch ticks are
            // all >= cursor, so the spill map always goes first.
            if let Some((&(at, _), _)) = self.spill.first_key_value() {
                return Some((FrontSlot::Spill, SimTime::from_nanos(at)));
            }
            if let Some(&idx) = self.batch.get(self.batch_pos) {
                let at = self.nodes[idx as usize].at;
                return Some((FrontSlot::Batch, SimTime::from_nanos(at)));
            }
            if self.len == 0 {
                return None;
            }
            // Scan level 0 from the cursor's slot within its window.
            let from = (self.cursor & 63) as u32;
            let mask = self.occupied[0] & (!0u64 << from);
            if mask != 0 {
                let slot = u64::from(mask.trailing_zeros());
                self.cursor = (self.cursor & !63) | slot;
                self.collect_batch(slot as usize);
                continue;
            }
            if self.cascade_next() {
                continue;
            }
            // Wheel drained: migrate the earliest overflow horizon in.
            if let Some((&(at, _), _)) = self.overflow.first_key_value() {
                self.cursor = at;
                let horizon = at >> WHEEL_BITS;
                while let Some(entry) = self.overflow.first_entry() {
                    if entry.key().0 >> WHEEL_BITS != horizon {
                        break;
                    }
                    let (_, idx) = entry.remove_entry();
                    self.place(idx);
                }
                continue;
            }
            debug_assert_eq!(self.len, 0);
            return None;
        }
    }

    /// Earliest pending fire time, advancing the wheel cursor (but not
    /// the clock) to find it.
    fn peek_next_at(&mut self) -> Option<SimTime> {
        self.prepare_front().map(|(_, at)| at)
    }

    fn pop_due(&mut self) -> Option<(SimTime, Action<W>)> {
        let (front, at) = self.prepare_front()?;
        let idx = match front {
            FrontSlot::Spill => match self.spill.pop_first() {
                Some((_, idx)) => idx,
                None => return None,
            },
            FrontSlot::Batch => {
                let idx = self.batch[self.batch_pos];
                self.batch_pos += 1;
                idx
            }
        };
        debug_assert!(at >= self.now);
        self.now = at;
        self.len -= 1;
        self.fired += 1;
        let action = self.nodes[idx as usize].action.take();
        self.free(idx);
        action.map(|a| (at, a))
    }
}

/// A complete simulation: a world plus its scheduler.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct Simulation<W> {
    world: W,
    sched: Scheduler<W>,
}

impl<W> Simulation<W> {
    /// Creates a simulation over `world` with the clock at zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. to inspect or reconfigure
    /// between phases of an experiment).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Exclusive access to the scheduler.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W> {
        &mut self.sched
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event at an absolute time. Past times clamp to
    /// `now`; see [`Scheduler::schedule_at`].
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.sched.schedule_at(at, action);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.sched.schedule_in(delay, action);
    }

    /// Fires the next pending event, if any. Returns whether one fired.
    pub fn step(&mut self) -> bool {
        match self.sched.pop_due() {
            Some((_, action)) => {
                action(&mut self.world, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty. Returns the number of events fired.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut fired = 0;
        while self.step() {
            fired += 1;
        }
        fired
    }

    /// Runs until the clock would pass `deadline` (events at exactly
    /// `deadline` still fire) or the queue empties. The clock is advanced
    /// to `deadline` if it ends earlier. Returns the number of events fired.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut fired = 0;
        while self.sched.peek_next_at().is_some_and(|at| at <= deadline) {
            let Some((_, action)) = self.sched.pop_due() else {
                break;
            };
            action(&mut self.world, &mut self.sched);
            fired += 1;
        }
        if self.sched.now < deadline {
            self.sched.now = deadline;
        }
        fired
    }

    /// Fires the next event if it is due at or before `deadline`;
    /// returns whether one fired. Once the queue holds nothing due, the
    /// clock is advanced to `deadline` (matching [`Simulation::run_until`],
    /// which this decomposes one event at a time — callers that observe
    /// each event, e.g. a profiling harness, loop on it instead).
    pub fn step_until(&mut self, deadline: SimTime) -> bool {
        if self.sched.peek_next_at().is_some_and(|at| at <= deadline) {
            if let Some((_, action)) = self.sched.pop_due() {
                action(&mut self.world, &mut self.sched);
                return true;
            }
        }
        if self.sched.now < deadline {
            self.sched.now = deadline;
        }
        false
    }
}

impl<W: std::fmt::Debug> std::fmt::Debug for Simulation<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.sched.now)
            .field("pending", &self.sched.pending())
            .field("world", &self.world)
            .finish()
    }
}

/// The pre-wheel `BinaryHeap` scheduler, kept as a test oracle for the
/// equivalence property test: pop order must match `(at, seq)` exactly,
/// including same-tick tie-breaks.
#[cfg(test)]
mod classic {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Entry {
        at: u64,
        seq: u64,
        id: u32,
    }

    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert so the earliest pops first.
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    /// Minimal stand-in for the old scheduler: same clamp semantics,
    /// same `(at, seq)` ordering, payload reduced to an id.
    pub struct ClassicQueue {
        now: u64,
        next_seq: u64,
        heap: BinaryHeap<Entry>,
    }

    impl ClassicQueue {
        pub fn new() -> Self {
            ClassicQueue {
                now: 0,
                next_seq: 0,
                heap: BinaryHeap::new(),
            }
        }

        pub fn schedule(&mut self, at: u64, id: u32) {
            let at = at.max(self.now);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, id });
        }

        pub fn pop(&mut self) -> Option<(u64, u32)> {
            let entry = self.heap.pop()?;
            self.now = entry.at;
            Some((entry.at, entry.id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        sim.schedule_in(SimDuration::from_us(3), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_in(SimDuration::from_us(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_in(SimDuration::from_us(2), |w: &mut Vec<u32>, _| w.push(2));
        sim.run_until_idle();
        assert_eq!(sim.world(), &[1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let t = SimTime::from_nanos(10);
        for i in 0..100 {
            sim.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run_until_idle();
        assert_eq!(sim.world().len(), 100);
        assert!(sim.world().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = Simulation::new(0u64);
        fn tick(w: &mut u64, sched: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 5 {
                sched.schedule_in(SimDuration::from_us(10), tick);
            }
        }
        sim.schedule_in(SimDuration::from_us(10), tick);
        sim.run_until_idle();
        assert_eq!(*sim.world(), 5);
        assert_eq!(sim.now(), SimTime::from_nanos(50_000));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_us(1), |w: &mut u32, _| *w += 1);
        sim.schedule_in(SimDuration::from_us(10), |w: &mut u32, _| *w += 1);
        let fired = sim.run_until(SimTime::from_nanos(5_000));
        assert_eq!(fired, 1);
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.now(), SimTime::from_nanos(5_000));
        // The later event is still pending and fires on the next run.
        sim.run_until_idle();
        assert_eq!(*sim.world(), 2);
    }

    #[test]
    fn run_until_fires_events_at_exact_deadline() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_us(5), |w: &mut u32, _| *w += 1);
        sim.run_until(SimTime::from_nanos(5_000));
        assert_eq!(*sim.world(), 1);
    }

    #[test]
    fn step_until_decomposes_run_until_exactly() {
        // Same schedule driven by run_until vs a step_until loop must
        // agree on events fired, world state, and final clock.
        let build = || {
            let mut sim = Simulation::new(Vec::<u32>::new());
            for i in [1u32, 3, 5, 9] {
                sim.schedule_in(
                    SimDuration::from_us(i as u64),
                    move |w: &mut Vec<u32>, _| w.push(i),
                );
            }
            sim
        };
        let deadline = SimTime::from_nanos(5_000);
        let mut whole = build();
        let fired = whole.run_until(deadline);
        let mut stepped = build();
        let mut count = 0u64;
        while stepped.step_until(deadline) {
            count += 1;
        }
        assert_eq!(count, fired);
        assert_eq!(stepped.world(), whole.world());
        assert_eq!(stepped.now(), whole.now());
        assert_eq!(stepped.now(), deadline, "clock clamps to the deadline");
        // Events past the deadline stay pending, exactly as run_until.
        stepped.run_until_idle();
        whole.run_until_idle();
        assert_eq!(stepped.world(), whole.world());
        assert_eq!(stepped.world(), &[1, 3, 5, 9]);
    }

    #[test]
    fn scheduling_into_past_clamps_to_now() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_in(SimDuration::from_us(1), |_, sched| {
            sched.schedule_at(SimTime::ZERO, |w: &mut Vec<u64>, s| {
                w.push(s.now().as_nanos());
            });
        });
        sim.run_until_idle();
        // The past-targeted event fired at the clamp time, not at zero.
        assert_eq!(sim.world(), &[1_000]);
        assert_eq!(sim.scheduler_mut().clamped_past(), 1);
    }

    #[test]
    fn try_schedule_at_rejects_past_times() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_us(1), |_, sched| {
            let err = sched
                .try_schedule_at(SimTime::ZERO, |w: &mut u32, _| *w += 1)
                .expect_err("past time must be rejected");
            assert_eq!(err.at, SimTime::ZERO);
            assert_eq!(err.now, SimTime::from_nanos(1_000));
            assert!(err.to_string().contains("past"));
            sched
                .try_schedule_at(SimTime::from_nanos(2_000), |w: &mut u32, _| *w += 1)
                .expect("future time is accepted");
        });
        sim.run_until_idle();
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.scheduler_mut().clamped_past(), 0);
    }

    #[test]
    fn far_future_events_cross_wheel_levels() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        // One event per wheel level, plus two beyond the 2^48 horizon.
        let mut times: Vec<u64> = (0..LEVELS)
            .map(|l| 3u64 << (l as u32 * LEVEL_BITS))
            .collect();
        times.push(1u64 << WHEEL_BITS);
        times.push((1u64 << WHEEL_BITS) + 5);
        times.push(u64::MAX);
        for &t in times.iter().rev() {
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| {
                w.push(t);
            });
        }
        sim.run_until_idle();
        assert_eq!(sim.world(), &times);
        assert_eq!(sim.now(), SimTime::MAX);
    }

    #[test]
    fn events_behind_a_peeked_cursor_still_fire_in_order() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for t in [10_000u64, 20_000] {
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        // Peeking for the deadline check fast-forwards the wheel cursor
        // to the 20 µs event while the clock stops at 15 µs.
        sim.run_until(SimTime::from_nanos(15_000));
        assert_eq!(sim.now(), SimTime::from_nanos(15_000));
        // An event between the clock and the cursor must still precede
        // the 20 µs event (it lands in the spill map).
        sim.schedule_at(SimTime::from_nanos(17_000), |w: &mut Vec<u64>, _| {
            w.push(17_000);
        });
        sim.run_until_idle();
        assert_eq!(sim.world(), &[10_000, 17_000, 20_000]);
    }

    #[test]
    fn arena_recycles_nodes_in_steady_state() {
        let mut sim = Simulation::new(0u64);
        fn tick(w: &mut u64, sched: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 10_000 {
                sched.schedule_in(SimDuration::from_nanos(137), tick);
                sched.schedule_in(SimDuration::from_nanos(61), |_, _| {});
            }
        }
        sim.schedule_in(SimDuration::from_nanos(1), tick);
        for _ in 0..100 {
            sim.step();
        }
        let warm = sim.scheduler_mut().arena_slots();
        sim.run_until_idle();
        assert_eq!(sim.scheduler_mut().arena_slots(), warm);
        assert_eq!(sim.scheduler_mut().events_fired(), 19_999);
        assert!(sim.scheduler_mut().peak_pending() <= 2);
    }

    #[test]
    fn pending_counts_all_tiers() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.schedule_at(SimTime::from_nanos(1), |_, _| {});
        sched.schedule_at(SimTime::from_nanos(1 << 20), |_, _| {});
        sched.schedule_at(SimTime::MAX, |_, _| {});
        assert_eq!(sched.pending(), 3);
        assert_eq!(sched.peak_pending(), 3);
    }

    /// Replays one op sequence on the wheel and the classic heap,
    /// asserting identical pop order (time and identity).
    fn check_equivalence(ops: &[(u64, u8)]) {
        let mut wheel: Scheduler<Vec<(u64, u32)>> = Scheduler::new();
        let mut world: Vec<(u64, u32)> = Vec::new();
        let mut oracle = classic::ClassicQueue::new();
        let mut expected: Vec<(u64, u32)> = Vec::new();
        let pop_both = |wheel: &mut Scheduler<Vec<(u64, u32)>>,
                        world: &mut Vec<(u64, u32)>,
                        oracle: &mut classic::ClassicQueue,
                        expected: &mut Vec<(u64, u32)>| {
            if let Some((at, action)) = wheel.pop_due() {
                action(world, wheel);
                let (oat, oid) = oracle.pop().expect("oracle has an event too");
                assert_eq!(at.as_nanos(), oat);
                expected.push((oat, oid));
            } else {
                assert!(oracle.pop().is_none());
            }
        };
        for (id, &(at, pops)) in ops.iter().enumerate() {
            let t = SimTime::from_nanos(at);
            let this_id = id as u32;
            wheel.schedule_at(t, move |w: &mut Vec<(u64, u32)>, s| {
                w.push((s.now().as_nanos(), this_id));
            });
            oracle.schedule(at, this_id);
            for _ in 0..pops {
                pop_both(&mut wheel, &mut world, &mut oracle, &mut expected);
            }
        }
        loop {
            let before = world.len();
            pop_both(&mut wheel, &mut world, &mut oracle, &mut expected);
            if world.len() == before {
                break;
            }
        }
        assert_eq!(world, expected);
    }

    proptest! {
        /// Random schedules (clustered ticks for ties, far-future and
        /// past-clamped times, interleaved pops) produce exactly the
        /// classic BinaryHeap's pop order on the wheel.
        #[test]
        fn wheel_matches_classic_heap(
            ops in proptest::collection::vec(
                (
                    prop_oneof![
                        0u64..50,
                        0u64..5_000,
                        1u64 << 20..(1u64 << 20) + 100,
                        (1u64 << WHEEL_BITS) - 50..(1u64 << WHEEL_BITS) + 50,
                        any::<u64>(),
                    ],
                    0u8..3,
                ),
                1..120,
            )
        ) {
            check_equivalence(&ops);
        }
    }

    #[test]
    fn wheel_matches_classic_heap_on_dense_ties() {
        // Deterministic worst case: many ties on few ticks with pops
        // interleaved so spill and batch refill paths are exercised.
        let mut ops = Vec::new();
        for i in 0..400u64 {
            ops.push((i % 7 * 64, (i % 3) as u8));
        }
        check_equivalence(&ops);
    }
}
