//! The event loop.
//!
//! A [`Simulation`] owns a *world* (the mutable state of every modeled
//! component) and a [`Scheduler`] (a priority queue of pending events).
//! Events are boxed closures that receive `&mut W` and `&mut Scheduler<W>`
//! so they can mutate state and schedule follow-up events. Ties on the
//! timestamp are broken by insertion order, which makes runs with the same
//! seed bit-for-bit reproducible.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A boxed event body.
type Action<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

/// A pending event: fires at `at`, with insertion order `seq` breaking ties.
struct Entry<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The pending-event queue, passed to every event so it can schedule more.
///
/// # Examples
///
/// ```
/// use bm_sim::{Simulation, SimDuration};
/// let mut sim = Simulation::new(0u32);
/// sim.schedule_in(SimDuration::from_us(1), |w: &mut u32, sched| {
///     *w += 1;
///     // chain a follow-up event
///     sched.schedule_in(SimDuration::from_us(1), |w: &mut u32, _| *w += 10);
/// });
/// sim.run_until_idle();
/// assert_eq!(*sim.world(), 11);
/// ```
pub struct Scheduler<W> {
    now: SimTime,
    next_seq: u64,
    heap: BinaryHeap<Entry<W>>,
}

impl<W> Default for Scheduler<W> {
    fn default() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            next_seq: 0,
            heap: BinaryHeap::new(),
        }
    }
}

impl<W> Scheduler<W> {
    /// Creates an empty scheduler with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `action` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedules `action` to fire `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.schedule_at(self.now + delay, action);
    }

    fn pop_due(&mut self) -> Option<Entry<W>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some(entry)
    }
}

/// A complete simulation: a world plus its scheduler.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct Simulation<W> {
    world: W,
    sched: Scheduler<W>,
}

impl<W> Simulation<W> {
    /// Creates a simulation over `world` with the clock at zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. to inspect or reconfigure
    /// between phases of an experiment).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Exclusive access to the scheduler.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W> {
        &mut self.sched
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.sched.schedule_at(at, action);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.sched.schedule_in(delay, action);
    }

    /// Fires the next pending event, if any. Returns whether one fired.
    pub fn step(&mut self) -> bool {
        match self.sched.pop_due() {
            Some(entry) => {
                (entry.action)(&mut self.world, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty. Returns the number of events fired.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut fired = 0;
        while self.step() {
            fired += 1;
        }
        fired
    }

    /// Runs until the clock would pass `deadline` (events at exactly
    /// `deadline` still fire) or the queue empties. The clock is advanced
    /// to `deadline` if it ends earlier. Returns the number of events fired.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut fired = 0;
        while self.sched.heap.peek().is_some_and(|e| e.at <= deadline) {
            let Some(entry) = self.sched.pop_due() else {
                break;
            };
            (entry.action)(&mut self.world, &mut self.sched);
            fired += 1;
        }
        if self.sched.now < deadline {
            self.sched.now = deadline;
        }
        fired
    }
}

impl<W: std::fmt::Debug> std::fmt::Debug for Simulation<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.sched.now)
            .field("pending", &self.sched.pending())
            .field("world", &self.world)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        sim.schedule_in(SimDuration::from_us(3), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_in(SimDuration::from_us(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_in(SimDuration::from_us(2), |w: &mut Vec<u32>, _| w.push(2));
        sim.run_until_idle();
        assert_eq!(sim.world(), &[1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let t = SimTime::from_nanos(10);
        for i in 0..100 {
            sim.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run_until_idle();
        assert_eq!(sim.world().len(), 100);
        assert!(sim.world().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = Simulation::new(0u64);
        fn tick(w: &mut u64, sched: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 5 {
                sched.schedule_in(SimDuration::from_us(10), tick);
            }
        }
        sim.schedule_in(SimDuration::from_us(10), tick);
        sim.run_until_idle();
        assert_eq!(*sim.world(), 5);
        assert_eq!(sim.now(), SimTime::from_nanos(50_000));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_us(1), |w: &mut u32, _| *w += 1);
        sim.schedule_in(SimDuration::from_us(10), |w: &mut u32, _| *w += 1);
        let fired = sim.run_until(SimTime::from_nanos(5_000));
        assert_eq!(fired, 1);
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.now(), SimTime::from_nanos(5_000));
        // The later event is still pending and fires on the next run.
        sim.run_until_idle();
        assert_eq!(*sim.world(), 2);
    }

    #[test]
    fn run_until_fires_events_at_exact_deadline() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_us(5), |w: &mut u32, _| *w += 1);
        sim.run_until(SimTime::from_nanos(5_000));
        assert_eq!(*sim.world(), 1);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(());
        sim.schedule_in(SimDuration::from_us(1), |_, sched| {
            sched.schedule_at(SimTime::ZERO, |_, _| {});
        });
        sim.run_until_idle();
    }
}
