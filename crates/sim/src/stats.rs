//! Measurement primitives: latency histograms, throughput accounting and
//! time-series recorders.
//!
//! The benchmark harness reports the same metrics fio does — IOPS,
//! bandwidth, average latency, and tail percentiles — so this module is
//! shaped around those.

use crate::time::{SimDuration, SimTime};

/// Number of sub-buckets per power of two; 32 gives ~3% relative error,
/// plenty for percentile reporting.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)
/// Buckets cover values up to 2^40 ns (~18 minutes), far beyond any I/O.
const MAX_EXP: u32 = 40;

/// A log-bucketed latency histogram (HdrHistogram-style, fixed memory).
///
/// Values are recorded in nanoseconds; percentile queries return the
/// upper bound of the containing bucket, so reported percentiles are
/// within ~3% of the true value.
///
/// # Examples
///
/// ```
/// use bm_sim::stats::LatencyHistogram;
/// use bm_sim::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for us in [10u64, 20, 30, 40, 1000] {
///     h.record(SimDuration::from_us(us));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.50) <= SimDuration::from_us(31));
/// assert!(h.percentile(0.99) >= SimDuration::from_us(900));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total_nanos: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; ((MAX_EXP as usize) + 1) * SUB_BUCKETS],
            count: 0,
            total_nanos: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_for(nanos: u64) -> usize {
        if nanos < SUB_BUCKETS as u64 {
            return nanos as usize;
        }
        let exp = 63 - nanos.leading_zeros(); // floor(log2)
        let exp = exp.min(MAX_EXP);
        let shift = exp.saturating_sub(SUB_BITS);
        let sub = ((nanos >> shift) as usize) & (SUB_BUCKETS - 1);
        // Rows below 2^SUB_BITS collapse into the linear region above.
        ((exp - SUB_BITS) as usize + 1) * SUB_BUCKETS + sub
    }

    fn upper_bound_for(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let row = index / SUB_BUCKETS - 1;
        let sub = (index % SUB_BUCKETS) as u64;
        let exp = row as u32 + SUB_BITS;
        let base = 1u64 << exp;
        let width = base >> SUB_BITS;
        base + (sub + 1) * width - 1
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.buckets[Self::index_for(ns)] += 1;
        self.count += 1;
        self.total_nanos += ns as u128;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Merges another histogram into this one. Merging is how
    /// per-tenant histograms roll up into fleet totals: counts, sums
    /// and extremes all combine exactly, so percentiles of the merged
    /// histogram carry the same ~3% bucket error as direct recording.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of all samples (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.total_nanos / self.count as u128) as u64)
    }

    /// Smallest recorded sample (zero if empty).
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min)
        }
    }

    /// Largest recorded sample (zero if empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max)
    }

    /// The value at quantile `q` in `[0, 1]` (zero if empty).
    ///
    /// Edge quantiles are exact, not bucket-rounded: `percentile(0.0)`
    /// returns [`min`](Self::min) and `percentile(1.0)` returns
    /// [`max`](Self::max), since both extremes are tracked precisely.
    /// Interior quantiles return the upper bound of the containing
    /// bucket (within ~3% of the true value), clamped to `max`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` (including NaN).
    pub fn percentile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max();
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_nanos(Self::upper_bound_for(i).min(self.max));
            }
        }
        SimDuration::from_nanos(self.max)
    }
}

/// Accumulates completed-I/O accounting for one workload: operation count,
/// bytes moved, and a latency histogram.
///
/// # Examples
///
/// ```
/// use bm_sim::stats::IoStats;
/// use bm_sim::{SimDuration, SimTime};
///
/// let mut s = IoStats::new();
/// s.record(4096, SimDuration::from_us(80));
/// s.record(4096, SimDuration::from_us(90));
/// let iops = s.iops(SimDuration::from_secs(1));
/// assert_eq!(iops, 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    ops: u64,
    bytes: u64,
    latency: LatencyHistogram,
}

impl IoStats {
    /// Creates empty accounting.
    pub fn new() -> Self {
        IoStats {
            ops: 0,
            bytes: 0,
            latency: LatencyHistogram::new(),
        }
    }

    /// Records one completed operation of `bytes` with end-to-end `latency`.
    pub fn record(&mut self, bytes: u64, latency: SimDuration) {
        self.ops += 1;
        self.bytes += bytes;
        self.latency.record(latency);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.ops += other.ops;
        self.bytes += other.bytes;
        self.latency.merge(&other.latency);
    }

    /// Completed operations.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Operations per second over `elapsed` (zero if `elapsed` is zero).
    pub fn iops(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Bandwidth in MB/s (decimal megabytes, as fio reports) over `elapsed`.
    pub fn bandwidth_mbps(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / secs
        }
    }
}

/// A `(time, value)` series sampled during a run — e.g. the per-second
/// IOPS trace plotted in the paper's Fig. 15.
///
/// # Examples
///
/// ```
/// use bm_sim::stats::TimeSeries;
/// use bm_sim::SimTime;
///
/// let mut ts = TimeSeries::new("iops");
/// ts.push(SimTime::from_nanos(0), 100.0);
/// ts.push(SimTime::from_nanos(1_000_000_000), 110.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.points()[1].1, 110.0);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// All samples in insertion order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The smallest value, if any samples exist.
    pub fn min_value(&self) -> Option<f64> {
        self.points.iter().map(|p| p.1).reduce(f64::min)
    }

    /// The largest value, if any samples exist.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|p| p.1).reduce(f64::max)
    }

    /// The mean value (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        // bm-lint: allow(float-determinism): points is an insertion-ordered Vec, so the summation order is pinned by construction
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_close() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(SimDuration::from_nanos(i * 100)); // 100ns..1ms uniform
        }
        let p50 = h.percentile(0.5).as_nanos() as f64;
        let p99 = h.percentile(0.99).as_nanos() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50 {p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99 {p99}");
        assert_eq!(h.percentile(1.0), h.max());
        assert_eq!(h.min(), SimDuration::from_nanos(100));
    }

    #[test]
    fn histogram_relative_error_bounded() {
        // Every recorded value must land in a bucket whose upper bound is
        // within ~2/SUB_BUCKETS of the value.
        for v in [1u64, 31, 32, 33, 100, 1_000, 77_200, 1_000_000, 40_579_300] {
            let idx = LatencyHistogram::index_for(v);
            let ub = LatencyHistogram::upper_bound_for(idx);
            assert!(ub >= v, "upper bound {ub} < value {v}");
            assert!(
                (ub - v) as f64 <= (v as f64 / SUB_BUCKETS as f64) + 1.0,
                "bucket too wide for {v}: ub {ub}"
            );
        }
    }

    #[test]
    fn histogram_mean_and_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_us(10));
        b.record(SimDuration::from_us(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_us(20));
        assert_eq!(a.max(), SimDuration::from_us(30));
    }

    #[test]
    fn percentile_edges_are_exact() {
        let mut h = LatencyHistogram::new();
        // Values chosen so bucket upper bounds differ from the samples.
        h.record(SimDuration::from_nanos(77_201));
        h.record(SimDuration::from_nanos(1_000_003));
        h.record(SimDuration::from_nanos(40_579_301));
        assert_eq!(h.percentile(0.0), SimDuration::from_nanos(77_201));
        assert_eq!(h.percentile(1.0), SimDuration::from_nanos(40_579_301));
        assert_eq!(h.percentile(0.0), h.min());
        assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn percentile_rejects_out_of_range() {
        LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn merged_rollup_preserves_edges_and_counts() {
        // Per-tenant histograms roll up into a fleet view; the merged
        // extremes and counts must be exact.
        let mut fleet = LatencyHistogram::new();
        let mut tenants = Vec::new();
        for t in 1..=4u64 {
            let mut h = LatencyHistogram::new();
            for i in 0..10 {
                h.record(SimDuration::from_us(t * 100 + i));
            }
            tenants.push(h);
        }
        for h in &tenants {
            fleet.merge(h);
        }
        assert_eq!(fleet.count(), 40);
        assert_eq!(fleet.percentile(0.0), SimDuration::from_us(100));
        assert_eq!(fleet.percentile(1.0), SimDuration::from_us(409));
        // Interior percentile stays within bucket error of the truth
        // (the 20th of 40 samples is 209µs).
        let p50 = fleet.percentile(0.5).as_nanos() as f64;
        assert!((p50 - 209_000.0).abs() / 209_000.0 < 0.05, "p50 {p50}");
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(0.99), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn io_stats_rates() {
        let mut s = IoStats::new();
        for _ in 0..1000 {
            s.record(4096, SimDuration::from_us(100));
        }
        let window = SimDuration::from_ms(100);
        assert_eq!(s.iops(window), 10_000.0);
        let bw = s.bandwidth_mbps(window);
        assert!((bw - 40.96).abs() < 1e-9, "bw {bw}");
        assert_eq!(s.iops(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn io_stats_merge() {
        let mut a = IoStats::new();
        let mut b = IoStats::new();
        a.record(512, SimDuration::from_us(5));
        b.record(1024, SimDuration::from_us(15));
        a.merge(&b);
        assert_eq!(a.ops(), 2);
        assert_eq!(a.bytes(), 1536);
        assert_eq!(a.latency().mean(), SimDuration::from_us(10));
    }

    #[test]
    fn time_series_aggregates() {
        let mut ts = TimeSeries::new("bw");
        assert!(ts.is_empty());
        ts.push(SimTime::from_nanos(0), 2.0);
        ts.push(SimTime::from_nanos(1), 4.0);
        ts.push(SimTime::from_nanos(2), 6.0);
        assert_eq!(ts.min_value(), Some(2.0));
        assert_eq!(ts.max_value(), Some(6.0));
        assert_eq!(ts.mean(), 4.0);
        assert_eq!(ts.name(), "bw");
    }
}
