//! Critical-path blame attribution: *why* was this command slow?
//!
//! [`super::TelemetryRecorder`] records what happened — spans per stage,
//! retries, fault marks. This module turns that record into a verdict:
//! a deterministic per-command breakdown of the root span into
//!
//! * **per-stage service** — time covered by a successful stage span
//!   (nested stages attribute to the innermost, so the SSD's service
//!   interval is `backend`, not double-counted under `dma`),
//! * **retry** — time covered by a failed forwarding attempt,
//! * **crash-recovery** — uncovered time inside an engine-outage window,
//! * **queue-wait** — uncovered time outside any outage (the command sat
//!   in a queue no layer instrumented).
//!
//! The four buckets partition the root window exactly, so per-command
//! blame always sums back to end-to-end latency (the property test in
//! `tests/` holds with and without a fault plan). Fault-window overlap
//! is tracked *alongside* the partition (a command can be in `backend`
//! service *during* an SSD stall; both facts matter) and never
//! double-counts thanks to window coalescing.
//!
//! Per-command blames aggregate into per-`(tenant, opcode)`
//! [`BlameProfile`]s — the per-command analogue of the stage-level
//! bottleneck report — and a "top-k slowest commands with their
//! critical paths" rendering for incident reports.
//!
//! Everything here is a pure function of the recorder and the supplied
//! windows: no scheduling, no randomness, no wall clock.

use super::{CmdId, Span, TelemetryEventKind, TelemetryRecorder, TelemetryStage};
use crate::metrics::Annotation;
use crate::stats::LatencyHistogram;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fault and engine-outage windows the blame pass correlates spans
/// against. Windows are coalesced at construction, so overlap queries
/// never double-count.
#[derive(Debug, Clone, Default)]
pub struct BlameWindows {
    fault: Vec<(SimTime, SimTime)>,
    recovery: Vec<(SimTime, SimTime)>,
}

impl BlameWindows {
    /// Builds from explicit window lists (`recovery` ⊆ engine outages).
    pub fn new(fault: Vec<(SimTime, SimTime)>, recovery: Vec<(SimTime, SimTime)>) -> Self {
        BlameWindows {
            fault: coalesce(fault),
            recovery: coalesce(recovery),
        }
    }

    /// Derives windows from the metrics timeline annotations the
    /// testbed records at fault-injection and recovery time: every
    /// `fault:*` window counts as fault time; `fault:engine-crash`,
    /// `fault:power-loss` and `recovery:*` windows count as engine
    /// outage. Open-ended windows close at `default_end` (run end).
    pub fn from_annotations(annotations: &[Annotation], default_end: SimTime) -> Self {
        let mut fault = Vec::new();
        let mut recovery = Vec::new();
        for a in annotations {
            let end = a.end.unwrap_or(default_end).max(a.start);
            if a.label.starts_with("fault:") {
                fault.push((a.start, end));
            }
            if a.label.starts_with("fault:engine-crash")
                || a.label.starts_with("fault:power-loss")
                || a.label.starts_with("recovery:")
            {
                recovery.push((a.start, end));
            }
        }
        Self::new(fault, recovery)
    }

    /// Coalesced fault windows.
    pub fn fault(&self) -> &[(SimTime, SimTime)] {
        &self.fault
    }

    /// Coalesced engine-outage windows.
    pub fn recovery(&self) -> &[(SimTime, SimTime)] {
        &self.recovery
    }
}

/// Sorts and merges overlapping/adjacent windows; drops empty ones.
fn coalesce(mut windows: Vec<(SimTime, SimTime)>) -> Vec<(SimTime, SimTime)> {
    windows.retain(|(s, e)| e > s);
    windows.sort();
    let mut out: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
    for (s, e) in windows {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// One command's blame breakdown. The partition invariant:
/// `queue_wait + retry + crash_recovery + Σ service == total()`, exact
/// in nanoseconds.
#[derive(Debug, Clone)]
pub struct CommandBlame {
    /// The command.
    pub cmd: CmdId,
    /// Owning tenant.
    pub tenant: u16,
    /// NVMe opcode byte.
    pub opcode: u8,
    /// Root-span start (client submission).
    pub start: SimTime,
    /// Root-span end (completion delivered).
    pub end: SimTime,
    /// Time no instrumented stage covered, outside engine outages.
    pub queue_wait: SimDuration,
    /// Time covered by failed (retried/aborted) stage attempts.
    pub retry: SimDuration,
    /// Uncovered time inside an engine crash/power-loss outage.
    pub crash_recovery: SimDuration,
    /// Successful service time per stage (innermost stage wins when
    /// spans nest, e.g. `backend` inside `dma`).
    pub service: BTreeMap<TelemetryStage, SimDuration>,
    /// Overlap of the root window with (coalesced) fault windows.
    /// Informational — *not* part of the partition.
    pub fault_overlap: SimDuration,
    /// Retry instants recorded against the command.
    pub retries: u32,
}

impl CommandBlame {
    /// End-to-end latency (the root span's duration).
    pub fn total(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Sum of the partition buckets; equals [`Self::total`] by
    /// construction.
    pub fn blame_sum(&self) -> SimDuration {
        let svc: u64 = self.service.values().map(|d| d.as_nanos()).sum();
        SimDuration::from_nanos(
            self.queue_wait.as_nanos()
                + self.retry.as_nanos()
                + self.crash_recovery.as_nanos()
                + svc,
        )
    }

    /// Non-zero blame parts, largest first (ties break on the label so
    /// the order is deterministic).
    pub fn parts(&self) -> Vec<(&'static str, SimDuration)> {
        let mut parts: Vec<(&'static str, SimDuration)> = Vec::new();
        for (stage, d) in &self.service {
            if d.as_nanos() > 0 {
                parts.push((stage.name(), *d));
            }
        }
        for (name, d) in [
            ("queue-wait", self.queue_wait),
            ("retry", self.retry),
            ("crash-recovery", self.crash_recovery),
        ] {
            if d.as_nanos() > 0 {
                parts.push((name, d));
            }
        }
        parts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        parts
    }

    /// The largest blame bucket, if the command took any time at all.
    pub fn dominant(&self) -> Option<(&'static str, SimDuration)> {
        self.parts().into_iter().next()
    }

    /// One-line critical path: `backend=800000ns queue-wait=90000ns ...`.
    pub fn render_path(&self) -> String {
        let mut out = String::new();
        for (i, (name, d)) in self.parts().into_iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{}={}ns", name, d.as_nanos());
        }
        if out.is_empty() {
            out.push_str("(instant)");
        }
        out
    }
}

/// Blame aggregated over every command of one `(tenant, opcode)` pair.
/// End-to-end latencies land in a [`LatencyHistogram`], so profile
/// roll-ups ([`BlameProfile::merge`]) keep exact counts/extremes and
/// bucket-accurate percentiles.
#[derive(Debug, Clone, Default)]
pub struct BlameProfile {
    /// Commands aggregated.
    pub commands: u64,
    /// End-to-end latency distribution.
    pub total: LatencyHistogram,
    /// Summed queue-wait blame.
    pub queue_wait: SimDuration,
    /// Summed retry blame.
    pub retry: SimDuration,
    /// Summed crash-recovery blame.
    pub crash_recovery: SimDuration,
    /// Summed fault-window overlap (informational).
    pub fault_overlap: SimDuration,
    /// Summed retry instants.
    pub retries: u64,
    /// Summed per-stage service blame.
    pub service: BTreeMap<TelemetryStage, SimDuration>,
}

impl BlameProfile {
    /// Folds one command's blame into the profile.
    pub fn add(&mut self, b: &CommandBlame) {
        self.commands += 1;
        self.total.record(b.total());
        self.queue_wait += b.queue_wait;
        self.retry += b.retry;
        self.crash_recovery += b.crash_recovery;
        self.fault_overlap += b.fault_overlap;
        self.retries += u64::from(b.retries);
        for (stage, d) in &b.service {
            let slot = self.service.entry(*stage).or_insert(SimDuration::ZERO);
            *slot += *d;
        }
    }

    /// Merges another profile (tenant → fleet roll-up). Histogram
    /// counts, sums and extremes combine exactly.
    pub fn merge(&mut self, other: &BlameProfile) {
        self.commands += other.commands;
        self.total.merge(&other.total);
        self.queue_wait += other.queue_wait;
        self.retry += other.retry;
        self.crash_recovery += other.crash_recovery;
        self.fault_overlap += other.fault_overlap;
        self.retries += other.retries;
        for (stage, d) in &other.service {
            let slot = self.service.entry(*stage).or_insert(SimDuration::ZERO);
            *slot += *d;
        }
    }

    /// Non-zero blame parts, largest first (deterministic tie-break).
    pub fn parts(&self) -> Vec<(&'static str, SimDuration)> {
        let mut parts: Vec<(&'static str, SimDuration)> = Vec::new();
        for (stage, d) in &self.service {
            if d.as_nanos() > 0 {
                parts.push((stage.name(), *d));
            }
        }
        for (name, d) in [
            ("queue-wait", self.queue_wait),
            ("retry", self.retry),
            ("crash-recovery", self.crash_recovery),
        ] {
            if d.as_nanos() > 0 {
                parts.push((name, d));
            }
        }
        parts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        parts
    }

    /// The profile's largest blame bucket.
    pub fn dominant(&self) -> Option<(&'static str, SimDuration)> {
        self.parts().into_iter().next()
    }

    /// Sum of the partition buckets across all aggregated commands.
    pub fn blame_sum(&self) -> SimDuration {
        let svc: u64 = self.service.values().map(|d| d.as_nanos()).sum();
        SimDuration::from_nanos(
            self.queue_wait.as_nanos()
                + self.retry.as_nanos()
                + self.crash_recovery.as_nanos()
                + svc,
        )
    }
}

/// The full analysis: every completed command's blame plus the
/// per-`(tenant, opcode)` aggregation.
#[derive(Debug, Clone, Default)]
pub struct CriticalPathAnalysis {
    /// Per-command blames, sorted by `(start, cmd)`.
    pub commands: Vec<CommandBlame>,
    /// Aggregated profiles keyed by `(tenant, opcode)`.
    pub profiles: BTreeMap<(u16, u8), BlameProfile>,
}

impl CriticalPathAnalysis {
    /// The `k` slowest commands, slowest first (ties break on `cmd`).
    pub fn top_slowest(&self, k: usize) -> Vec<&CommandBlame> {
        let mut v: Vec<&CommandBlame> = self.commands.iter().collect();
        v.sort_by(|a, b| b.total().cmp(&a.total()).then_with(|| a.cmd.cmp(&b.cmd)));
        v.truncate(k);
        v
    }

    /// All profiles merged into one fleet-wide view.
    pub fn fleet_profile(&self) -> BlameProfile {
        let mut fleet = BlameProfile::default();
        for p in self.profiles.values() {
            fleet.merge(p);
        }
        fleet
    }

    /// One tenant's profiles (opcodes merged).
    pub fn tenant_profile(&self, tenant: u16) -> BlameProfile {
        let mut out = BlameProfile::default();
        for ((t, _), p) in &self.profiles {
            if *t == tenant {
                out.merge(p);
            }
        }
        out
    }

    /// Splits one tenant's commands by fault-window overlap: commands
    /// that ran (partly) inside a fault window vs. entirely outside.
    /// Incident reports use the pair to describe how the critical path
    /// *shifted* during the fault.
    pub fn tenant_fault_split(&self, tenant: u16) -> (BlameProfile, BlameProfile) {
        let mut inside = BlameProfile::default();
        let mut outside = BlameProfile::default();
        for b in &self.commands {
            if b.tenant != tenant {
                continue;
            }
            if b.fault_overlap.as_nanos() > 0 {
                inside.add(b);
            } else {
                outside.add(b);
            }
        }
        (inside, outside)
    }
}

/// Extracts per-command blame and profiles from the recorder.
///
/// Only commands whose root span completed (both endpoints in the ring)
/// are analyzed; still-open commands and spans evicted from the bounded
/// ring are skipped, never guessed at.
pub fn analyze(rec: &TelemetryRecorder, windows: &BlameWindows) -> CriticalPathAnalysis {
    let spans = rec.spans();
    let mut roots: BTreeMap<CmdId, Span> = BTreeMap::new();
    let mut children: BTreeMap<CmdId, Vec<Span>> = BTreeMap::new();
    for s in spans {
        if !s.cmd.is_some() {
            continue;
        }
        if s.stage == TelemetryStage::Command {
            // First completed root wins; a cid reuse allocates a new
            // CmdId, so duplicates only arise from ring pathologies.
            roots.entry(s.cmd).or_insert(s);
        } else {
            children.entry(s.cmd).or_default().push(s);
        }
    }
    let mut retries: BTreeMap<CmdId, u32> = BTreeMap::new();
    rec.events().for_each(|e| {
        if let TelemetryEventKind::Retry { .. } = e.kind {
            *retries.entry(e.cmd).or_insert(0) += 1;
        }
    });

    let mut commands = Vec::with_capacity(roots.len());
    let mut profiles: BTreeMap<(u16, u8), BlameProfile> = BTreeMap::new();
    for (cmd, root) in &roots {
        let kids = children.get(cmd).map(Vec::as_slice).unwrap_or(&[]);
        let blame = blame_one(root, kids, windows, retries.get(cmd).copied().unwrap_or(0));
        profiles
            .entry((blame.tenant, blame.opcode))
            .or_default()
            .add(&blame);
        commands.push(blame);
    }
    commands.sort_by_key(|b| (b.start, b.cmd));
    CriticalPathAnalysis { commands, profiles }
}

/// Clips `(s, e)` to `[t0, t1]`, in nanoseconds; `None` when empty.
fn clip(s: SimTime, e: SimTime, t0: SimTime, t1: SimTime) -> Option<(u64, u64)> {
    let a = s.max(t0).as_nanos();
    let b = e.min(t1).as_nanos();
    (b > a).then_some((a, b))
}

/// Attributes one command's root window across the blame buckets.
///
/// The window is cut at every child-span and outage-window boundary;
/// each elementary segment is charged to exactly one bucket:
/// a failed covering span → retry; else the innermost successful
/// covering span's stage → service; else an engine outage → crash
/// recovery; else queue-wait. Because the segments partition the root
/// window, the buckets sum back to the root duration exactly.
fn blame_one(root: &Span, children: &[Span], windows: &BlameWindows, retries: u32) -> CommandBlame {
    let (t0, t1) = (root.start, root.end);
    let kids: Vec<(u64, u64, TelemetryStage, bool)> = children
        .iter()
        .filter(|s| s.stage != TelemetryStage::Command)
        .filter_map(|s| clip(s.start, s.end, t0, t1).map(|(a, b)| (a, b, s.stage, s.ok)))
        .collect();
    let outages: Vec<(u64, u64)> = windows
        .recovery
        .iter()
        .filter_map(|&(s, e)| clip(s, e, t0, t1))
        .collect();

    let mut cuts: Vec<u64> = Vec::with_capacity(2 + kids.len() * 2 + outages.len() * 2);
    cuts.push(t0.as_nanos());
    cuts.push(t1.as_nanos());
    cuts.extend(kids.iter().flat_map(|k| [k.0, k.1]));
    cuts.extend(outages.iter().flat_map(|w| [w.0, w.1]));
    cuts.sort_unstable();
    cuts.dedup();

    let mut queue_wait = 0u64;
    let mut retry = 0u64;
    let mut crash = 0u64;
    let mut service: BTreeMap<TelemetryStage, u64> = BTreeMap::new();
    for pair in cuts.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let len = b - a;
        let mut failed = false;
        let mut innermost: Option<TelemetryStage> = None;
        for &(ks, ke, stage, ok) in &kids {
            if ks <= a && b <= ke {
                if ok {
                    // Stage order is pipeline depth; the deepest stage
                    // covering the segment owns it.
                    innermost = Some(innermost.map_or(stage, |d| d.max(stage)));
                } else {
                    failed = true;
                }
            }
        }
        if failed {
            retry += len;
        } else if let Some(stage) = innermost {
            *service.entry(stage).or_insert(0) += len;
        } else if outages.iter().any(|&(s, e)| s <= a && b <= e) {
            crash += len;
        } else {
            queue_wait += len;
        }
    }

    let fault_overlap: u64 = windows
        .fault
        .iter()
        .filter_map(|&(s, e)| clip(s, e, t0, t1))
        .map(|(a, b)| b - a)
        .sum();

    CommandBlame {
        cmd: root.cmd,
        tenant: root.tenant,
        opcode: root.opcode,
        start: t0,
        end: t1,
        queue_wait: SimDuration::from_nanos(queue_wait),
        retry: SimDuration::from_nanos(retry),
        crash_recovery: SimDuration::from_nanos(crash),
        service: service
            .into_iter()
            .map(|(k, v)| (k, SimDuration::from_nanos(v)))
            .collect(),
        fault_overlap: SimDuration::from_nanos(fault_overlap),
        retries,
    }
}

/// Renders the top-k slowest commands and every blame profile as an
/// aligned text report (the per-command analogue of the stage-level
/// bottleneck table).
pub fn render_report(analysis: &CriticalPathAnalysis, k: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical paths: {} commands analyzed, top {}",
        analysis.commands.len(),
        k.min(analysis.commands.len()),
    );
    for b in analysis.top_slowest(k) {
        let _ = writeln!(
            out,
            "  cmd={} tenant={} op=0x{:02x} total={}ns path: {}",
            b.cmd.0,
            b.tenant,
            b.opcode,
            b.total().as_nanos(),
            b.render_path(),
        );
    }
    let _ = writeln!(out, "blame profiles ({}):", analysis.profiles.len());
    for ((tenant, opcode), p) in &analysis.profiles {
        let dominant = p.dominant().map(|(n, _)| n).unwrap_or("(idle)");
        let _ = writeln!(
            out,
            "  tenant={} op=0x{:02x} n={} mean={}ns p99={}ns dominant={} fault-overlap={}ns",
            tenant,
            opcode,
            p.commands,
            p.total.mean().as_nanos(),
            p.total.percentile(0.99).as_nanos(),
            dominant,
            p.fault_overlap.as_nanos(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    fn span(cmd: u64, stage: TelemetryStage, start: u64, end: u64, ok: bool) -> Span {
        Span {
            cmd: CmdId(cmd),
            tenant: 0,
            opcode: 0x02,
            stage,
            start: t(start),
            end: t(end),
            ok,
        }
    }

    #[test]
    fn uncovered_time_is_queue_wait_and_nesting_goes_innermost() {
        let root = span(1, TelemetryStage::Command, 0, 100, true);
        let kids = vec![
            span(1, TelemetryStage::Submit, 0, 10, true),
            span(1, TelemetryStage::Dma, 20, 90, true),
            span(1, TelemetryStage::Backend, 30, 80, true),
        ];
        let b = blame_one(&root, &kids, &BlameWindows::default(), 0);
        assert_eq!(b.blame_sum(), b.total());
        assert_eq!(b.queue_wait, SimDuration::from_us(10 + 10)); // 10..20 and 90..100
        assert_eq!(
            b.service[&TelemetryStage::Backend],
            SimDuration::from_us(50)
        );
        // Dma only owns its un-nested margins.
        assert_eq!(b.service[&TelemetryStage::Dma], SimDuration::from_us(20));
        assert_eq!(b.dominant().unwrap().0, "backend");
    }

    #[test]
    fn failed_attempts_become_retry_and_outages_crash_recovery() {
        let root = span(7, TelemetryStage::Command, 0, 100, true);
        let kids = vec![
            span(7, TelemetryStage::Dma, 10, 30, false),
            span(7, TelemetryStage::Dma, 60, 90, true),
        ];
        let windows = BlameWindows::new(
            vec![(t(30), t(55))],
            vec![(t(30), t(55))], // engine outage 30..55
        );
        let b = blame_one(&root, &kids, &windows, 1);
        assert_eq!(b.blame_sum(), b.total());
        assert_eq!(b.retry, SimDuration::from_us(20));
        assert_eq!(b.crash_recovery, SimDuration::from_us(25));
        assert_eq!(b.service[&TelemetryStage::Dma], SimDuration::from_us(30));
        // 0..10 + 55..60 + 90..100 uncovered outside the outage.
        assert_eq!(b.queue_wait, SimDuration::from_us(25));
        assert_eq!(b.fault_overlap, SimDuration::from_us(25));
        assert_eq!(b.retries, 1);
    }

    #[test]
    fn windows_coalesce_so_overlap_never_double_counts() {
        let w = BlameWindows::new(
            vec![
                (t(0), t(50)),
                (t(25), t(60)),
                (t(60), t(70)),
                (t(90), t(90)),
            ],
            Vec::new(),
        );
        assert_eq!(w.fault(), &[(t(0), t(70))]);
        let root = span(1, TelemetryStage::Command, 10, 80, true);
        let b = blame_one(&root, &[], &w, 0);
        assert_eq!(b.fault_overlap, SimDuration::from_us(60)); // 10..70
        assert_eq!(b.queue_wait, b.total());
    }

    #[test]
    fn analyze_builds_profiles_and_top_k() {
        let mut rec = TelemetryRecorder::new(4096);
        for i in 0..4u64 {
            let cmd = rec.begin_command(t(i * 100), 0, i as u16, 0x02);
            rec.span(
                cmd,
                0,
                0,
                0x02,
                TelemetryStage::Backend,
                t(i * 100),
                t(i * 100 + 10 * (i + 1)),
                true,
            );
            rec.end_command(t(i * 100 + 10 * (i + 1) + 5), 0, i as u16, true);
        }
        let analysis = analyze(&rec, &BlameWindows::default());
        assert_eq!(analysis.commands.len(), 4);
        let top = analysis.top_slowest(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].total() >= top[1].total());
        let profile = &analysis.profiles[&(0u16, 0x02u8)];
        assert_eq!(profile.commands, 4);
        assert_eq!(profile.total.count(), 4);
        assert_eq!(profile.dominant().unwrap().0, "backend");
        let report = render_report(&analysis, 2);
        assert!(report.contains("dominant=backend"));
    }

    #[test]
    fn profile_merge_matches_direct_aggregation() {
        // Histogram interaction: merging per-tenant profiles must give
        // the same counts/extremes as aggregating every command into
        // one profile directly.
        let mut direct = BlameProfile::default();
        let mut a = BlameProfile::default();
        let mut b = BlameProfile::default();
        for i in 0..20u64 {
            let root = span(i + 1, TelemetryStage::Command, i * 10, i * 10 + 3 + i, true);
            let blame = blame_one(&root, &[], &BlameWindows::default(), 0);
            direct.add(&blame);
            if i % 2 == 0 {
                a.add(&blame)
            } else {
                b.add(&blame)
            }
        }
        a.merge(&b);
        assert_eq!(a.commands, direct.commands);
        assert_eq!(a.total.count(), direct.total.count());
        assert_eq!(a.total.min(), direct.total.min());
        assert_eq!(a.total.max(), direct.total.max());
        assert_eq!(a.total.percentile(0.5), direct.total.percentile(0.5));
        assert_eq!(a.blame_sum(), direct.blame_sum());
    }

    proptest! {
        /// The partition invariant holds for arbitrary span layouts,
        /// with and without fault/outage windows: per-stage blame plus
        /// the wait buckets always sums to the root span exactly.
        #[test]
        fn blame_partitions_the_root_window(
            root_len in 1u64..500,
            kids in prop::collection::vec(
                (0u64..500, 1u64..120, 0usize..6, any::<bool>()), 0..12),
            outage_raw in (any::<bool>(), 0u64..500, 1u64..200),
        ) {
            let stages = [
                TelemetryStage::Submit,
                TelemetryStage::Fetch,
                TelemetryStage::Translate,
                TelemetryStage::Qos,
                TelemetryStage::Dma,
                TelemetryStage::Backend,
            ];
            let root = span(1, TelemetryStage::Command, 0, root_len, true);
            let children: Vec<Span> = kids
                .into_iter()
                .map(|(s, len, stage, ok)| {
                    span(1, stages[stage], s, s + len, ok)
                })
                .collect();
            let outage = outage_raw.0.then_some((outage_raw.1, outage_raw.2));
            let windows = match outage {
                Some((s, len)) => BlameWindows::new(
                    vec![(t(s), t(s + len))],
                    vec![(t(s), t(s + len))],
                ),
                None => BlameWindows::default(),
            };
            let b = blame_one(&root, &children, &windows, 0);
            prop_assert_eq!(b.blame_sum(), b.total());
            prop_assert!(b.fault_overlap <= b.total());
        }

        /// Histogram merge/percentile interaction under profile
        /// roll-up: split-then-merge equals direct recording for
        /// count/min/max, and percentiles stay within the histogram's
        /// bucket error of the direct path (identical buckets, so they
        /// are equal).
        #[test]
        fn profile_histogram_rollup_is_exact(
            totals in prop::collection::vec(1u64..1_000_000, 1..64),
            split in any::<u64>(),
        ) {
            let mut direct = BlameProfile::default();
            let mut left = BlameProfile::default();
            let mut right = BlameProfile::default();
            for (i, ns) in totals.iter().enumerate() {
                let root = Span {
                    cmd: CmdId(i as u64 + 1),
                    tenant: 0,
                    opcode: 0x02,
                    stage: TelemetryStage::Command,
                    start: SimTime::ZERO,
                    end: SimTime::from_nanos(*ns),
                    ok: true,
                };
                let b = blame_one(&root, &[], &BlameWindows::default(), 0);
                direct.add(&b);
                if (split >> (i % 64)) & 1 == 0 {
                    left.add(&b)
                } else {
                    right.add(&b)
                }
            }
            left.merge(&right);
            prop_assert_eq!(left.total.count(), direct.total.count());
            prop_assert_eq!(left.total.min(), direct.total.min());
            prop_assert_eq!(left.total.max(), direct.total.max());
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(left.total.percentile(q), direct.total.percentile(q));
            }
        }
    }
}
