//! Property tests on the simulation primitives: histogram accuracy,
//! resource conservation, and event-loop ordering.

use bm_sim::resource::{BandwidthLink, FifoServer, MultiServer, TokenBucket};
use bm_sim::stats::LatencyHistogram;
use bm_sim::{SimDuration, SimTime, Simulation};
use proptest::prelude::*;

proptest! {
    /// Reported percentiles are within the histogram's ~3% relative
    /// error of the exact order statistics.
    #[test]
    fn histogram_percentiles_accurate(
        mut values in proptest::collection::vec(1u64..100_000_000, 10..500),
        q in 0.01f64..1.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(SimDuration::from_nanos(v));
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1] as f64;
        let got = h.percentile(q).as_nanos() as f64;
        prop_assert!(
            got >= exact * 0.99 && got <= exact * 1.07,
            "q={q}: got {got}, exact {exact}"
        );
    }

    #[test]
    fn histogram_mean_exact(values in proptest::collection::vec(1u64..10_000_000, 1..200)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(SimDuration::from_nanos(v));
        }
        let exact = values.iter().sum::<u64>() / values.len() as u64;
        prop_assert_eq!(h.mean().as_nanos(), exact);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min().as_nanos(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max().as_nanos(), *values.iter().max().unwrap());
    }

    /// A FIFO server is work-conserving: total completion span equals
    /// total service when fed from time zero.
    #[test]
    fn fifo_server_work_conserving(services in proptest::collection::vec(1u64..100_000, 1..100)) {
        let mut s = FifoServer::new();
        let mut last = SimTime::ZERO;
        for &svc in &services {
            last = s.occupy(SimTime::ZERO, SimDuration::from_nanos(svc));
        }
        prop_assert_eq!(last.as_nanos(), services.iter().sum::<u64>());
    }

    /// A multi-server never finishes later than a single server would,
    /// and never earlier than perfect parallel speedup allows.
    #[test]
    fn multi_server_bounded_by_ideal(
        m in 1usize..16,
        services in proptest::collection::vec(1u64..100_000, 1..100),
    ) {
        let mut multi = MultiServer::new(m);
        let mut last = SimTime::ZERO;
        for &svc in &services {
            let done = multi.occupy(SimTime::ZERO, SimDuration::from_nanos(svc));
            last = last.max(done);
        }
        let total: u64 = services.iter().sum();
        let max_single = *services.iter().max().unwrap();
        prop_assert!(last.as_nanos() <= total);
        let ideal = (total / m as u64).max(max_single);
        prop_assert!(last.as_nanos() >= ideal);
    }

    /// Transfers through a link take exactly bytes/rate in aggregate.
    #[test]
    fn bandwidth_link_conserves_rate(
        rate_mbps in 1u64..10_000,
        sizes in proptest::collection::vec(1u64..1_000_000, 1..50),
    ) {
        let rate = rate_mbps as f64 * 1e6;
        let mut link = BandwidthLink::new(rate);
        let mut last = SimTime::ZERO;
        for &n in &sizes {
            last = link.transfer(SimTime::ZERO, n);
        }
        let total: u64 = sizes.iter().sum();
        let expect = total as f64 / rate;
        let got = last.as_secs_f64();
        prop_assert!((got - expect).abs() < 1e-6 * sizes.len() as f64 + 1e-9,
            "got {got}, expect {expect}");
    }

    /// Token buckets never report availability above capacity and
    /// refill linearly.
    #[test]
    fn token_bucket_never_exceeds_capacity(
        rate in 1.0f64..1e6,
        cap_frac in 0.01f64..10.0,
        steps in proptest::collection::vec((0u64..1_000_000, 0.0f64..100.0), 1..100),
    ) {
        let cap = (rate * cap_frac).max(1.0);
        let mut tb = TokenBucket::new(rate, cap);
        let mut t = 0u64;
        for (gap, amount) in steps {
            t += gap;
            let now = SimTime::from_nanos(t);
            let avail = tb.available(now);
            prop_assert!(avail <= cap + 1e-9, "available {avail} > capacity {cap}");
            let _ = tb.try_consume(now, amount);
        }
    }

    /// Events fire in nondecreasing time order regardless of insertion
    /// order, and ties preserve insertion order.
    #[test]
    fn event_loop_is_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<(u64, usize)>, s| {
                w.push((s.now().as_nanos(), i));
            });
        }
        sim.run_until_idle();
        let fired = sim.into_world();
        prop_assert_eq!(fired.len(), times.len());
        for pair in fired.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "tie order violated");
            }
        }
    }
}
