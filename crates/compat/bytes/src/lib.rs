//! Offline vendored subset of the `bytes` crate.
//!
//! Provides an immutable, cheaply cloneable [`Bytes`] buffer backed by
//! an `Arc<[u8]>`. Cloning and slicing are O(1) reference-count and
//! index arithmetic; no payload bytes are copied after construction.
//! Only the slice of the upstream API this workspace uses is present.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Creates a buffer from a static slice (copies; the upstream
    /// zero-copy static representation is not needed here).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-buffer sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_ref(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let c = b.clone();
        assert!(Arc::ptr_eq(&b.data, &c.data));
        assert!(Arc::ptr_eq(&b.data, &s.data));
    }

    #[test]
    fn equality_and_empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::copy_from_slice(b"abc"), b"abc"[..]);
    }
}
