//! Offline vendored subset of the `criterion` benchmark harness.
//!
//! The build environment cannot download crates, so this crate supplies
//! the minimal API surface the workspace's benches use: [`Criterion`],
//! benchmark groups, `b.iter(..)`, [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! warm-up + timed-batch loop reporting the mean wall-clock time per
//! iteration; there is no statistical analysis or HTML report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(per_iter) => println!("{name:40} {}", fmt_duration(per_iter)),
            None => println!("{name:40} (no measurement)"),
        }
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            prefix: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        self.parent.bench_function(&full, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` performs the measurement.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, storing the mean wall-clock time per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget elapses, counting calls
        // to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 && warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter_est = warm_start.elapsed() / warm_iters.max(1) as u32;
        let batch = (self.measurement_time.as_nanos()
            / (per_iter_est.as_nanos().max(1) * self.sample_size as u128).max(1))
        .clamp(1, 10_000_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
            if total >= self.measurement_time {
                break;
            }
        }
        self.result = Some(total / iters.max(1) as u32);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s/iter", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms/iter", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us/iter", ns as f64 / 1e3)
    } else {
        format!("{ns} ns/iter")
    }
}

/// Declares a benchmark group, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
