//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this
//! crate provides the exact slice of `rand` the workspace uses:
//! [`rngs::SmallRng`] (xoshiro256++ with SplitMix64 seeding, matching
//! `rand_xoshiro` 0.6 as re-exported by `rand` 0.8 on 64-bit targets),
//! the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, `gen::<f64>()` with
//! the 53-bit multiply conversion, and Lemire-style `gen_range` for
//! unsigned integers. The bit streams are faithful to upstream so that
//! seeded simulations reproduce the recorded experiment outputs.

#![forbid(unsafe_code)]

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let v = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&v[..n]);
        }
    }
}

/// A generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 (the
    /// `rand_xoshiro` convention).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Marker for the standard distribution of a type.
pub struct Standard;

/// A distribution that can sample values of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8: one bit from the top of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // rand 0.8 `Standard` for f64: 53 high bits, multiply convert.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = (self.end - self.start) as u64;
                // Lemire widening-multiply rejection, as in rand 0.8's
                // `UniformInt::sample_single`.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = (v as u128).wrapping_mul(range as u128);
                    let (hi, lo) = ((m >> 64) as u64, m as u64);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

impl_unsigned_range!(u64, usize, u32);

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The non-cryptographic generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the 64-bit `SmallRng` of `rand` 0.8.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // All-zero state is a fixed point; reseed as upstream does.
                return Self::seed_from_u64(0);
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_distinct_by_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let x = a.next_u64();
        assert_eq!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    /// Reference vector for xoshiro256++ seeded via SplitMix64(0),
    /// cross-checked against rand_xoshiro 0.6 / the xoshiro reference
    /// implementation.
    #[test]
    fn matches_upstream_stream() {
        let mut rng = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        // SplitMix64(0) produces the state
        // [e220a8397b1dcdaf, 6e789e6aa1b965f4, 06c45d188009454f, f88bb8a8724c81ec]
        let mut s: [u64; 4] = [
            0xe220a8397b1dcdaf,
            0x6e789e6aa1b965f4,
            0x06c45d188009454f,
            0xf88bb8a8724c81ec,
        ];
        let mut expect = Vec::new();
        for _ in 0..3 {
            let r = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            expect.push(r);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
        }
        assert_eq!(first, expect);
    }
}
