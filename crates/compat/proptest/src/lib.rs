//! Offline vendored subset of the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of the proptest API the workspace's tests
//! use: the `proptest!` macro (including `#![proptest_config(..)]`
//! headers), `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, integer,
//! float and boolean strategies, ranges, tuples, `Just`,
//! `prop_oneof!`, `collection::vec`, and `prop::sample::Index`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic case number; runs are reproducible because the RNG is
//! seeded from the test's module path), and no persistence files.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A source of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// Maps a strategy's output through a function.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Extension adapters (the upstream methods live on `Strategy`).
    pub trait StrategyExt: Strategy + Sized {
        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + Sized> StrategyExt for S {}

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    if span == 0 {
                        // Full-width u64 range: any value.
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
    impl_tuple!(A, B, C, D, E, F);

    /// `any::<T>()` support.
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Types with a canonical "arbitrary" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps failures readable.
            (0x20u8 + (rng.below(0x5F)) as u8) as char
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// The inclusive length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helper types.

    use crate::strategy::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "index into empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation and configuration.

    /// Run configuration (`cases` is the only knob this subset uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Why a case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
    }

    /// The deterministic per-test RNG (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test's identifier so every run of a given test
        /// binary generates the same cases.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name: stable across builds and platforms.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            // Widening multiply; bias is irrelevant for test generation.
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::strategy::{any, Arbitrary, Just, Strategy, StrategyExt};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` namespace of the upstream prelude.

        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg => $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            $crate::test_runner::ProptestConfig::default() => $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr => ) => {};
    ($cfg:expr =>
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __case: u32 = 0;
            let mut __attempts: u32 = 0;
            while __case < __cfg.cases {
                __attempts += 1;
                if __attempts > __cfg.cases.saturating_mul(20).max(1000) {
                    panic!(
                        "proptest: too many prop_assume! rejections in {}",
                        stringify!($name)
                    );
                }
                $(let $p = $crate::strategy::Strategy::sample(&($s), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    Ok(()) => __case += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            __case, stringify!($name), msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!($cfg => $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($s) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0u8..=4, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(pair in (1u32..5, 0i64..3), v in crate::collection::vec(0u16..100, 2..6)) {
            prop_assert!(pair.0 >= 1 && pair.0 < 5);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn oneof_and_assume(b in any::<bool>(), idx in any::<crate::sample::Index>()) {
            let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
            let mut rng = TestRng::for_test("inner");
            let v = Strategy::sample(&s, &mut rng);
            prop_assert!((1u8..=3).contains(&v));
            // Rejects roughly half the generated cases, exercising the
            // runner's retry path.
            prop_assume!(b);
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let v = a.next_u64();
        assert_eq!(v, b.next_u64());
        assert_ne!(v, c.next_u64());
    }
}
