//! Microbenchmarks of the timer-wheel scheduler — the event core every
//! experiment run spins on. Throughput here bounds how fast the whole
//! harness can retire simulated work.

use bm_sim::{SimDuration, Simulation};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

struct Counter {
    fired: u64,
}

/// Steady-state schedule/pop churn: a fixed population of near-future
/// events where every pop schedules a successor, the pattern the device
/// models produce. Arena recycling keeps this allocation-free.
fn bench_schedule_pop_churn(c: &mut Criterion) {
    c.bench_function("scheduler_schedule_pop_churn", |b| {
        let mut sim = Simulation::new(Counter { fired: 0 });
        // Warm the arena with a standing population.
        for i in 0..256u64 {
            sim.schedule_in(SimDuration::from_nanos(100 + i), |w: &mut Counter, s| {
                w.fired += 1;
                s.schedule_in(SimDuration::from_nanos(500), |w: &mut Counter, s| {
                    w.fired += 1;
                    s.schedule_in(SimDuration::from_nanos(500), |w: &mut Counter, _| {
                        w.fired += 1;
                    });
                });
            });
        }
        b.iter(|| {
            // Each step fires one event; chained re-scheduling keeps the
            // population alive across iterations.
            if !sim.step() {
                for i in 0..256u64 {
                    sim.schedule_in(SimDuration::from_nanos(100 + i), |w: &mut Counter, s| {
                        w.fired += 1;
                        s.schedule_in(SimDuration::from_nanos(500), |w: &mut Counter, s| {
                            w.fired += 1;
                            s.schedule_in(SimDuration::from_nanos(500), |w: &mut Counter, _| {
                                w.fired += 1;
                            });
                        });
                    });
                }
            }
            black_box(sim.world().fired)
        })
    });
}

/// Burst insert then drain: models a doorbell sweep scheduling a batch
/// of completions, then the loop retiring them in time order.
fn bench_burst_insert_drain(c: &mut Criterion) {
    c.bench_function("scheduler_burst_64_insert_drain", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Counter { fired: 0 });
            for i in 0..64u64 {
                // Mixed horizons: same-tick ties, near future, one far.
                let ns = match i % 4 {
                    0 => 1_000,
                    1 => 1_000 + i,
                    2 => 50_000 + i * 13,
                    _ => 10_000_000 + i,
                };
                sim.schedule_in(SimDuration::from_nanos(ns), |w: &mut Counter, _| {
                    w.fired += 1;
                });
            }
            sim.run_until_idle();
            black_box(sim.world().fired)
        })
    });
}

criterion_group!(benches, bench_schedule_pop_churn, bench_burst_insert_drain);
criterion_main!(benches);
