//! End-to-end simulation throughput: how many simulated 4 KiB I/Os per
//! wall-clock second the full BM-Store world sustains. This bounds the
//! wall time of every table/figure reproduction.

use bm_sim::stats::IoStats;
use bm_sim::SimDuration;
use bm_testbed::{DeviceId, Testbed, TestbedConfig, World};
use bm_workloads::fio::{FioJob, FioSpec, RwMode, SharedStats};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::RefCell;
use std::rc::Rc;

fn run_ios(scheme_cfg: TestbedConfig, sim_ms: u64) -> u64 {
    let spec = FioSpec {
        mode: RwMode::RandRead,
        block_bytes: 4096,
        iodepth: 32,
        numjobs: 1,
        ramp: SimDuration::from_ms(0),
        runtime: SimDuration::from_ms(sim_ms),
    };
    let mut tb = Testbed::new(scheme_cfg);
    let stats: SharedStats = Rc::new(RefCell::new(IoStats::new()));
    let job = FioJob::new(&mut tb, DeviceId(0), spec, 0, 7, Rc::clone(&stats), None);
    let mut world = World::new(tb);
    world.add_client(Box::new(job));
    let _ = world.run(None);
    let ops = stats.borrow().ops();
    ops
}

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("native_10ms_sim", |b| {
        b.iter(|| run_ios(TestbedConfig::native(1), 10))
    });
    g.bench_function("bm_store_10ms_sim", |b| {
        b.iter(|| run_ios(TestbedConfig::bm_store_bare_metal(1), 10))
    });
    g.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_e2e
}
criterion_main!(benches);
