//! Microbenchmarks of the BMS-Engine's per-command hot paths — the
//! operations the RTL performs at 250 MHz line rate. These measure the
//! *simulation's* cost, useful for keeping long experiment runs fast.

use bm_nvme::command::{IoOpcode, Sqe};
use bm_nvme::queue::SubmissionQueue;
use bm_nvme::types::{Cid, Lba, Nsid, QueueId};
use bm_pcie::mctp::{Assembler, Eid, MctpMessage, MessageType};
use bm_pcie::{FunctionId, HostMemory, PciAddr};
use bm_sim::SimTime;
use bm_ssd::SsdId;
use bmstore_core::engine::dma_routing::GlobalPrp;
use bmstore_core::engine::mapping::{MapEntry, MappingTable, ENTRIES_PER_ROW};
use bmstore_core::engine::qos::{NamespaceQos, QosLimit};
use bmstore_core::engine::resources::ResourceUsage;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_mapping(c: &mut Criterion) {
    let mut mt = MappingTable::new(128, 4096);
    for i in 0..24usize {
        mt.install(
            i / ENTRIES_PER_ROW,
            i % ENTRIES_PER_ROW,
            MapEntry::new(i as u8, SsdId((i % 4) as u8)).unwrap(),
        )
        .unwrap();
    }
    let cs = mt.chunk_blocks();
    c.bench_function("lba_mapping_lookup", |b| {
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 12_345) % (24 * cs);
            black_box(mt.map(0, Lba(lba)).unwrap())
        })
    });
}

fn bench_global_prp(c: &mut Criterion) {
    let func = FunctionId::new(77).unwrap();
    c.bench_function("global_prp_tag_untag", |b| {
        let mut addr = 0x1000u64;
        b.iter(|| {
            addr = (addr + 4096) & 0xFFFF_FFFF_F000;
            let tagged = GlobalPrp::tag(PciAddr::new(addr), func, false);
            black_box(GlobalPrp::untag(tagged))
        })
    });
}

fn bench_qos(c: &mut Criterion) {
    c.bench_function("qos_admit_unlimited", |b| {
        let mut qos = NamespaceQos::new(QosLimit::UNLIMITED);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            black_box(qos.admit(SimTime::from_nanos(t), 4096))
        })
    });
    c.bench_function("qos_admit_limited", |b| {
        let mut qos = NamespaceQos::new(QosLimit::iops(1e9));
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            black_box(qos.admit(SimTime::from_nanos(t), 4096))
        })
    });
}

fn bench_rings(c: &mut Criterion) {
    let mut mem = HostMemory::new(16 << 20);
    let base = mem.alloc(1024 * 64).unwrap();
    let mut sq = SubmissionQueue::new(QueueId(1), base, 1024);
    let sqe = Sqe::io(
        IoOpcode::Read,
        Cid(1),
        Nsid::new(1).unwrap(),
        Lba(0),
        8,
        PciAddr::new(0x10_0000),
        PciAddr::NULL,
    );
    c.bench_function("sq_push_fetch", |b| {
        b.iter(|| {
            sq.push(&mut mem, &sqe).unwrap();
            black_box(sq.fetch(&mut mem).unwrap())
        })
    });
}

fn bench_mctp(c: &mut Criterion) {
    let msg = MctpMessage::new(MessageType::NvmeMi, vec![0xA5; 256]);
    c.bench_function("mctp_packetize_assemble", |b| {
        b.iter(|| {
            let packets = msg.packetize(Eid(9), Eid(8), 1);
            let mut asm = Assembler::new();
            let mut out = None;
            for p in packets {
                if let Some(m) = asm.push(p).unwrap() {
                    out = Some(m);
                }
            }
            black_box(out)
        })
    });
}

fn bench_resources(c: &mut Criterion) {
    c.bench_function("fpga_resource_model", |b| {
        let mut n = 1u32;
        b.iter(|| {
            n = n % 6 + 1;
            black_box(ResourceUsage::for_ssds(n))
        })
    });
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_mapping,
        bench_global_prp,
        bench_qos,
        bench_rings,
        bench_mctp,
        bench_resources
}
criterion_main!(benches);
