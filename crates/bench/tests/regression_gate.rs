//! The bench regression gate, demonstrated against the committed
//! baseline: `bench-baseline.json` must parse, must agree with itself,
//! and an injected regression must trip `compare` — the same check
//! `scripts/check.sh` runs via `bench_report --baseline`.

use bm_bench::report::{compare, BenchReport, Tolerances};

fn committed_baseline() -> BenchReport {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench-baseline.json");
    let text = std::fs::read_to_string(path).expect("committed bench-baseline.json");
    BenchReport::from_json(&text).expect("baseline parses")
}

#[test]
fn committed_baseline_parses_and_roundtrips() {
    let baseline = committed_baseline();
    assert_eq!(baseline.schema, 3);
    assert!(baseline.quick, "the committed baseline is a --quick run");
    assert_eq!(baseline.cases.len(), 5);
    for case in &baseline.cases {
        assert!(case.iops > 0.0, "{}: iops must be positive", case.name);
        assert!(
            case.run_s > 0.0,
            "{}: run_s (event-loop wall time) must be positive",
            case.name
        );
        assert!(
            case.hot_kinds.is_empty(),
            "{}: the committed baseline is generated without --profile",
            case.name
        );
        assert!(case.p99_us >= case.p50_us, "{}: p99 < p50", case.name);
        assert!(
            case.events_per_sec > 0.0,
            "{}: events_per_sec must be positive",
            case.name
        );
        assert!(
            case.peak_event_queue > 0.0,
            "{}: peak_event_queue must be positive",
            case.name
        );
        assert!(
            !case.saturated_stage.is_empty(),
            "{}: profiler must name a bottleneck",
            case.name
        );
        assert!(!case.stages.is_empty(), "{}: no stage breakdown", case.name);
    }
    let reparsed = BenchReport::from_json(&baseline.to_json()).expect("roundtrip");
    assert!(compare(&reparsed, &baseline, Tolerances::default()).is_empty());
}

#[test]
fn injected_throughput_regression_trips_the_gate() {
    let baseline = committed_baseline();
    let mut regressed = committed_baseline();
    // A 20% IOPS drop on one case: well outside the 5% throughput budget.
    regressed.cases[0].iops *= 0.8;
    let violations = compare(&regressed, &baseline, Tolerances::default());
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert!(violations[0].contains(&baseline.cases[0].name));
    assert!(violations[0].contains("iops"));
}

#[test]
fn injected_latency_regression_trips_the_gate() {
    let baseline = committed_baseline();
    let mut regressed = committed_baseline();
    // p99 inflated 30%: outside the 10% latency budget.
    regressed.cases[1].p99_us *= 1.3;
    let violations = compare(&regressed, &baseline, Tolerances::default());
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert!(violations[0].contains("p99"));
}

#[test]
fn bottleneck_shift_trips_the_gate() {
    let baseline = committed_baseline();
    let mut shifted = committed_baseline();
    shifted.cases[0].saturated_stage = "dma_routing".to_string();
    let violations = compare(&shifted, &baseline, Tolerances::default());
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert!(violations[0].contains("saturated"));
}

#[test]
fn events_per_sec_collapse_trips_the_gate() {
    let baseline = committed_baseline();
    // The wall-clock smoke gate is one-sided: halving the harness speed
    // trips it, a faster run never does.
    let mut slowed = committed_baseline();
    slowed.cases[0].events_per_sec *= 0.5;
    let violations = compare(&slowed, &baseline, Tolerances::default());
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
    assert!(violations[0].contains("events_per_sec"));
    let mut faster = committed_baseline();
    for case in &mut faster.cases {
        case.events_per_sec *= 3.0;
    }
    assert!(compare(&faster, &baseline, Tolerances::default()).is_empty());
}

#[test]
fn missing_case_trips_the_gate() {
    let baseline = committed_baseline();
    let mut truncated = committed_baseline();
    truncated.cases.pop();
    let violations = compare(&truncated, &baseline, Tolerances::default());
    assert!(!violations.is_empty());
}
