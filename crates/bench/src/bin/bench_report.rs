//! `bench_report` — the regression-gated benchmark envelope.
//!
//! Runs the BM-Store workloads behind Fig. 8/9/10/12 with the metrics
//! registry enabled, and writes `BENCH_BMSTORE.json`: throughput,
//! p50/p99 latency, per-stage utilization from the bottleneck profiler,
//! and peak queue depths. With `--baseline FILE` the fresh report is
//! checked against the committed baseline (see `bm_bench::report`) and
//! the process exits non-zero on any violation — this is the gate
//! `scripts/check.sh` runs.
//!
//! Flags:
//!   --quick                 scaled-down windows (the committed baseline
//!                           is a quick run; compare like with like)
//!   --out FILE              where to write the report
//!                           (default BENCH_BMSTORE.json)
//!   --baseline FILE         compare against FILE, exit 1 on violations
//!   --write-baseline FILE   write the fresh report to FILE too
//!                           (regenerating the committed baseline)
//!   --profile               run each case with the bm-prof profiler on
//!                           and attach its top event kinds (hot_kinds);
//!                           informational, never gated

use bm_bench::report::{compare, BenchCase, BenchReport, Tolerances};
use bm_bench::{fmt_count, fmt_lat, header, quick, row, scaled};
use bm_sim::metrics::names;
use bm_sim::SimTime;
use bm_testbed::{SchemeKind, TestbedConfig};
use bm_workloads::fio::{aggregate, prepare_fio, FioSpec};

fn run_case(name: &str, cfg: TestbedConfig, spec: FioSpec, profile: bool) -> BenchCase {
    let mut cfg = cfg.with_metrics();
    if profile {
        cfg = cfg.with_profiler();
    }
    let started = std::time::Instant::now();
    let rig = prepare_fio(cfg, spec);
    let setup_s = started.elapsed().as_secs_f64();
    let run_started = std::time::Instant::now();
    let (results, world) = rig.run();
    let run_s = run_started.elapsed().as_secs_f64();
    let events_per_sec = if run_s > 0.0 {
        world.events_fired as f64 / run_s
    } else {
        0.0
    };
    let hot_kinds = if profile {
        let snap = world.tb.profiler().snapshot().unwrap_or_default();
        let total = snap.total_run_ns.max(1) as f64;
        let mut ranked: Vec<(String, f64)> = snap
            .scopes
            .iter()
            .map(|s| (s.key(), s.self_ns as f64 / total))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked.truncate(5);
        ranked
    } else {
        Vec::new()
    };
    let agg = aggregate(&results);
    let (stages, saturated, peak_qd) = world
        .tb
        .metrics()
        .read(|m| {
            let end = m.last_sample().unwrap_or(SimTime::ZERO);
            let report = m.bottleneck_report(end, 3);
            let stages: Vec<(String, f64)> = report
                .stages
                .iter()
                .map(|s| (s.stage.clone(), s.occupancy))
                .collect();
            let peak = m
                .gauges()
                .filter(|(k, _)| {
                    k.name == names::BACKEND_INFLIGHT || k.name == names::HOST_SQ_INFLIGHT
                })
                .map(|(_, g)| g.peak())
                .fold(0.0, f64::max);
            (stages, report.saturated.unwrap_or_default(), peak)
        })
        .expect("metrics enabled via with_metrics");
    BenchCase {
        name: name.to_string(),
        iops: agg.iops,
        bandwidth_mbps: agg.bandwidth_mbps,
        p50_us: agg.p50.as_micros_f64(),
        p99_us: agg.p99.as_micros_f64(),
        peak_queue_depth: peak_qd,
        events_per_sec,
        peak_event_queue: world.peak_event_queue as f64,
        saturated_stage: saturated,
        stages,
        setup_s,
        run_s,
        hot_kinds,
    }
}

fn build_report(profile: bool) -> BenchReport {
    let cases = vec![
        run_case(
            "fig08-bare-metal-rand-r-128",
            TestbedConfig::bm_store_bare_metal(1),
            scaled(FioSpec::rand_r_128()),
            profile,
        ),
        run_case(
            "fig08-bare-metal-rand-w-16",
            TestbedConfig::bm_store_bare_metal(1),
            scaled(FioSpec::rand_w_16()),
            profile,
        ),
        run_case(
            "fig09-single-vm-rand-r-128",
            TestbedConfig::single_vm(SchemeKind::BmStore { in_vm: true }),
            scaled(FioSpec::rand_r_128()),
            profile,
        ),
        run_case(
            "fig10-4ssd-seq-r-256",
            TestbedConfig::bm_store_bare_metal(4),
            scaled(FioSpec::seq_r_256()),
            profile,
        ),
        run_case(
            "fig12-multi-vm-rand-r-128",
            TestbedConfig::multi_vm_bm_store(4),
            scaled(FioSpec::rand_r_128()),
            profile,
        ),
    ];
    BenchReport {
        schema: 3,
        quick: quick(),
        cases,
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_BMSTORE.json".to_string());
    let baseline_path = arg_value(&args, "--baseline");
    let write_baseline = arg_value(&args, "--write-baseline");
    let profile = args.iter().any(|a| a == "--profile");

    let report = build_report(profile);

    header(
        "bench_report: BM-Store envelope",
        &["IOPS", "p50", "p99", "peak QD", "Mev/s", "bottleneck"],
    );
    for c in &report.cases {
        row(
            &c.name,
            &[
                fmt_count(c.iops),
                fmt_lat(bm_sim::SimDuration::from_nanos((c.p50_us * 1e3) as u64)),
                fmt_lat(bm_sim::SimDuration::from_nanos((c.p99_us * 1e3) as u64)),
                format!("{:.0}", c.peak_queue_depth),
                format!("{:.2}", c.events_per_sec / 1e6),
                c.saturated_stage.clone(),
            ],
        );
    }
    if profile {
        println!("\nhot kinds (bm-prof self-time fraction of dispatch total):");
        for c in &report.cases {
            let line = c
                .hot_kinds
                .iter()
                .map(|(k, f)| format!("{k} {:.1}%", f * 100.0))
                .collect::<Vec<_>>()
                .join(", ");
            println!("  {:<28} {line}", c.name);
        }
    }

    let json = report.to_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_report: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("\nreport written to {out_path}");

    if let Some(path) = write_baseline {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("bench_report: cannot write baseline {path}: {e}");
            std::process::exit(2);
        }
        println!("baseline regenerated at {path}");
    }

    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_report: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let baseline = match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_report: baseline {path} does not parse: {e}");
                std::process::exit(2);
            }
        };
        let violations = compare(&report, &baseline, Tolerances::default());
        if violations.is_empty() {
            println!("baseline check passed ({path})");
        } else {
            eprintln!("\nbench_report: REGRESSION against {path}:");
            for v in &violations {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
    }
}
