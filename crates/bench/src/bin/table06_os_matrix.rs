//! Table VI — BM-Store across OS/kernel versions.
//!
//! 4K random read, QD16 × 8 jobs, BM-Store bare metal. BM-Store itself
//! is host-independent; the differences come from the host stack.

use bm_bench::{fmt_bw, fmt_count, fmt_lat, header, paper, row, scale};
use bm_host::KernelProfile;
use bm_sim::SimDuration;
use bm_testbed::TestbedConfig;
use bm_workloads::fio::{aggregate, run_fio, FioSpec, RwMode};

fn main() {
    header(
        "Table VI: BM-Store on different OS/kernels (4K randread qd16 x8)",
        &["IOPS", "BW", "avg lat", "paper IOPS", "paper lat"],
    );
    let spec = FioSpec {
        mode: RwMode::RandRead,
        block_bytes: 4096,
        iodepth: 16,
        numjobs: 8,
        ramp: SimDuration::from_ms(50),
        runtime: SimDuration::from_ms(400),
    }
    .scaled(scale());
    for (i, kernel) in KernelProfile::table_vi().into_iter().enumerate() {
        let name = kernel.name;
        let mut cfg = TestbedConfig::bm_store_bare_metal(1).with_kernel(kernel);
        cfg.apply_plug_factor = true;
        let (results, _) = run_fio(cfg, spec);
        let agg = aggregate(&results);
        let (_, p_iops, _p_bw, p_lat) = paper::TABLE_VI[i];
        row(
            name,
            &[
                fmt_count(agg.iops),
                fmt_bw(agg.bandwidth_mbps),
                fmt_lat(agg.avg_latency),
                fmt_count(p_iops),
                format!("{p_lat:.1}us"),
            ],
        );
    }
    println!("\npaper: BM-Store runs unmodified on every OS/kernel with stable performance");
}
