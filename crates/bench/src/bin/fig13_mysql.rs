//! Fig. 13 + Table VIII — MySQL under TPC-C and Sysbench across
//! schemes, reported normalized to VFIO (the paper's baseline).

use bm_bench::{fmt_pct, header, paper, row, scale};
use bm_sim::SimDuration;
use bm_testbed::{SchemeKind, TestbedConfig};
use bm_workloads::oltp::{run_oltp, OltpSpec, OltpStats};

fn run(scheme: SchemeKind, spec: OltpSpec) -> OltpStats {
    let (stats, _) = run_oltp(TestbedConfig::single_vm(scheme), spec);
    stats
}

fn main() {
    let s = scale();
    // --- TPC-C (Fig. 13a) ---
    let spec = OltpSpec::tpcc().scaled(s);
    let window = spec.runtime;
    let v = run(SchemeKind::Vfio, spec.clone());
    let b = run(SchemeKind::BmStore { in_vm: true }, spec.clone());
    let p = run(SchemeKind::SpdkVhost { cores: 1 }, spec);
    header(
        "Fig. 13(a): TPC-C normalized transactions",
        &["tps", "normalized"],
    );
    for (name, st) in [("vfio", &v), ("bm-store", &b), ("spdk-vhost", &p)] {
        row(
            name,
            &[
                format!("{:.0}", st.tps(window)),
                fmt_pct(st.transactions as f64 / v.transactions as f64),
            ],
        );
    }
    println!(
        "paper: BM-Store near native; up to {} more transactions than SPDK",
        bm_bench::fmt_pct(paper::TPCC_SPDK_DEFICIT)
    );

    // --- Sysbench (Fig. 13b + Table VIII) ---
    let spec = OltpSpec::sysbench().scaled(s);
    let window = spec.runtime;
    let v = run(SchemeKind::Vfio, spec.clone());
    let b = run(SchemeKind::BmStore { in_vm: true }, spec.clone());
    let p = run(SchemeKind::SpdkVhost { cores: 1 }, spec);
    header(
        "Fig. 13(b) / Table VIII: Sysbench",
        &["tps", "qps", "norm txns", "avg lat", "norm lat"],
    );
    for (name, st) in [("vfio", &v), ("bm-store", &b), ("spdk-vhost", &p)] {
        row(
            name,
            &[
                format!("{:.0}", st.tps(window)),
                format!("{:.0}", st.queries as f64 / window.as_secs_f64()),
                fmt_pct(st.transactions as f64 / v.transactions as f64),
                format!("{:.0}us", st.latency.mean().as_micros_f64()),
                fmt_pct(st.latency.mean().as_micros_f64() / v.latency.mean().as_micros_f64()),
            ],
        );
    }
    println!(
        "paper: BM-Store {:.1}% below native, {:.1}% above SPDK; latency +2.6% (BM) vs +11.2% (SPDK)",
        paper::SYSBENCH_BM_BELOW_NATIVE * 100.0,
        paper::SYSBENCH_BM_OVER_SPDK * 100.0
    );
    let _ = SimDuration::ZERO;
    let _ = paper::TABLE_VIII_LATENCY;
}
