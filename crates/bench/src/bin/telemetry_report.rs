//! End-to-end telemetry report — per-tenant, per-stage latency
//! breakdown of a BM-Store run, with an out-of-band NVMe-MI scrape.
//!
//! Two closed-loop tenants (one namespace per SSD) run against
//! BM-Store bare-metal with the telemetry recorder enabled while a
//! `FaultPlan` injects a latency spike into tenant 0's SSD. The report
//! prints the per-stage latency table aggregated by the recorder, the
//! per-tenant roll-ups, and the vendor telemetry log pages scraped over
//! MCTP mid-run — the spike is visible in tenant 0's stage table and in
//! its scraped latency buckets while tenant 1 stays clean.
//!
//! Usage: `cargo run --release -p bm-bench --bin telemetry_report --
//! [--quick] [--strict] [--trace FILE] [--jsonl FILE]`
//!
//! `--trace` writes a Chrome `chrome://tracing` / Perfetto JSON file;
//! `--jsonl` dumps the raw event stream one JSON object per line.
//! `--strict` exits non-zero if the run printed any WARNING (dropped
//! telemetry events, NVMe-MI decode failures, crash-recovery noise,
//! past-due clamping) — the CI smoke gate runs with it so silent
//! observability degradation fails the build.

use bm_bench::{header, row};
use bm_nvme::log_page::TelemetryLogPage;
use bm_nvme::types::Lba;
use bm_pcie::FunctionId;
use bm_sim::faults::{FaultKind, FaultPlan};
use bm_sim::stats::LatencyHistogram;
use bm_sim::telemetry::{chrome_trace, jsonl, TelemetryStage};
use bm_sim::{SimDuration, SimTime};
use bm_testbed::{
    BufferId, Client, ClientOutput, Completion, DeviceId, IoOp, IoRequest, Testbed, TestbedConfig,
    World,
};
use bmstore_core::controller::commands::BmsCommand;

struct Loader {
    dev: DeviceId,
    total: u64,
    issued: u64,
    depth: u32,
    buf: BufferId,
}

impl Loader {
    fn next(&mut self) -> IoRequest {
        self.issued += 1;
        IoRequest {
            dev: self.dev,
            op: if self.issued.is_multiple_of(4) {
                IoOp::Write
            } else {
                IoOp::Read
            },
            lba: Lba((self.issued * 7919) % 1_000_000),
            blocks: 1,
            buf: self.buf,
            tag: self.issued,
        }
    }
}

impl Client for Loader {
    fn start(&mut self, _now: SimTime) -> ClientOutput {
        let n = self.depth.min(self.total as u32);
        ClientOutput::submit((0..n).map(|_| self.next()).collect())
    }

    fn on_completion(&mut self, _now: SimTime, _c: Completion) -> ClientOutput {
        if self.issued < self.total {
            ClientOutput::submit(vec![self.next()])
        } else {
            ClientOutput::idle()
        }
    }
}

fn us(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_us(n)
}

fn fmt_us(d: SimDuration) -> String {
    format!("{:.1}", d.as_nanos() as f64 / 1_000.0)
}

fn stat_row(label: &str, h: &LatencyHistogram) {
    row(
        label,
        &[
            format!("{}", h.count()),
            fmt_us(h.mean()),
            fmt_us(h.percentile(0.5)),
            fmt_us(h.percentile(0.99)),
            fmt_us(h.max()),
        ],
    );
}

fn main() {
    let mut quick = false;
    let mut strict = false;
    let mut trace_path: Option<String> = None;
    let mut jsonl_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--strict" => strict = true,
            "--trace" => trace_path = Some(args.next().expect("--trace needs a path")),
            "--jsonl" => jsonl_path = Some(args.next().expect("--jsonl needs a path")),
            other => panic!("unknown argument {other}"),
        }
    }
    // Every WARNING printed below bumps this; `--strict` turns a
    // non-zero count into a non-zero exit for the CI smoke gate.
    let mut warnings = 0usize;
    let per_tenant: u64 = if quick { 600 } else { 3_000 };

    // Tenant i on SSD i; the spike hits SSD 0 only.
    let mut cfg = TestbedConfig::bm_store_bare_metal(2).with_telemetry();
    cfg.fault_plan = FaultPlan::new(0x7E1E).with(
        us(200),
        FaultKind::SsdLatencySpike {
            ssd: 0,
            extra: SimDuration::from_us(300),
            until: us(600),
        },
    );
    let mut tb = Testbed::new(cfg);
    let buf0 = tb.register_buffer(4096);
    let buf1 = tb.register_buffer(4096);
    let mut world = World::new(tb);
    for (i, buf) in [buf0, buf1].into_iter().enumerate() {
        world.add_client(Box::new(Loader {
            dev: DeviceId(i),
            total: per_tenant,
            issued: 0,
            depth: 8,
            buf,
        }));
    }
    // Out-of-band scrapes: one inside the spike window, one after the
    // run drains (both functions each time).
    for at in [us(450), us(1_000_000)] {
        for f in 0..2 {
            world.schedule_command(
                at,
                BmsCommand::QueryTelemetry {
                    func: FunctionId::new(f).expect("valid function"),
                },
            );
        }
    }
    let world = world.run(None);

    let telemetry = world.tb.telemetry();
    telemetry
        .read(|rec| {
            header(
                "per-stage latency (all tenants, µs)",
                &["count", "mean", "p50", "p99", "max"],
            );
            for stage in TelemetryStage::ALL {
                let h = rec.fleet_rollup(stage);
                if !h.is_empty() {
                    stat_row(stage.name(), &h);
                }
            }
            for stage in [TelemetryStage::Command, TelemetryStage::Dma] {
                header(
                    &format!("per-tenant {} latency (µs)", stage.name()),
                    &["count", "mean", "p50", "p99", "max"],
                );
                for (tenant, h) in rec.tenant_rollup(stage) {
                    stat_row(&format!("tenant {tenant}"), &h);
                }
            }
            row(
                "events",
                &[format!(
                    "{} recorded, {} dropped",
                    rec.events().count(),
                    rec.dropped()
                )],
            );
            if rec.dropped() > 0 {
                warnings += 1;
                println!(
                    "WARNING: telemetry recorder dropped {} events — \
                     stage rollups above under-count; raise the recorder \
                     capacity or shorten the window",
                    rec.dropped()
                );
            }
        })
        .expect("telemetry enabled");

    // The controller-side NVMe-MI monitor tracks response payloads that
    // failed to decode; a non-zero count means scraped tables are
    // incomplete and must not be trusted silently.
    if let Some(controller) = world.tb.controller() {
        let decode_failures = controller.monitor().decode_failures();
        row("mi decode", &[format!("{decode_failures} failures")]);
        if decode_failures > 0 {
            warnings += 1;
            println!(
                "WARNING: {decode_failures} NVMe-MI response payloads failed to \
                 decode — the scrape tables below are incomplete"
            );
        }
    }

    // Engine resilience and scheduler-health counters. All zero on this
    // fault plan (a latency spike neither times out nor crashes); any
    // non-zero recovery activity or past-due clamping is surfaced
    // loudly because it means the run's timings carry recovery noise.
    if let Some(engine) = world.tb.engine() {
        let stats = engine.resilience_stats();
        header(
            "engine resilience",
            &["recoveries", "replayed", "aborted", "crashed µs"],
        );
        row(
            "crash recovery",
            &[
                format!("{}", stats.recoveries),
                format!("{}", stats.replayed),
                format!("{}", stats.aborted_on_recovery),
                fmt_us(stats.recovery_time),
            ],
        );
        if stats.recoveries > 0 {
            warnings += 1;
            println!(
                "WARNING: {} crash-recovery cycle(s) ran ({} commands replayed, \
                 {} aborted to the host) — latency tables above include \
                 recovery noise",
                stats.recoveries, stats.replayed, stats.aborted_on_recovery
            );
        }
    }
    row("clamped past", &[format!("{}", world.clamped_past)]);
    if world.clamped_past > 0 {
        warnings += 1;
        println!(
            "WARNING: the scheduler clamped {} past-due event(s) to 'now' — \
             an interpreter scheduled work behind the clock; timing fidelity \
             is degraded for those events",
            world.clamped_past
        );
    }

    // Decode the NVMe-MI scrapes (arrival order: mid f0, mid f1,
    // final f0, final f1).
    let responses = world.mgmt_responses();
    let pages: Vec<TelemetryLogPage> = responses
        .borrow()
        .iter()
        .map(|(_, r)| TelemetryLogPage::from_bytes(&r.payload).expect("log page decodes"))
        .collect();
    assert_eq!(pages.len(), 4, "four scrapes scheduled");
    header(
        "NVMe-MI telemetry scrape",
        &["reads", "writes", "outst", "peak", "mean µs", ">200µs"],
    );
    for (label, page) in ["mid f0", "mid f1", "final f0", "final f1"]
        .iter()
        .zip(&pages)
    {
        let slow: u64 = page.latency_buckets[4..].iter().sum();
        row(
            label,
            &[
                format!("{}", page.reads),
                format!("{}", page.writes),
                format!("{}", page.outstanding),
                format!("{}", page.peak_outstanding),
                format!("{:.1}", page.mean_latency_ns() as f64 / 1_000.0),
                format!("{slow}"),
            ],
        );
    }
    assert!(
        pages[2].latency_buckets[4..].iter().sum::<u64>() > 0,
        "tenant 0's spike must show in its high-latency buckets"
    );
    assert_eq!(
        pages[3].latency_buckets[4..].iter().sum::<u64>(),
        0,
        "tenant 1 was not hit by the spike"
    );

    if let Some(path) = trace_path {
        let trace = telemetry.read(chrome_trace).expect("telemetry enabled");
        std::fs::write(&path, trace).expect("trace file writable");
        println!("\nChrome trace written to {path}");
    }
    if let Some(path) = jsonl_path {
        let dump = telemetry.read(jsonl).expect("telemetry enabled");
        std::fs::write(&path, dump).expect("jsonl file writable");
        println!("event dump written to {path}");
    }

    if strict && warnings > 0 {
        eprintln!("--strict: {warnings} warning(s) above — failing the run");
        std::process::exit(1);
    }
}
