//! Ablation — zero-copy DMA routing vs store-and-forward.
//!
//! The paper's §IV-C motivation: without the global-PRP mechanism,
//! "the data must be transferred to the FPGA memory and then copied to
//! the host memory. These duplicate data copies will seriously affect
//! I/O performance." This bench swaps in a store-and-forward engine
//! whose card DRAM sustains ~9.6 GB/s of copy traffic.

use bm_bench::{fmt_bw, fmt_count, fmt_lat, header, row, scaled};
use bm_testbed::TestbedConfig;
use bm_workloads::fio::{aggregate, run_fio, FioSpec};

/// Effective copy bandwidth of the card's DDR4 (each byte written and
/// read once: ~19.2 GB/s raw halves to ~9.6 GB/s usable).
const CARD_DRAM_BW: f64 = 9.6e9;

fn main() {
    header(
        "Ablation: zero-copy vs store-and-forward (4 SSDs, bare metal)",
        &["IOPS", "BW", "avg lat"],
    );
    for (case, spec) in [
        ("seq-r-256", FioSpec::seq_r_256()),
        ("rand-r-128", FioSpec::rand_r_128()),
    ] {
        let spec = scaled(spec);
        let (zc, _) = run_fio(TestbedConfig::bm_store_bare_metal(4), spec);
        let mut cfg = TestbedConfig::bm_store_bare_metal(4);
        cfg.store_and_forward_bw = Some(CARD_DRAM_BW);
        let (sf, _) = run_fio(cfg, spec);
        let (zc, sf) = (aggregate(&zc), aggregate(&sf));
        row(
            &format!("{case} zero-copy"),
            &[
                fmt_count(zc.iops),
                fmt_bw(zc.bandwidth_mbps),
                fmt_lat(zc.avg_latency),
            ],
        );
        row(
            &format!("{case} copy"),
            &[
                fmt_count(sf.iops),
                fmt_bw(sf.bandwidth_mbps),
                fmt_lat(sf.avg_latency),
            ],
        );
    }
    println!("\npaper: zero-copy DMA routing eliminates the duplicate copies that");
    println!("would otherwise cap multi-SSD bandwidth at the card DRAM's rate");
}
