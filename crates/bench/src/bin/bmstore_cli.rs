//! `bmstore-cli` — run ad-hoc fio-style scenarios against any scheme.
//!
//! ```text
//! bmstore-cli [metrics] [--scheme native|vfio|bm-store|bm-store-vm|spdk[:CORES]|arm]
//!             [--rw randread|randwrite|seqread|seqwrite|rw:READFRAC]
//!             [--bs BYTES] [--iodepth N] [--numjobs N] [--ssds N]
//!             [--runtime-ms N] [--seed N] [--qos-iops N] [--out FILE]
//! ```
//!
//! The `metrics` subcommand runs the same scenario with the time-series
//! registry enabled (the metrics twin of `--telemetry` plumbing) and
//! dumps the Prometheus exposition plus the bottleneck table after the
//! fio summary; `--out FILE` writes the exposition to FILE instead of
//! stdout.
//!
//! Example: the paper's rand-r-128 on BM-Store with a 50 K IOPS cap:
//!
//! ```bash
//! cargo run --release -p bm-bench --bin bmstore_cli -- \
//!     --scheme bm-store --rw randread --iodepth 128 --qos-iops 50000
//! ```

use bm_sim::metrics::{prometheus, render_bottleneck};
use bm_sim::{SimDuration, SimTime};
use bm_testbed::{SchemeKind, TestbedConfig};
use bm_workloads::fio::{aggregate, run_fio, FioSpec, RwMode};
use bmstore_core::engine::qos::QosLimit;
use std::process::exit;

struct Args {
    metrics: bool,
    scheme: String,
    rw: String,
    bs: u64,
    iodepth: u32,
    numjobs: u32,
    ssds: usize,
    runtime_ms: u64,
    seed: u64,
    qos_iops: u32,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bmstore-cli [metrics] [--scheme native|vfio|bm-store|bm-store-vm|spdk[:CORES]|arm]\n\
         \x20                  [--rw randread|randwrite|seqread|seqwrite|rw:READFRAC]\n\
         \x20                  [--bs BYTES] [--iodepth N] [--numjobs N] [--ssds N]\n\
         \x20                  [--runtime-ms N] [--seed N] [--qos-iops N] [--out FILE]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        metrics: false,
        scheme: "bm-store".into(),
        rw: "randread".into(),
        bs: 4096,
        iodepth: 128,
        numjobs: 4,
        ssds: 1,
        runtime_ms: 500,
        seed: 42,
        qos_iops: 0,
        out: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("metrics") {
        args.metrics = true;
        it.next();
    }
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scheme" => args.scheme = value(),
            "--rw" => args.rw = value(),
            "--bs" => args.bs = value().parse().unwrap_or_else(|_| usage()),
            "--iodepth" => args.iodepth = value().parse().unwrap_or_else(|_| usage()),
            "--numjobs" => args.numjobs = value().parse().unwrap_or_else(|_| usage()),
            "--ssds" => args.ssds = value().parse().unwrap_or_else(|_| usage()),
            "--runtime-ms" => args.runtime_ms = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--qos-iops" => args.qos_iops = value().parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn scheme_kind(s: &str) -> SchemeKind {
    match s {
        "native" => SchemeKind::Native,
        "vfio" => SchemeKind::Vfio,
        "bm-store" => SchemeKind::BmStore { in_vm: false },
        "bm-store-vm" => SchemeKind::BmStore { in_vm: true },
        "arm" => SchemeKind::ArmOffload,
        other => match other.strip_prefix("spdk") {
            Some(rest) => {
                let cores = rest
                    .strip_prefix(':')
                    .map(|c| c.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(1);
                SchemeKind::SpdkVhost { cores }
            }
            None => {
                eprintln!("unknown scheme {other}");
                usage()
            }
        },
    }
}

fn rw_mode(s: &str) -> RwMode {
    match s {
        "randread" => RwMode::RandRead,
        "randwrite" => RwMode::RandWrite,
        "seqread" => RwMode::SeqRead,
        "seqwrite" => RwMode::SeqWrite,
        other => match other.strip_prefix("rw:") {
            Some(frac) => RwMode::RandRw {
                read_frac: frac.parse().unwrap_or_else(|_| usage()),
            },
            None => {
                eprintln!("unknown rw mode {other}");
                usage()
            }
        },
    }
}

fn main() {
    let args = parse_args();
    let kind = scheme_kind(&args.scheme);
    let mut cfg = match &kind {
        SchemeKind::Native => TestbedConfig::native(args.ssds),
        SchemeKind::BmStore { in_vm: false } => TestbedConfig::bm_store_bare_metal(args.ssds),
        other => {
            let mut c = TestbedConfig::single_vm(other.clone());
            c.ssds = args.ssds;
            c.devices = (0..args.ssds)
                .map(|i| bm_testbed::DeviceSpec::whole_disk(i as u8))
                .collect();
            c
        }
    }
    .with_seed(args.seed);
    if args.metrics {
        cfg = cfg.with_metrics();
    }
    if args.qos_iops > 0 {
        for d in &mut cfg.devices {
            d.qos = QosLimit::iops(args.qos_iops as f64);
        }
    }
    let spec = FioSpec {
        mode: rw_mode(&args.rw),
        block_bytes: args.bs,
        iodepth: args.iodepth,
        numjobs: args.numjobs,
        ramp: SimDuration::from_ms(args.runtime_ms / 10),
        runtime: SimDuration::from_ms(args.runtime_ms),
    };
    println!(
        "scheme={} rw={} bs={} iodepth={} numjobs={} ssds={} runtime={}ms qos_iops={}",
        args.scheme,
        args.rw,
        args.bs,
        args.iodepth,
        args.numjobs,
        args.ssds,
        args.runtime_ms,
        args.qos_iops
    );
    let (results, world) = run_fio(cfg, spec);
    for (i, r) in results.iter().enumerate() {
        println!(
            "dev{i}: {:>9.0} IOPS  {:>8.1} MB/s  avg {:>9.1} us  p50 {:>9.1}  p99 {:>9.1}  p99.9 {:>9.1}",
            r.iops,
            r.bandwidth_mbps,
            r.avg_latency.as_micros_f64(),
            r.p50.as_micros_f64(),
            r.p99.as_micros_f64(),
            r.p999.as_micros_f64(),
        );
    }
    let agg = aggregate(&results);
    println!(
        "total: {:>9.0} IOPS  {:>8.1} MB/s  avg {:>9.1} us",
        agg.iops,
        agg.bandwidth_mbps,
        agg.avg_latency.as_micros_f64()
    );
    let polling = world.tb.polling_cpu_busy();
    if polling > SimDuration::ZERO {
        println!(
            "host polling CPU burnt: {:.3} core-seconds",
            polling.as_secs_f64()
        );
    }
    if args.metrics {
        let dumped = world.tb.metrics().read(|m| {
            let exposition = prometheus(m);
            let end = m.last_sample().unwrap_or(SimTime::ZERO);
            let table = render_bottleneck(&m.bottleneck_report(end, 5));
            (exposition, table)
        });
        match dumped {
            Some((exposition, table)) => {
                match &args.out {
                    Some(path) => {
                        if let Err(e) = std::fs::write(path, &exposition) {
                            eprintln!("cannot write {path}: {e}");
                            exit(2);
                        }
                        println!("\nprometheus exposition written to {path}");
                    }
                    None => println!("\n{exposition}"),
                }
                println!("{table}");
            }
            None => eprintln!("metrics registry unavailable"),
        }
    }
}
