//! `bmstore-cli` — run ad-hoc fio-style scenarios against any scheme.
//!
//! ```text
//! bmstore-cli [metrics] [--scheme native|vfio|bm-store|bm-store-vm|spdk[:CORES]|arm]
//!             [--rw randread|randwrite|seqread|seqwrite|rw:READFRAC]
//!             [--bs BYTES] [--iodepth N] [--numjobs N] [--ssds N]
//!             [--runtime-ms N] [--seed N] [--qos-iops N] [--out FILE]
//! ```
//!
//! The `metrics` subcommand runs the same scenario with the time-series
//! registry enabled (the metrics twin of `--telemetry` plumbing) and
//! dumps the Prometheus exposition plus the bottleneck table after the
//! fio summary; `--out FILE` writes the exposition to FILE instead of
//! stdout.
//!
//! The `chaos` subcommand drives the seeded chaos harness:
//!
//! ```text
//! bmstore-cli chaos run [--seeds N] [--base-seed N]
//!                       [--policy abort-to-host|quiesce-replay]
//!                       [--sabotage] [--out FILE]
//! bmstore-cli chaos replay FILE
//! ```
//!
//! `chaos run` sweeps N seeds of generated fault plans through the
//! invariant oracles; on failure it delta-debugs the first failing plan
//! to a minimal repro and writes/prints the repro artifact (with the
//! observed replay's incident report attached). `chaos replay`
//! re-executes a saved artifact bit-identically and reports the
//! violations it (still) trips. Exit status is non-zero when any oracle
//! fired.
//!
//! The `slo` subcommand runs a canned two-tenant SSD-stall scenario
//! with the per-tenant SLO engine armed and prints the alert log plus
//! the deterministic incident report:
//!
//! ```text
//! bmstore-cli slo [--smoke] [--seed N] [--ios N] [--top K] [--out FILE]
//! ```
//!
//! `--smoke` is the CI gate: it runs the scenario twice and exits
//! non-zero unless exactly one latency alert fires, both runs render
//! byte-identical incident reports, the report parses, and tenant 0's
//! blame profile names the stalled stage.
//!
//! The `prof` subcommand runs the fig. 8 bare-metal BM-Store case with
//! the `bm-prof` wall-clock self-profiler and the counting allocator
//! armed, printing the top-k self-time table:
//!
//! ```text
//! bmstore-cli prof [--quick] [--seed N] [--top K]
//!                  [--folded FILE] [--json FILE] [--smoke]
//! ```
//!
//! `--folded` writes flamegraph.pl-compatible folded stacks; `--json`
//! writes the stable-schema report. `--smoke` is the CI gate: it runs
//! the case profiler-off and profiler-on, exits non-zero unless the
//! figure output is byte-identical, both export formats parse, and the
//! attributed self-time sums to the measured dispatch total.
//!
//! Example: the paper's rand-r-128 on BM-Store with a 50 K IOPS cap:
//!
//! ```bash
//! cargo run --release -p bm-bench --bin bmstore_cli -- \
//!     --scheme bm-store --rw randread --iodepth 128 --qos-iops 50000
//! ```

use bm_sim::faults::{FaultKind, FaultPlan};
use bm_sim::metrics::{prometheus, render_bottleneck};
use bm_sim::slo::{parse_incident, AlertState, SloConfig, SloSpec};
use bm_sim::{SimDuration, SimTime};
use bm_testbed::{SchemeKind, TestbedConfig};
use bm_workloads::fio::{aggregate, run_fio, FioSpec, RwMode};
use bmstore_core::engine::qos::QosLimit;
use std::process::exit;

struct Args {
    metrics: bool,
    scheme: String,
    rw: String,
    bs: u64,
    iodepth: u32,
    numjobs: u32,
    ssds: usize,
    runtime_ms: u64,
    seed: u64,
    qos_iops: u32,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bmstore-cli [metrics] [--scheme native|vfio|bm-store|bm-store-vm|spdk[:CORES]|arm]\n\
         \x20                  [--rw randread|randwrite|seqread|seqwrite|rw:READFRAC]\n\
         \x20                  [--bs BYTES] [--iodepth N] [--numjobs N] [--ssds N]\n\
         \x20                  [--runtime-ms N] [--seed N] [--qos-iops N] [--out FILE]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        metrics: false,
        scheme: "bm-store".into(),
        rw: "randread".into(),
        bs: 4096,
        iodepth: 128,
        numjobs: 4,
        ssds: 1,
        runtime_ms: 500,
        seed: 42,
        qos_iops: 0,
        out: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("metrics") {
        args.metrics = true;
        it.next();
    }
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scheme" => args.scheme = value(),
            "--rw" => args.rw = value(),
            "--bs" => args.bs = value().parse().unwrap_or_else(|_| usage()),
            "--iodepth" => args.iodepth = value().parse().unwrap_or_else(|_| usage()),
            "--numjobs" => args.numjobs = value().parse().unwrap_or_else(|_| usage()),
            "--ssds" => args.ssds = value().parse().unwrap_or_else(|_| usage()),
            "--runtime-ms" => args.runtime_ms = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--qos-iops" => args.qos_iops = value().parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn scheme_kind(s: &str) -> SchemeKind {
    match s {
        "native" => SchemeKind::Native,
        "vfio" => SchemeKind::Vfio,
        "bm-store" => SchemeKind::BmStore { in_vm: false },
        "bm-store-vm" => SchemeKind::BmStore { in_vm: true },
        "arm" => SchemeKind::ArmOffload,
        other => match other.strip_prefix("spdk") {
            Some(rest) => {
                let cores = rest
                    .strip_prefix(':')
                    .map(|c| c.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(1);
                SchemeKind::SpdkVhost { cores }
            }
            None => {
                eprintln!("unknown scheme {other}");
                usage()
            }
        },
    }
}

fn rw_mode(s: &str) -> RwMode {
    match s {
        "randread" => RwMode::RandRead,
        "randwrite" => RwMode::RandWrite,
        "seqread" => RwMode::SeqRead,
        "seqwrite" => RwMode::SeqWrite,
        other => match other.strip_prefix("rw:") {
            Some(frac) => RwMode::RandRw {
                read_frac: frac.parse().unwrap_or_else(|_| usage()),
            },
            None => {
                eprintln!("unknown rw mode {other}");
                usage()
            }
        },
    }
}

fn chaos_usage() -> ! {
    eprintln!(
        "usage: bmstore-cli chaos run [--seeds N] [--base-seed N]\n\
         \x20                            [--policy abort-to-host|quiesce-replay]\n\
         \x20                            [--sabotage] [--out FILE]\n\
         \x20      bmstore-cli chaos replay FILE"
    );
    exit(2)
}

/// `chaos run`: N-seed campaign, shrink + artifact on failure.
fn chaos_run(mut it: std::env::Args) -> ! {
    let mut seeds = 25usize;
    let mut base_seed = 0xC4A05u64;
    let mut cfg = bm_chaos::ChaosConfig::abort_to_host();
    let mut out: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| chaos_usage());
        match flag.as_str() {
            "--seeds" => seeds = value().parse().unwrap_or_else(|_| chaos_usage()),
            "--base-seed" => base_seed = value().parse().unwrap_or_else(|_| chaos_usage()),
            "--policy" => {
                cfg = match value().as_str() {
                    "abort-to-host" => bm_chaos::ChaosConfig::abort_to_host(),
                    "quiesce-replay" => bm_chaos::ChaosConfig::quiesce_replay(),
                    _ => chaos_usage(),
                }
            }
            "--sabotage" => cfg.sabotage_drop_journal_tail = true,
            "--out" => out = Some(value()),
            _ => chaos_usage(),
        }
    }
    println!(
        "chaos campaign: {seeds} seeds from {base_seed}, policy {:?}, sabotage {}",
        cfg.fail_policy, cfg.sabotage_drop_journal_tail
    );
    let report = bm_chaos::run_campaign(&cfg, base_seed, seeds);
    println!(
        "{} cases: {} passed, {} failed; {} I/Os, {} faults, {} recoveries",
        report.cases,
        report.passed,
        report.failures.len(),
        report.total_issued,
        report.total_faults,
        report.total_recoveries
    );
    let Some(first) = report.failures.first() else {
        println!("all oracles held on every seed");
        exit(0)
    };
    for f in &report.failures {
        println!("seed {} FAILED:", f.seed);
        for v in &f.report.violations {
            println!("  {v}");
        }
    }
    println!(
        "shrinking seed {} ({} events) ...",
        first.seed,
        first.plan.events().len()
    );
    let shrunk = bm_chaos::shrink_failing_case(&cfg, &first.plan);
    let artifact = bm_chaos::ReproArtifact::new(&cfg, shrunk);
    println!("minimal repro: {} events", artifact.plan.events().len());
    // Replay the minimal plan once more with observability on and bake
    // the incident report (alerts + fault windows + blame + tripped
    // oracles) into the artifact.
    let (_, incident) = bm_chaos::run_case_observed(&cfg, &artifact.plan);
    let artifact = artifact.with_incident(&incident);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, artifact.to_text()) {
                eprintln!("cannot write {path}: {e}");
            } else {
                println!("repro artifact written to {path}");
            }
        }
        None => print!("{}", artifact.to_text()),
    }
    exit(1)
}

/// `chaos replay FILE`: re-execute a saved repro artifact.
fn chaos_replay(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(2)
    });
    let artifact = bm_chaos::ReproArtifact::from_text(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(2)
    });
    println!(
        "replaying seed {} ({} events, policy {:?}, sabotage {})",
        artifact.plan.seed(),
        artifact.plan.events().len(),
        artifact.fail_policy,
        artifact.sabotage
    );
    let report = artifact.replay();
    println!("{}", report.summary());
    for v in &report.violations {
        println!("  {v}");
    }
    exit(i32::from(!report.passed()))
}

fn chaos_main(mut it: std::env::Args) -> ! {
    match it.next().as_deref() {
        Some("run") => chaos_run(it),
        Some("replay") => match it.next() {
            Some(path) => chaos_replay(&path),
            None => chaos_usage(),
        },
        _ => chaos_usage(),
    }
}

/// Closed-loop tenant for the `slo` scenario: keeps `depth` reads in
/// flight until `total` have completed.
struct SloLoader {
    dev: bm_testbed::DeviceId,
    total: u64,
    issued: u64,
    buf: bm_testbed::BufferId,
}

impl SloLoader {
    fn next(&mut self) -> bm_testbed::IoRequest {
        self.issued += 1;
        bm_testbed::IoRequest {
            dev: self.dev,
            op: bm_testbed::IoOp::Read,
            lba: bm_nvme::types::Lba((self.issued * 7919) % 1_000_000),
            blocks: 1,
            buf: self.buf,
            tag: self.issued,
        }
    }
}

impl bm_testbed::Client for SloLoader {
    fn start(&mut self, _now: SimTime) -> bm_testbed::ClientOutput {
        let n = 8u64.min(self.total) as usize;
        bm_testbed::ClientOutput::submit((0..n).map(|_| self.next()).collect())
    }

    fn on_completion(
        &mut self,
        _now: SimTime,
        _c: bm_testbed::Completion,
    ) -> bm_testbed::ClientOutput {
        if self.issued < self.total {
            bm_testbed::ClientOutput::submit(vec![self.next()])
        } else {
            bm_testbed::ClientOutput::idle()
        }
    }
}

/// Where the canned `slo` scenario stalls SSD 0 (tenant 0's back-end).
const SLO_STALL_FROM: SimDuration = SimDuration::from_us(200);
const SLO_STALL_UNTIL: SimDuration = SimDuration::from_us(800);

/// Runs the canned SSD-stall scenario: two closed-loop tenants, one
/// latency SLO on tenant 0, a 600 µs stall on tenant 0's SSD. Returns
/// the drained world with telemetry, metrics, and alert log populated.
fn slo_scenario(seed: u64, per_tenant: u64) -> bm_testbed::World {
    let mut cfg = TestbedConfig::bm_store_bare_metal(2)
        .with_seed(seed)
        .with_telemetry()
        .with_slo(
            SloConfig::new().with_spec(
                SloSpec::latency(0, SimDuration::from_us(200))
                    .with_windows(SimDuration::from_us(100), SimDuration::from_us(400)),
            ),
        );
    cfg.fault_plan = FaultPlan::new(seed ^ 0x510).with(
        SimTime::ZERO + SLO_STALL_FROM,
        FaultKind::SsdStall {
            ssd: 0,
            until: SimTime::ZERO + SLO_STALL_UNTIL,
        },
    );
    let mut tb = bm_testbed::Testbed::new(cfg);
    let buf0 = tb.register_buffer(4096);
    let buf1 = tb.register_buffer(4096);
    let mut world = bm_testbed::World::new(tb);
    for (i, buf) in [buf0, buf1].into_iter().enumerate() {
        world.add_client(Box::new(SloLoader {
            dev: bm_testbed::DeviceId(i),
            total: per_tenant,
            issued: 0,
            buf,
        }));
    }
    world.run(None)
}

fn slo_usage() -> ! {
    eprintln!("usage: bmstore-cli slo [--smoke] [--seed N] [--ios N] [--top K] [--out FILE]");
    exit(2)
}

/// `slo --smoke`: the CI gate. Runs the scenario twice and checks the
/// alert/incident invariants the PR promises; prints what failed.
fn slo_smoke(seed: u64, per_tenant: u64) -> ! {
    let world = slo_scenario(seed, per_tenant);
    let incident = world.incident_report(&[], 3);
    let mut failures = Vec::new();

    let fires: Vec<_> = world
        .slo_alerts()
        .iter()
        .filter(|a| a.state == AlertState::Fire)
        .collect();
    if fires.len() != 1 {
        failures.push(format!(
            "expected exactly 1 fired alert, got {}: {:?}",
            fires.len(),
            world
                .slo_alerts()
                .iter()
                .map(|a| a.render())
                .collect::<Vec<_>>()
        ));
    }
    match parse_incident(&incident) {
        Ok(s) => {
            if s.alerts != world.slo_alerts().len() as u64 {
                failures.push(format!(
                    "incident claims {} alerts, world logged {}",
                    s.alerts,
                    world.slo_alerts().len()
                ));
            }
        }
        Err(e) => failures.push(format!("incident report does not parse: {e}")),
    }
    match world.critical_path() {
        Some(analysis) => {
            let profile = analysis.tenant_profile(0);
            match profile.dominant() {
                Some(("backend", _)) => {}
                other => failures.push(format!(
                    "tenant 0 blame should be dominated by the stalled backend, got {other:?}"
                )),
            }
            if profile.fault_overlap == SimDuration::ZERO {
                failures.push("tenant 0 saw no fault-window overlap".into());
            }
        }
        None => failures.push("no critical-path analysis (telemetry off?)".into()),
    }

    // Determinism: a second run must render the identical incident.
    let again = slo_scenario(seed, per_tenant);
    if again.incident_report(&[], 3) != incident {
        failures.push("incident report differs between identical runs".into());
    }
    let alerts: Vec<String> = world.slo_alerts().iter().map(|a| a.render()).collect();
    let alerts_again: Vec<String> = again.slo_alerts().iter().map(|a| a.render()).collect();
    if alerts != alerts_again {
        failures.push("alert sequence differs between identical runs".into());
    }

    if failures.is_empty() {
        println!(
            "slo smoke OK: {} alert(s), incident parses, blame names the stalled stage",
            world.slo_alerts().len()
        );
        exit(0)
    }
    for f in &failures {
        eprintln!("slo smoke FAILED: {f}");
    }
    print!("{incident}");
    exit(1)
}

fn slo_main(mut it: std::env::Args) -> ! {
    let mut smoke = false;
    let mut seed = 0x510Eu64;
    let mut per_tenant = 600u64;
    let mut top = 5usize;
    let mut out: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| slo_usage());
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--seed" => seed = value().parse().unwrap_or_else(|_| slo_usage()),
            "--ios" => per_tenant = value().parse().unwrap_or_else(|_| slo_usage()),
            "--top" => top = value().parse().unwrap_or_else(|_| slo_usage()),
            "--out" => out = Some(value()),
            _ => slo_usage(),
        }
    }
    if smoke {
        slo_smoke(seed, per_tenant);
    }
    println!(
        "slo scenario: seed {seed}, {per_tenant} I/Os per tenant, \
         SSD 0 stalled {}..{} ns",
        SLO_STALL_FROM.as_nanos(),
        SLO_STALL_UNTIL.as_nanos()
    );
    let world = slo_scenario(seed, per_tenant);
    println!("alerts ({}):", world.slo_alerts().len());
    for a in world.slo_alerts() {
        println!("  {}", a.render());
    }
    let incident = world.incident_report(&[], top);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &incident) {
                eprintln!("cannot write {path}: {e}");
                exit(2);
            }
            println!("incident report written to {path}");
        }
        None => print!("{incident}"),
    }
    exit(0)
}

// ---------------------------------------------------------------------
// prof: the bm-prof self-profiler over the fig. 8 BM-Store case
// ---------------------------------------------------------------------

/// Counting allocator so `prof` runs attribute allocations to profile
/// scopes. Disarmed (the default) it is a thread-local bool check per
/// allocation; the other subcommands never arm it.
#[global_allocator]
static ALLOCATOR: bm_prof::alloc::CountingAlloc = bm_prof::alloc::CountingAlloc;

fn prof_usage() -> ! {
    eprintln!(
        "usage: bmstore-cli prof [--quick] [--seed N] [--top K]\n\
         \x20                       [--folded FILE] [--json FILE] [--smoke]"
    );
    exit(2)
}

/// Renders every figure-relevant number of the fig. 8 case to a
/// canonical string (exact f64 bit patterns) so profiler-on and
/// profiler-off runs can be byte-compared.
fn prof_figures(results: &[bm_workloads::fio::FioResult], events_fired: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "events {events_fired}");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            s,
            "dev{i} ops {} iops {:016x} bw {:016x} p50 {} p99 {} p999 {} avg {}",
            r.ops,
            r.iops.to_bits(),
            r.bandwidth_mbps.to_bits(),
            r.p50.as_nanos(),
            r.p99.as_nanos(),
            r.p999.as_nanos(),
            r.avg_latency.as_nanos(),
        );
    }
    s
}

/// Runs one BM-Store figure case, optionally profiled. Returns the
/// canonical figure rendering and the profile snapshot.
fn prof_run(cfg: TestbedConfig, profiler: bool) -> (String, Option<bm_prof::Snapshot>) {
    let cfg = if profiler { cfg.with_profiler() } else { cfg };
    let spec = bm_bench::scaled(FioSpec::rand_r_128());
    let (results, world) = run_fio(cfg, spec);
    let figures = prof_figures(&results, world.events_fired);
    let snap = world.tb.profiler().snapshot();
    (figures, snap)
}

/// The fig. 8 bare-metal rand-r-128 case — what `prof` profiles.
fn prof_case(seed: u64, profiler: bool) -> (String, Option<bm_prof::Snapshot>) {
    prof_run(
        TestbedConfig::bm_store_bare_metal(1).with_seed(seed),
        profiler,
    )
}

type SmokeCfgFn = fn(u64) -> TestbedConfig;

fn prof_smoke(seed: u64) -> ! {
    let mut failures = Vec::new();

    // Byte-identity across the fig. 8/9/12 BM-Store configurations:
    // the profiler must be invisible in every figure the paper pipeline
    // produces, not just the single-disk bare-metal case.
    let smoke_cases: &[(&str, SmokeCfgFn)] = &[
        ("fig08 bare-metal", |s| {
            TestbedConfig::bm_store_bare_metal(1).with_seed(s)
        }),
        ("fig09 single-vm", |s| {
            TestbedConfig::single_vm(SchemeKind::BmStore { in_vm: true }).with_seed(s)
        }),
        ("fig12 multi-vm", |s| {
            TestbedConfig::multi_vm_bm_store(4).with_seed(s)
        }),
    ];
    for (label, make_cfg) in smoke_cases {
        let (fig_off, snap_off) = prof_run(make_cfg(seed), false);
        if snap_off.is_some() {
            failures.push(format!(
                "{label}: profiler-off run unexpectedly produced a snapshot"
            ));
        }
        let (fig_on, _) = prof_run(make_cfg(seed), true);
        if fig_on != fig_off {
            failures.push(format!(
                "{label}: figures differ with profiler enabled:\n\
                 --- off ---\n{fig_off}--- on ---\n{fig_on}"
            ));
        }
    }

    bm_prof::alloc::arm();
    let (_, snap_on) = prof_case(seed, true);
    bm_prof::alloc::disarm();

    match snap_on {
        None => failures.push("profiler-on run produced no snapshot".to_string()),
        Some(snap) => {
            if snap.scopes.is_empty() {
                failures.push("snapshot has no scopes".to_string());
            }
            let folded = bm_prof::report::folded(&snap);
            for (i, line) in folded.lines().enumerate() {
                let ok = line
                    .rsplit_once(' ')
                    .is_some_and(|(key, ns)| !key.is_empty() && ns.parse::<u64>().is_ok());
                if !ok {
                    failures.push(format!("folded line {} malformed: {line:?}", i + 1));
                    break;
                }
            }
            let json = bm_prof::report::render_json(&snap);
            match bm_prof::report::parse_json(&json) {
                Ok(p) => {
                    // Scaling makes the folded self-ns sum track the
                    // measured dispatch total; 10% is the gate.
                    let total = p.total_run_ns;
                    let sum = p.self_ns_sum;
                    if total > 0 && sum.abs_diff(total) > total / 10 {
                        failures.push(format!(
                            "folded self-ns sum {sum} not within 10% of \
                             measured dispatch total {total}"
                        ));
                    }
                }
                Err(e) => failures.push(format!("JSON report does not parse: {e}")),
            }
        }
    }

    if failures.is_empty() {
        println!(
            "prof smoke OK: figures byte-identical with profiler on, \
             folded + JSON reports parse, self-ns sums to the dispatch total"
        );
        exit(0)
    }
    for f in &failures {
        eprintln!("prof smoke FAILED: {f}");
    }
    exit(1)
}

fn prof_main(mut it: std::env::Args) -> ! {
    let mut smoke = false;
    let mut seed = 42u64;
    let mut top = 12usize;
    let mut folded_out: Option<String> = None;
    let mut json_out: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| prof_usage());
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--quick" => {} // observed by bm_bench::quick() via env::args
            "--seed" => seed = value().parse().unwrap_or_else(|_| prof_usage()),
            "--top" => top = value().parse().unwrap_or_else(|_| prof_usage()),
            "--folded" => folded_out = Some(value()),
            "--json" => json_out = Some(value()),
            _ => prof_usage(),
        }
    }
    if smoke {
        prof_smoke(seed);
    }

    bm_prof::alloc::arm();
    let (figures, snap) = prof_case(seed, true);
    bm_prof::alloc::disarm();
    let Some(snap) = snap else {
        eprintln!("prof: profiled run produced no snapshot");
        exit(2)
    };

    println!("fig. 8 bare-metal rand-r-128, profiled (seed {seed}):");
    print!("{figures}");
    print!("{}", bm_prof::report::top_table(&snap, top));
    if let Some(path) = folded_out {
        if let Err(e) = std::fs::write(&path, bm_prof::report::folded(&snap)) {
            eprintln!("cannot write {path}: {e}");
            exit(2);
        }
        println!("folded stacks written to {path} (flamegraph.pl-compatible)");
    }
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, bm_prof::report::render_json(&snap)) {
            eprintln!("cannot write {path}: {e}");
            exit(2);
        }
        println!("JSON report written to {path}");
    }
    exit(0)
}

fn main() {
    {
        let mut it = std::env::args();
        it.next();
        match it.next().as_deref() {
            Some("chaos") => chaos_main(it),
            Some("slo") => slo_main(it),
            Some("prof") => prof_main(it),
            _ => {}
        }
    }
    let args = parse_args();
    let kind = scheme_kind(&args.scheme);
    let mut cfg = match &kind {
        SchemeKind::Native => TestbedConfig::native(args.ssds),
        SchemeKind::BmStore { in_vm: false } => TestbedConfig::bm_store_bare_metal(args.ssds),
        other => {
            let mut c = TestbedConfig::single_vm(other.clone());
            c.ssds = args.ssds;
            c.devices = (0..args.ssds)
                .map(|i| bm_testbed::DeviceSpec::whole_disk(i as u8))
                .collect();
            c
        }
    }
    .with_seed(args.seed);
    if args.metrics {
        cfg = cfg.with_metrics();
    }
    if args.qos_iops > 0 {
        for d in &mut cfg.devices {
            d.qos = QosLimit::iops(args.qos_iops as f64);
        }
    }
    let spec = FioSpec {
        mode: rw_mode(&args.rw),
        block_bytes: args.bs,
        iodepth: args.iodepth,
        numjobs: args.numjobs,
        ramp: SimDuration::from_ms(args.runtime_ms / 10),
        runtime: SimDuration::from_ms(args.runtime_ms),
    };
    println!(
        "scheme={} rw={} bs={} iodepth={} numjobs={} ssds={} runtime={}ms qos_iops={}",
        args.scheme,
        args.rw,
        args.bs,
        args.iodepth,
        args.numjobs,
        args.ssds,
        args.runtime_ms,
        args.qos_iops
    );
    let (results, world) = run_fio(cfg, spec);
    for (i, r) in results.iter().enumerate() {
        println!(
            "dev{i}: {:>9.0} IOPS  {:>8.1} MB/s  avg {:>9.1} us  p50 {:>9.1}  p99 {:>9.1}  p99.9 {:>9.1}",
            r.iops,
            r.bandwidth_mbps,
            r.avg_latency.as_micros_f64(),
            r.p50.as_micros_f64(),
            r.p99.as_micros_f64(),
            r.p999.as_micros_f64(),
        );
    }
    let agg = aggregate(&results);
    println!(
        "total: {:>9.0} IOPS  {:>8.1} MB/s  avg {:>9.1} us",
        agg.iops,
        agg.bandwidth_mbps,
        agg.avg_latency.as_micros_f64()
    );
    let polling = world.tb.polling_cpu_busy();
    if polling > SimDuration::ZERO {
        println!(
            "host polling CPU burnt: {:.3} core-seconds",
            polling.as_secs_f64()
        );
    }
    if args.metrics {
        let dumped = world.tb.metrics().read(|m| {
            let exposition = prometheus(m);
            let end = m.last_sample().unwrap_or(SimTime::ZERO);
            let table = render_bottleneck(&m.bottleneck_report(end, 5));
            (exposition, table)
        });
        match dumped {
            Some((exposition, table)) => {
                match &args.out {
                    Some(path) => {
                        if let Err(e) = std::fs::write(path, &exposition) {
                            eprintln!("cannot write {path}: {e}");
                            exit(2);
                        }
                        println!("\nprometheus exposition written to {path}");
                    }
                    None => println!("\n{exposition}"),
                }
                println!("{table}");
            }
            None => eprintln!("metrics registry unavailable"),
        }
    }
}
