//! `bmstore-cli` — run ad-hoc fio-style scenarios against any scheme.
//!
//! ```text
//! bmstore-cli [metrics] [--scheme native|vfio|bm-store|bm-store-vm|spdk[:CORES]|arm]
//!             [--rw randread|randwrite|seqread|seqwrite|rw:READFRAC]
//!             [--bs BYTES] [--iodepth N] [--numjobs N] [--ssds N]
//!             [--runtime-ms N] [--seed N] [--qos-iops N] [--out FILE]
//! ```
//!
//! The `metrics` subcommand runs the same scenario with the time-series
//! registry enabled (the metrics twin of `--telemetry` plumbing) and
//! dumps the Prometheus exposition plus the bottleneck table after the
//! fio summary; `--out FILE` writes the exposition to FILE instead of
//! stdout.
//!
//! The `chaos` subcommand drives the seeded chaos harness:
//!
//! ```text
//! bmstore-cli chaos run [--seeds N] [--base-seed N]
//!                       [--policy abort-to-host|quiesce-replay]
//!                       [--sabotage] [--out FILE]
//! bmstore-cli chaos replay FILE
//! ```
//!
//! `chaos run` sweeps N seeds of generated fault plans through the
//! invariant oracles; on failure it delta-debugs the first failing plan
//! to a minimal repro and writes/prints the repro artifact. `chaos
//! replay` re-executes a saved artifact bit-identically and reports the
//! violations it (still) trips. Exit status is non-zero when any oracle
//! fired.
//!
//! Example: the paper's rand-r-128 on BM-Store with a 50 K IOPS cap:
//!
//! ```bash
//! cargo run --release -p bm-bench --bin bmstore_cli -- \
//!     --scheme bm-store --rw randread --iodepth 128 --qos-iops 50000
//! ```

use bm_sim::metrics::{prometheus, render_bottleneck};
use bm_sim::{SimDuration, SimTime};
use bm_testbed::{SchemeKind, TestbedConfig};
use bm_workloads::fio::{aggregate, run_fio, FioSpec, RwMode};
use bmstore_core::engine::qos::QosLimit;
use std::process::exit;

struct Args {
    metrics: bool,
    scheme: String,
    rw: String,
    bs: u64,
    iodepth: u32,
    numjobs: u32,
    ssds: usize,
    runtime_ms: u64,
    seed: u64,
    qos_iops: u32,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bmstore-cli [metrics] [--scheme native|vfio|bm-store|bm-store-vm|spdk[:CORES]|arm]\n\
         \x20                  [--rw randread|randwrite|seqread|seqwrite|rw:READFRAC]\n\
         \x20                  [--bs BYTES] [--iodepth N] [--numjobs N] [--ssds N]\n\
         \x20                  [--runtime-ms N] [--seed N] [--qos-iops N] [--out FILE]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        metrics: false,
        scheme: "bm-store".into(),
        rw: "randread".into(),
        bs: 4096,
        iodepth: 128,
        numjobs: 4,
        ssds: 1,
        runtime_ms: 500,
        seed: 42,
        qos_iops: 0,
        out: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("metrics") {
        args.metrics = true;
        it.next();
    }
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scheme" => args.scheme = value(),
            "--rw" => args.rw = value(),
            "--bs" => args.bs = value().parse().unwrap_or_else(|_| usage()),
            "--iodepth" => args.iodepth = value().parse().unwrap_or_else(|_| usage()),
            "--numjobs" => args.numjobs = value().parse().unwrap_or_else(|_| usage()),
            "--ssds" => args.ssds = value().parse().unwrap_or_else(|_| usage()),
            "--runtime-ms" => args.runtime_ms = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--qos-iops" => args.qos_iops = value().parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn scheme_kind(s: &str) -> SchemeKind {
    match s {
        "native" => SchemeKind::Native,
        "vfio" => SchemeKind::Vfio,
        "bm-store" => SchemeKind::BmStore { in_vm: false },
        "bm-store-vm" => SchemeKind::BmStore { in_vm: true },
        "arm" => SchemeKind::ArmOffload,
        other => match other.strip_prefix("spdk") {
            Some(rest) => {
                let cores = rest
                    .strip_prefix(':')
                    .map(|c| c.parse().unwrap_or_else(|_| usage()))
                    .unwrap_or(1);
                SchemeKind::SpdkVhost { cores }
            }
            None => {
                eprintln!("unknown scheme {other}");
                usage()
            }
        },
    }
}

fn rw_mode(s: &str) -> RwMode {
    match s {
        "randread" => RwMode::RandRead,
        "randwrite" => RwMode::RandWrite,
        "seqread" => RwMode::SeqRead,
        "seqwrite" => RwMode::SeqWrite,
        other => match other.strip_prefix("rw:") {
            Some(frac) => RwMode::RandRw {
                read_frac: frac.parse().unwrap_or_else(|_| usage()),
            },
            None => {
                eprintln!("unknown rw mode {other}");
                usage()
            }
        },
    }
}

fn chaos_usage() -> ! {
    eprintln!(
        "usage: bmstore-cli chaos run [--seeds N] [--base-seed N]\n\
         \x20                            [--policy abort-to-host|quiesce-replay]\n\
         \x20                            [--sabotage] [--out FILE]\n\
         \x20      bmstore-cli chaos replay FILE"
    );
    exit(2)
}

/// `chaos run`: N-seed campaign, shrink + artifact on failure.
fn chaos_run(mut it: std::env::Args) -> ! {
    let mut seeds = 25usize;
    let mut base_seed = 0xC4A05u64;
    let mut cfg = bm_chaos::ChaosConfig::abort_to_host();
    let mut out: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| chaos_usage());
        match flag.as_str() {
            "--seeds" => seeds = value().parse().unwrap_or_else(|_| chaos_usage()),
            "--base-seed" => base_seed = value().parse().unwrap_or_else(|_| chaos_usage()),
            "--policy" => {
                cfg = match value().as_str() {
                    "abort-to-host" => bm_chaos::ChaosConfig::abort_to_host(),
                    "quiesce-replay" => bm_chaos::ChaosConfig::quiesce_replay(),
                    _ => chaos_usage(),
                }
            }
            "--sabotage" => cfg.sabotage_drop_journal_tail = true,
            "--out" => out = Some(value()),
            _ => chaos_usage(),
        }
    }
    println!(
        "chaos campaign: {seeds} seeds from {base_seed}, policy {:?}, sabotage {}",
        cfg.fail_policy, cfg.sabotage_drop_journal_tail
    );
    let report = bm_chaos::run_campaign(&cfg, base_seed, seeds);
    println!(
        "{} cases: {} passed, {} failed; {} I/Os, {} faults, {} recoveries",
        report.cases,
        report.passed,
        report.failures.len(),
        report.total_issued,
        report.total_faults,
        report.total_recoveries
    );
    let Some(first) = report.failures.first() else {
        println!("all oracles held on every seed");
        exit(0)
    };
    for f in &report.failures {
        println!("seed {} FAILED:", f.seed);
        for v in &f.report.violations {
            println!("  {v}");
        }
    }
    println!(
        "shrinking seed {} ({} events) ...",
        first.seed,
        first.plan.events().len()
    );
    let shrunk = bm_chaos::shrink_failing_case(&cfg, &first.plan);
    let artifact = bm_chaos::ReproArtifact::new(&cfg, shrunk);
    println!("minimal repro: {} events", artifact.plan.events().len());
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, artifact.to_text()) {
                eprintln!("cannot write {path}: {e}");
            } else {
                println!("repro artifact written to {path}");
            }
        }
        None => print!("{}", artifact.to_text()),
    }
    exit(1)
}

/// `chaos replay FILE`: re-execute a saved repro artifact.
fn chaos_replay(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(2)
    });
    let artifact = bm_chaos::ReproArtifact::from_text(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(2)
    });
    println!(
        "replaying seed {} ({} events, policy {:?}, sabotage {})",
        artifact.plan.seed(),
        artifact.plan.events().len(),
        artifact.fail_policy,
        artifact.sabotage
    );
    let report = artifact.replay();
    println!("{}", report.summary());
    for v in &report.violations {
        println!("  {v}");
    }
    exit(i32::from(!report.passed()))
}

fn chaos_main(mut it: std::env::Args) -> ! {
    match it.next().as_deref() {
        Some("run") => chaos_run(it),
        Some("replay") => match it.next() {
            Some(path) => chaos_replay(&path),
            None => chaos_usage(),
        },
        _ => chaos_usage(),
    }
}

fn main() {
    {
        let mut it = std::env::args();
        it.next();
        if it.next().as_deref() == Some("chaos") {
            chaos_main(it);
        }
    }
    let args = parse_args();
    let kind = scheme_kind(&args.scheme);
    let mut cfg = match &kind {
        SchemeKind::Native => TestbedConfig::native(args.ssds),
        SchemeKind::BmStore { in_vm: false } => TestbedConfig::bm_store_bare_metal(args.ssds),
        other => {
            let mut c = TestbedConfig::single_vm(other.clone());
            c.ssds = args.ssds;
            c.devices = (0..args.ssds)
                .map(|i| bm_testbed::DeviceSpec::whole_disk(i as u8))
                .collect();
            c
        }
    }
    .with_seed(args.seed);
    if args.metrics {
        cfg = cfg.with_metrics();
    }
    if args.qos_iops > 0 {
        for d in &mut cfg.devices {
            d.qos = QosLimit::iops(args.qos_iops as f64);
        }
    }
    let spec = FioSpec {
        mode: rw_mode(&args.rw),
        block_bytes: args.bs,
        iodepth: args.iodepth,
        numjobs: args.numjobs,
        ramp: SimDuration::from_ms(args.runtime_ms / 10),
        runtime: SimDuration::from_ms(args.runtime_ms),
    };
    println!(
        "scheme={} rw={} bs={} iodepth={} numjobs={} ssds={} runtime={}ms qos_iops={}",
        args.scheme,
        args.rw,
        args.bs,
        args.iodepth,
        args.numjobs,
        args.ssds,
        args.runtime_ms,
        args.qos_iops
    );
    let (results, world) = run_fio(cfg, spec);
    for (i, r) in results.iter().enumerate() {
        println!(
            "dev{i}: {:>9.0} IOPS  {:>8.1} MB/s  avg {:>9.1} us  p50 {:>9.1}  p99 {:>9.1}  p99.9 {:>9.1}",
            r.iops,
            r.bandwidth_mbps,
            r.avg_latency.as_micros_f64(),
            r.p50.as_micros_f64(),
            r.p99.as_micros_f64(),
            r.p999.as_micros_f64(),
        );
    }
    let agg = aggregate(&results);
    println!(
        "total: {:>9.0} IOPS  {:>8.1} MB/s  avg {:>9.1} us",
        agg.iops,
        agg.bandwidth_mbps,
        agg.avg_latency.as_micros_f64()
    );
    let polling = world.tb.polling_cpu_busy();
    if polling > SimDuration::ZERO {
        println!(
            "host polling CPU burnt: {:.3} core-seconds",
            polling.as_secs_f64()
        );
    }
    if args.metrics {
        let dumped = world.tb.metrics().read(|m| {
            let exposition = prometheus(m);
            let end = m.last_sample().unwrap_or(SimTime::ZERO);
            let table = render_bottleneck(&m.bottleneck_report(end, 5));
            (exposition, table)
        });
        match dumped {
            Some((exposition, table)) => {
                match &args.out {
                    Some(path) => {
                        if let Err(e) = std::fs::write(path, &exposition) {
                            eprintln!("cannot write {path}: {e}");
                            exit(2);
                        }
                        println!("\nprometheus exposition written to {path}");
                    }
                    None => println!("\n{exposition}"),
                }
                println!("{table}");
            }
            None => eprintln!("metrics registry unavailable"),
        }
    }
}
