//! Table IX + Fig. 15 — firmware hot-upgrade during tenant I/O.
//!
//! fio runs 4K random read (then random write) in a VM on BM-Store
//! while the management console hot-upgrades the backing SSD's firmware
//! twice. The per-second IOPS trace shows the pause windows; the
//! controller's reports give the Table IX times. Tenant I/O sees no
//! errors — commands buffer in the engine and complete after resume.

use bm_bench::{header, quick, row};
use bm_sim::stats::IoStats;
use bm_sim::{SimDuration, SimTime};
use bm_ssd::SsdId;
use bm_testbed::{DeviceId, SchemeKind, Testbed, TestbedConfig, World};
use bm_workloads::fio::{FioJob, FioSpec, IopsTrace, RwMode, SharedStats, SharedTrace};
use bmstore_core::controller::commands::BmsCommand;
use std::cell::RefCell;
use std::rc::Rc;

struct Run {
    trace: Vec<u64>,
    /// `(total seconds, controller-processing seconds)` per upgrade.
    reports: Vec<(f64, f64)>,
    ops: u64,
}

fn run_case(mode: RwMode, upgrades: &[u64], horizon: u64) -> Run {
    let spec = FioSpec {
        mode,
        block_bytes: 4096,
        iodepth: 1,
        numjobs: 4,
        ramp: SimDuration::from_ms(0),
        runtime: SimDuration::from_secs(horizon),
    };
    let cfg = TestbedConfig::single_vm(SchemeKind::BmStore { in_vm: true });
    let mut tb = Testbed::new(cfg);
    let stats: SharedStats = Rc::new(RefCell::new(IoStats::new()));
    let trace: SharedTrace = Rc::new(RefCell::new(IopsTrace::default()));
    let jobs: Vec<FioJob> = (0..spec.numjobs)
        .map(|j| {
            FioJob::new(
                &mut tb,
                DeviceId(0),
                spec,
                j,
                0x09F + j as u64,
                Rc::clone(&stats),
                Some(Rc::clone(&trace)),
            )
        })
        .collect();
    let mut world = World::new(tb);
    for j in jobs {
        world.add_client(Box::new(j));
    }
    for at in upgrades {
        world.schedule_command(
            SimTime::ZERO + SimDuration::from_secs(*at),
            BmsCommand::FirmwareUpgrade {
                ssd: SsdId(0),
                slot: 2,
                image: vec![0xF3; 8192],
            },
        );
    }
    let world = world.run(None);
    let mut reports = Vec::new();
    if let Some(ctl) = world.tb.controller() {
        for r in ctl.upgrade_reports() {
            reports.push((
                r.total().as_secs_f64(),
                r.controller_processing.as_secs_f64(),
            ));
        }
    }
    let result = Run {
        trace: trace.borrow().per_second().to_vec(),
        reports,
        ops: stats.borrow().ops(),
    };
    result
}

fn main() {
    let (upgrades, horizon): (Vec<u64>, u64) = if quick() {
        (vec![2], 10)
    } else {
        (vec![3, 13], 24)
    };
    for (name, mode) in [
        ("rand read", RwMode::RandRead),
        ("rand write", RwMode::RandWrite),
    ] {
        let run = run_case(mode, &upgrades, horizon);
        header(
            &format!("Fig. 15 ({name}): per-second IOPS during hot-upgrade"),
            &["IOPS"],
        );
        for (sec, iops) in run.trace.iter().enumerate() {
            let marker = if *iops == 0 { "  <- paused" } else { "" };
            println!("t={sec:>3}s {iops:>10}{marker}");
        }
        header(
            "Table IX: hot-upgrade times",
            &["total", "BM-Store processing"],
        );
        for (i, (total, proc)) in run.reports.iter().enumerate() {
            row(
                &format!("upgrade {}", i + 1),
                &[format!("{total:.2}s"), format!("{:.0}ms", proc * 1000.0)],
            );
        }
        println!("tenant ops completed without error: {}", run.ops);
    }
    println!("\npaper: total 6-9s per upgrade, ~100ms of BM-Store processing,");
    println!("tenants need not stop I/O and receive no I/O errors");
}
