//! Fig. 1 — SPDK vhost bandwidth vs number of polling cores on 4 SSDs.
//!
//! The paper's motivation figure: "SPDK vhost needs to bind at least
//! eight CPU cores for four SSDs to get only 80% of native performance."
//! Workload: 128K sequential read, QD256, 4 jobs (per device).

use bm_baselines::spdk::SpdkVhostConfig;
use bm_bench::{fmt_bw, fmt_pct, header, row, scaled};
use bm_testbed::{DeviceSpec, SchemeKind, TestbedConfig};
use bm_workloads::fio::{aggregate, run_fio, FioSpec};

fn four_ssd_devices() -> Vec<DeviceSpec> {
    (0..4).map(DeviceSpec::whole_disk).collect()
}

fn main() {
    let spec = scaled(FioSpec::seq_r_256());

    // Native baseline: 4 SSDs driven directly.
    let native_cfg = TestbedConfig {
        devices: four_ssd_devices(),
        ..TestbedConfig::native(4)
    };
    let (results, _) = run_fio(native_cfg, spec);
    let native_bw = aggregate(&results).bandwidth_mbps;

    header(
        "Fig. 1: SPDK vhost vs polling cores (4 SSDs, seq read 128K)",
        &["bandwidth", "of native"],
    );
    row("native", &[fmt_bw(native_bw), fmt_pct(1.0)]);
    for cores in [1usize, 2, 4, 6, 8, 10] {
        let cfg = TestbedConfig {
            scheme: SchemeKind::SpdkVhost { cores },
            devices: four_ssd_devices(),
            spdk_config: Some(SpdkVhostConfig::centos310_multi_ssd(4)),
            ..TestbedConfig::native(4)
        };
        let (results, world) = run_fio(cfg, spec);
        let bw = aggregate(&results).bandwidth_mbps;
        let _ = world.tb.polling_cpu_busy();
        row(
            &format!("{cores} cores"),
            &[fmt_bw(bw), fmt_pct(bw / native_bw)],
        );
    }
    println!("\npaper: >=8 cores reach only ~80% of native; BM-Store needs 0 polling cores");
}
