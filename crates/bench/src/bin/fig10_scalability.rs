//! Fig. 10 — total bandwidth of BM-Store vs number of SSDs (bare
//! metal, seq-r-256 per device).

use bm_bench::{fmt_bw, header, row, scaled};
use bm_testbed::TestbedConfig;
use bm_workloads::fio::{aggregate, run_fio, FioSpec};

fn main() {
    header(
        "Fig. 10: BM-Store total bandwidth vs #SSDs (seq-r-256)",
        &["total BW", "per SSD"],
    );
    let spec = scaled(FioSpec::seq_r_256());
    for ssds in 1..=4usize {
        let (results, _) = run_fio(TestbedConfig::bm_store_bare_metal(ssds), spec);
        let agg = aggregate(&results);
        row(
            &format!("{ssds} SSDs"),
            &[
                fmt_bw(agg.bandwidth_mbps),
                fmt_bw(agg.bandwidth_mbps / ssds as f64),
            ],
        );
    }
    println!("\npaper: bandwidth scales linearly with SSD count while using about");
    println!("half the FPGA (Table II) — promising scalability");
}
