//! Fig. 14 — mixed Sysbench + YCSB workloads in multiple VMs:
//! (a) RocksDB transaction throughput, (b) MySQL average latency.

use bm_bench::{header, row, scale};
use bm_testbed::{DeviceSpec, SchemeKind, TestbedConfig};
use bm_workloads::mixed::run_mixed;
use bm_workloads::oltp::OltpSpec;
use bm_workloads::ycsb::YcsbSpec;

fn main() {
    let s = scale();
    let oltp_spec = OltpSpec::sysbench().scaled(s);
    let ycsb_spec = YcsbSpec::paper_mixed().scaled(s);
    let window = ycsb_spec.runtime;
    header(
        "Fig. 14: mixed workloads, 2 MySQL VMs + 2 RocksDB VMs",
        &["kv ops/s (x2)", "mysql lat (x2)"],
    );
    for (name, scheme) in [
        ("vfio", SchemeKind::Vfio),
        ("bm-store", SchemeKind::BmStore { in_vm: true }),
        ("spdk-vhost", SchemeKind::SpdkVhost { cores: 1 }),
    ] {
        let cfg = TestbedConfig {
            scheme,
            ssds: 4,
            devices: (0..4).map(DeviceSpec::vm_namespace_on).collect(),
            ..TestbedConfig::native(4)
        };
        let (result, _) = run_mixed(cfg, 2, 2, oltp_spec.clone(), ycsb_spec);
        let kv: Vec<String> = result
            .kv
            .iter()
            .map(|k| format!("{:.0}", k.ops_per_sec(window)))
            .collect();
        let lat: Vec<String> = result
            .oltp
            .iter()
            .map(|o| format!("{:.0}us", o.latency.mean().as_micros_f64()))
            .collect();
        row(name, &[kv.join("/"), lat.join("/")]);
    }
    println!("\npaper: BM-Store keeps near-native throughput and isolation even under");
    println!("complex mixed workloads across VMs");
}
