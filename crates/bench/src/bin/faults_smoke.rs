//! Fault-injection smoke — exercises the `bm-sim::faults` subsystem
//! end to end in a few simulated milliseconds.
//!
//! A closed-loop tenant runs against BM-Store bare-metal while a
//! [`FaultPlan`] injects a latency spike, a stall, swallowed commands,
//! an error burst, a PCIe link-retrain window, and MCTP packet loss
//! during a firmware hot-upgrade. Prints the injected/recovered event
//! tally and checks the conservation identity: every submitted I/O
//! completes exactly once (success + device error + explicit abort).
//!
//! Run via `./run_all_experiments.sh --faults` or directly:
//! `cargo run --release -p bm-bench --bin faults_smoke`.
//!
//! `--fault-plan FILE` replaces the built-in schedule with a plan
//! parsed from FILE (the `bmstore-fault-plan v1` text format that
//! `FaultPlan::to_text` and chaos repro artifacts emit). Plan-specific
//! assertions are skipped for external plans; the exactly-once
//! conservation identity is always enforced.

use bm_bench::{header, row};
use bm_nvme::types::Lba;
use bm_nvme::Status;
use bm_sim::faults::{FaultKind, FaultPlan};
use bm_sim::{SimDuration, SimTime};
use bm_ssd::SsdId;
use bm_testbed::{
    BufferId, Client, ClientOutput, Completion, DeviceId, FaultLog, FaultTraceEvent, IoOp,
    IoRequest, Testbed, TestbedConfig, World,
};
use bmstore_core::controller::commands::BmsCommand;
use bmstore_core::{FailPolicy, RecoveryEvent};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Default)]
struct Tally {
    success: u64,
    error: u64,
    aborted: u64,
}

struct Loader {
    total: u64,
    issued: u64,
    depth: u32,
    buf: BufferId,
    tally: Rc<RefCell<Tally>>,
}

impl Loader {
    fn next(&mut self) -> IoRequest {
        self.issued += 1;
        IoRequest {
            dev: DeviceId(0),
            op: if self.issued.is_multiple_of(3) {
                IoOp::Write
            } else {
                IoOp::Read
            },
            lba: Lba((self.issued * 7919) % 1_000_000),
            blocks: 1,
            buf: self.buf,
            tag: self.issued,
        }
    }
}

impl Client for Loader {
    fn start(&mut self, _now: SimTime) -> ClientOutput {
        let n = self.depth.min(self.total as u32);
        ClientOutput::submit((0..n).map(|_| self.next()).collect())
    }

    fn on_completion(&mut self, _now: SimTime, c: Completion) -> ClientOutput {
        let mut tally = self.tally.borrow_mut();
        if c.status.is_success() {
            tally.success += 1;
        } else if c.status == Status::Aborted {
            tally.aborted += 1;
        } else {
            tally.error += 1;
        }
        drop(tally);
        if self.issued < self.total {
            ClientOutput::submit(vec![self.next()])
        } else {
            ClientOutput::idle()
        }
    }
}

fn us(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_us(n)
}

/// Parses `--fault-plan FILE`, if present.
fn external_plan() -> Option<FaultPlan> {
    let mut it = std::env::args().skip(1);
    if let Some(flag) = it.next() {
        match flag.as_str() {
            "--fault-plan" => {
                let path = it.next().unwrap_or_else(|| {
                    eprintln!("--fault-plan needs a file path");
                    std::process::exit(2);
                });
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                });
                let plan = FaultPlan::from_text(&text).unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    std::process::exit(2);
                });
                return Some(plan);
            }
            "--help" | "-h" => {
                eprintln!("usage: faults_smoke [--fault-plan FILE]");
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    None
}

fn main() {
    let total = 4_000u64;
    let external = external_plan();
    let builtin = external.is_none();
    let builtin_plan = || {
        FaultPlan::new(0xFA17)
            .with(us(100), FaultKind::SsdDropCommands { ssd: 0, count: 2 })
            .with(
                us(200),
                FaultKind::SsdLatencySpike {
                    ssd: 0,
                    extra: SimDuration::from_us(40),
                    until: us(900),
                },
            )
            .with(
                us(400),
                FaultKind::SsdErrorBurst {
                    ssd: 0,
                    probability: 0.05,
                    until: us(800),
                },
            )
            .with(
                us(500),
                FaultKind::SsdStall {
                    ssd: 0,
                    until: us(750),
                },
            )
            .with(us(600), FaultKind::LinkRetrain { until: us(650) })
            .with(us(950), FaultKind::MctpDrop { count: 1 })
    };
    let plan = external.unwrap_or_else(builtin_plan);
    let plan_len = plan.events().len() as u64;
    let cfg = TestbedConfig::bm_store_bare_metal(1)
        .with_fault_plan(plan)
        .with_command_timeout(SimDuration::from_us(500), FailPolicy::AbortToHost);
    let mut tb = Testbed::new(cfg);
    let buf = tb.register_buffer(4096);
    let tally = Rc::new(RefCell::new(Tally::default()));
    let client = Loader {
        total,
        issued: 0,
        depth: 16,
        buf,
        tally: Rc::clone(&tally),
    };
    let mut world = World::new(tb);
    world.add_client(Box::new(client));
    let log = Rc::new(RefCell::new(FaultLog::default()));
    world.set_observer(log.clone());
    if builtin {
        // The MCTP drop at 950µs tears this request's first
        // transmission; the console retransmits under the same tag.
        world.schedule_command(
            us(960),
            BmsCommand::FirmwareUpgrade {
                ssd: SsdId(0),
                slot: 2,
                image: vec![0xF5; 4096],
            },
        );
    }
    let world = world.run(None);

    let stats = world
        .tb
        .engine()
        .expect("BM-Store scheme")
        .resilience_stats();
    let log = log.borrow();
    let count = |f: &dyn Fn(&FaultTraceEvent) -> bool| {
        log.events().iter().filter(|(_, e)| f(e)).count() as u64
    };
    let injected = count(&|e| matches!(e, FaultTraceEvent::Injected(_)));
    let mctp_dropped = count(&|e| matches!(e, FaultTraceEvent::MctpPacketDropped));
    let retransmits = count(&|e| matches!(e, FaultTraceEvent::MctpRetransmit { .. }));
    let deferred = count(&|e| matches!(e, FaultTraceEvent::LinkDeferred { .. }));
    let retries = count(&|e| {
        matches!(
            e,
            FaultTraceEvent::EngineRecovery(RecoveryEvent::TimeoutRetry { .. })
        )
    });

    header("fault-injection smoke", &["count"]);
    row("plan events", &[format!("{plan_len}")]);
    row("injected", &[format!("{injected}")]);
    row("timeouts", &[format!("{}", stats.timeouts)]);
    row("retries seen", &[format!("{retries}")]);
    row("mctp dropped", &[format!("{mctp_dropped}")]);
    row("mctp resends", &[format!("{retransmits}")]);
    row("link deferrals", &[format!("{deferred}")]);

    let tally = tally.borrow();
    header(
        "conservation under faults",
        &["success", "error", "aborted", "total"],
    );
    row(
        "completions",
        &[
            format!("{}", tally.success),
            format!("{}", tally.error),
            format!("{}", tally.aborted),
            format!("{}", tally.success + tally.error + tally.aborted),
        ],
    );

    let responses = world.mgmt_responses();
    let upgrade_ok = responses
        .borrow()
        .iter()
        .all(|(_, r)| r.status.is_success());
    assert_eq!(
        tally.success + tally.error + tally.aborted,
        total,
        "conservation identity violated"
    );
    assert_eq!(injected, plan_len, "a plan event was not surfaced");
    if builtin {
        assert!(mctp_dropped > 0 && retransmits > 0, "MCTP loss path idle");
        assert!(deferred > 0, "link-retrain deferral path idle");
        assert!(stats.timeouts >= 2, "swallowed commands never timed out");
        assert!(upgrade_ok, "hot-upgrade failed under MCTP loss");
        println!("\nall fault paths exercised; every submitted I/O completed exactly once");
    } else {
        println!("\nexternal plan injected; every submitted I/O completed exactly once");
    }
}
