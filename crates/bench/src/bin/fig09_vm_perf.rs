//! Fig. 9 + Table VII — single-VM performance: VFIO vs BM-Store vs
//! SPDK vhost (1 disk; SPDK burns one extra host core for polling).

use bm_bench::{fmt_bw, fmt_count, fmt_lat, header, paper, row, scaled};
use bm_testbed::{SchemeKind, TestbedConfig};
use bm_workloads::fio::{aggregate, run_fio, FioSpec};

fn main() {
    header(
        "Fig. 9 / Table VII: single VM, 1 disk",
        &[
            "vfio IOPS",
            "bm IOPS",
            "spdk IOPS",
            "vfio lat",
            "bm lat",
            "spdk lat",
            "paper v/b/s",
        ],
    );
    for (i, (name, spec)) in FioSpec::table_iv().into_iter().enumerate() {
        let spec = scaled(spec);
        let (v, _) = run_fio(TestbedConfig::single_vm(SchemeKind::Vfio), spec);
        let (b, _) = run_fio(
            TestbedConfig::single_vm(SchemeKind::BmStore { in_vm: true }),
            spec,
        );
        let (s, _) = run_fio(
            TestbedConfig::single_vm(SchemeKind::SpdkVhost { cores: 1 }),
            spec,
        );
        let (v, b, s) = (aggregate(&v), aggregate(&b), aggregate(&s));
        let (_, pv, pb, ps) = paper::TABLE_VII_LATENCY_US[i];
        row(
            name,
            &[
                fmt_count(v.iops),
                fmt_count(b.iops),
                fmt_count(s.iops),
                fmt_lat(v.avg_latency),
                fmt_lat(b.avg_latency),
                fmt_lat(s.avg_latency),
                format!("{pv:.0}/{pb:.0}/{ps:.0}"),
            ],
        );
        let _ = (v.bandwidth_mbps, fmt_bw(0.0));
    }
    println!("\npaper: BM-Store reaches 95.6%-102.7% of VFIO (81.2% on rand-w-1);");
    println!("SPDK only 63.0%-96.0% and consumes 25% more CPU (1 polling core)");
}
