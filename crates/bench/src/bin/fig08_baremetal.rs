//! Fig. 8 + Table V — bare-metal single-disk: native vs BM-Store.
//!
//! IOPS, bandwidth and average latency for the six Table IV cases, with
//! the paper's latency reference columns.

use bm_bench::{fmt_bw, fmt_count, fmt_lat, header, paper, row, scaled};
use bm_testbed::TestbedConfig;
use bm_workloads::fio::{aggregate, run_fio, FioSpec};

fn main() {
    header(
        "Fig. 8 / Table V: bare-metal, 1 disk",
        &[
            "native IOPS",
            "bm IOPS",
            "native BW",
            "bm BW",
            "native lat",
            "bm lat",
            "paper nat",
            "paper bm",
        ],
    );
    for (i, (name, spec)) in FioSpec::table_iv().into_iter().enumerate() {
        let spec = scaled(spec);
        let (n, _) = run_fio(TestbedConfig::native(1), spec);
        let (b, _) = run_fio(TestbedConfig::bm_store_bare_metal(1), spec);
        let (n, b) = (aggregate(&n), aggregate(&b));
        let (_, p_nat, p_bm) = {
            let (c, x, y) = paper::TABLE_V_LATENCY_US[i];
            (c, x, y)
        };
        row(
            name,
            &[
                fmt_count(n.iops),
                fmt_count(b.iops),
                fmt_bw(n.bandwidth_mbps),
                fmt_bw(b.bandwidth_mbps),
                fmt_lat(n.avg_latency),
                fmt_lat(b.avg_latency),
                format!("{p_nat:.1}us"),
                format!("{p_bm:.1}us"),
            ],
        );
    }
    println!("\npaper: BM-Store reaches 96.2%–101.4% of native (82.5% on rand-w-1),");
    println!("adding ~3us of constant latency from the longer command path");
}
