//! Telemetry smoke — CI gate for the span/trace pipeline.
//!
//! Runs a short two-tenant BM-Store workload with telemetry on and a
//! latency spike on tenant 0's SSD, exports the Chrome trace, and
//! checks the pipeline end to end: the JSON parses, every stage span
//! nests inside its command's root span, and the slowest command's
//! latency is attributed to the DMA stage (where the injected device
//! spike is absorbed). Run by `scripts/check.sh`.

use bm_nvme::types::Lba;
use bm_sim::faults::{FaultKind, FaultPlan};
use bm_sim::telemetry::{chrome_trace, parse_chrome_trace, ParsedSpan};
use bm_sim::{SimDuration, SimTime};
use bm_testbed::{
    BufferId, Client, ClientOutput, Completion, DeviceId, IoOp, IoRequest, Testbed, TestbedConfig,
    World,
};
use std::collections::HashMap;

struct Loader {
    dev: DeviceId,
    total: u64,
    issued: u64,
    buf: BufferId,
}

impl Loader {
    fn next(&mut self) -> IoRequest {
        self.issued += 1;
        IoRequest {
            dev: self.dev,
            op: if self.issued.is_multiple_of(4) {
                IoOp::Write
            } else {
                IoOp::Read
            },
            lba: Lba((self.issued * 7919) % 1_000_000),
            blocks: 1,
            buf: self.buf,
            tag: self.issued,
        }
    }
}

impl Client for Loader {
    fn start(&mut self, _now: SimTime) -> ClientOutput {
        ClientOutput::submit((0..8).map(|_| self.next()).collect())
    }

    fn on_completion(&mut self, _now: SimTime, _c: Completion) -> ClientOutput {
        if self.issued < self.total {
            ClientOutput::submit(vec![self.next()])
        } else {
            ClientOutput::idle()
        }
    }
}

fn us(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_us(n)
}

fn main() {
    const SPIKE_US: u64 = 300;
    let mut cfg = TestbedConfig::bm_store_bare_metal(2).with_telemetry();
    cfg.fault_plan = FaultPlan::new(0x51_0E).with(
        us(150),
        FaultKind::SsdLatencySpike {
            ssd: 0,
            extra: SimDuration::from_us(SPIKE_US),
            until: us(400),
        },
    );
    let mut tb = Testbed::new(cfg);
    let buf0 = tb.register_buffer(4096);
    let buf1 = tb.register_buffer(4096);
    let mut world = World::new(tb);
    for (i, buf) in [buf0, buf1].into_iter().enumerate() {
        world.add_client(Box::new(Loader {
            dev: DeviceId(i),
            total: 400,
            issued: 0,
            buf,
        }));
    }
    let world = world.run(None);

    let trace = world
        .tb
        .telemetry()
        .read(chrome_trace)
        .expect("telemetry enabled");
    let spans = parse_chrome_trace(&trace).expect("exported trace must parse");
    assert!(spans.len() > 1_000, "trace suspiciously small");

    // Group spans by command (Chrome tid); every command must have one
    // root "cmd" span with every stage span nested inside it.
    let mut by_cmd: HashMap<u64, Vec<&ParsedSpan>> = HashMap::new();
    for s in &spans {
        by_cmd.entry(s.tid).or_default().push(s);
    }
    const EPS: f64 = 1e-6;
    let mut roots = 0u64;
    for (tid, group) in &by_cmd {
        let root = group
            .iter()
            .find(|s| s.name == "cmd")
            .unwrap_or_else(|| panic!("command {tid} has no root span"));
        roots += 1;
        for s in group {
            assert!(
                s.ts_us >= root.ts_us - EPS && s.ts_us + s.dur_us <= root.ts_us + root.dur_us + EPS,
                "span {} of command {tid} escapes its root window",
                s.name
            );
        }
    }
    assert_eq!(roots as usize, by_cmd.len());

    // The slowest command must blame the DMA stage (device round trip),
    // belong to tenant 0 (pid), and have absorbed the injected spike.
    let slowest = by_cmd
        .values()
        .filter_map(|g| g.iter().find(|s| s.name == "cmd"))
        .max_by(|a, b| a.dur_us.total_cmp(&b.dur_us))
        .expect("commands recorded");
    assert_eq!(slowest.pid, 0, "the spike hit tenant 0's SSD");
    let dominant = by_cmd[&slowest.tid]
        .iter()
        .filter(|s| s.name != "cmd")
        .max_by(|a, b| a.dur_us.total_cmp(&b.dur_us))
        .expect("stage spans recorded");
    assert_eq!(
        dominant.name, "dma",
        "the slow command's latency must land in the DMA stage"
    );
    assert!(
        dominant.dur_us >= SPIKE_US as f64,
        "DMA span ({:.1}µs) must absorb the {SPIKE_US}µs spike",
        dominant.dur_us
    );

    println!(
        "telemetry smoke ok: {} spans, {} commands, slowest {:.1}µs (tenant {}, dma {:.1}µs)",
        spans.len(),
        by_cmd.len(),
        slowest.dur_us,
        slowest.pid,
        dominant.dur_us
    );
}
