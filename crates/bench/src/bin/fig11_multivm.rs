//! Fig. 11 — total bandwidth of BM-Store with 1–26 VMs on 4 SSDs.
//!
//! Each VM gets a 256 GB namespace striped round-robin over the four
//! SSDs and runs a moderate sequential-read stream; total throughput
//! scales linearly until the four drives saturate (paper: 12.40 GB/s
//! at 16 VMs), and stays fairly divided.

use bm_bench::{fmt_bw, header, paper, row, scale};
use bm_sim::SimDuration;
use bm_testbed::TestbedConfig;
use bm_workloads::fio::{aggregate, run_fio, FioSpec, RwMode};

fn main() {
    header(
        "Fig. 11: BM-Store multi-VM total bandwidth (4 SSDs)",
        &["total BW", "per VM", "min/max VM"],
    );
    let spec = FioSpec {
        mode: RwMode::SeqRead,
        block_bytes: 128 * 1024,
        iodepth: 1,
        numjobs: 1,
        ramp: SimDuration::from_ms(100),
        runtime: SimDuration::from_ms(800),
    }
    .scaled(scale());
    for vms in [1usize, 2, 4, 8, 16, 26] {
        let (results, _) = run_fio(TestbedConfig::multi_vm_bm_store(vms), spec);
        let agg = aggregate(&results);
        let min = results
            .iter()
            .map(|r| r.bandwidth_mbps)
            .fold(f64::INFINITY, f64::min);
        let max = results.iter().map(|r| r.bandwidth_mbps).fold(0.0, f64::max);
        row(
            &format!("{vms} VMs"),
            &[
                fmt_bw(agg.bandwidth_mbps),
                fmt_bw(agg.bandwidth_mbps / vms as f64),
                format!("{min:.0}/{max:.0}"),
            ],
        );
    }
    println!(
        "\npaper: linear scaling, {} GB/s at 16 VMs (the four P4510s' ceiling),",
        paper::FIG11_PEAK_GBPS
    );
    println!("with balanced allocation across VMs");
}
