//! Ablation — FPGA I/O path vs LeapIO-style ARM full offload.
//!
//! §III-B: "LeapIO … only achieves 68% throughput of the single native
//! disk due to the limited computing capabilities of ARM CPU. Hence,
//! BM-Store offloads the I/O path to the FPGA for high performance."

use bm_bench::{fmt_count, fmt_pct, header, row, scaled};
use bm_testbed::{SchemeKind, TestbedConfig};
use bm_workloads::fio::{aggregate, run_fio, FioSpec};

fn main() {
    let spec = scaled(FioSpec::rand_r_128());
    let (native, _) = run_fio(TestbedConfig::native(1), spec);
    let (bm, _) = run_fio(TestbedConfig::bm_store_bare_metal(1), spec);
    let arm_cfg = TestbedConfig {
        scheme: SchemeKind::ArmOffload,
        ..TestbedConfig::native(1)
    };
    let (arm, _) = run_fio(arm_cfg, spec);
    let (native, bm, arm) = (aggregate(&native), aggregate(&bm), aggregate(&arm));
    header(
        "Ablation: I/O path placement (4K randread qd128 x4, 1 disk)",
        &["IOPS", "of native"],
    );
    row("native", &[fmt_count(native.iops), fmt_pct(1.0)]);
    row(
        "bm-store (FPGA)",
        &[fmt_count(bm.iops), fmt_pct(bm.iops / native.iops)],
    );
    row(
        "arm offload",
        &[fmt_count(arm.iops), fmt_pct(arm.iops / native.iops)],
    );
    println!("\npaper: the ARM-offloaded stack reaches only ~68% of native; the");
    println!("FPGA-accelerated path stays within a few percent");
}
