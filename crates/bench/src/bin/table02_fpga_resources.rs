//! Table II — FPGA resource utilization per attached-SSD count.

use bm_bench::{header, row};
use bmstore_core::engine::resources::{FpgaDevice, ResourceUsage};

fn main() {
    let dev = FpgaDevice::zu19eg();
    header(
        "Table II: FPGA resources (model vs paper)",
        &["LUTs", "Registers", "BRAMs", "URAMs", "Clock"],
    );
    for ssds in [1u32, 2, 4, 6] {
        let u = ResourceUsage::for_ssds(ssds);
        let pct = u.utilization(&dev);
        row(
            &format!("{ssds} SSDs"),
            &[
                format!("{} ({:.0}%)", u.luts, pct[0] * 100.0),
                format!("{} ({:.0}%)", u.registers, pct[1] * 100.0),
                format!("{:.0} ({:.0}%)", u.brams, pct[2] * 100.0),
                format!("{:.1} ({:.0}%)", u.urams, pct[3] * 100.0),
                format!("{}MHz", u.clock_mhz),
            ],
        );
    }
    let max = ResourceUsage::max_ssds_within(&dev, 1.0);
    println!("\nheadroom: up to {max} SSDs fit the ZU19EG (paper: \"can support more SSDs\")");
}
