//! Fig. 12 — tail-latency fairness across 4 VMs sharing BM-Store.
//!
//! Four VMs run the same case concurrently; the per-VM p50/p90/p99/
//! p99.9 should sit close together (the QoS module prevents any VM
//! from tilting the host's resources).

use bm_bench::{header, row, scaled};
use bm_sim::stats::IoStats;
use bm_testbed::{DeviceId, Testbed, TestbedConfig, World};
use bm_workloads::fio::{FioJob, FioSpec, SharedStats};
use std::cell::RefCell;
use std::rc::Rc;

fn run_case(name: &str, spec: FioSpec) {
    let cfg = TestbedConfig::multi_vm_bm_store(4);
    let mut tb = Testbed::new(cfg);
    let mut sinks: Vec<SharedStats> = Vec::new();
    let mut jobs = Vec::new();
    for vm in 0..4usize {
        let stats: SharedStats = Rc::new(RefCell::new(IoStats::new()));
        sinks.push(Rc::clone(&stats));
        for j in 0..spec.numjobs {
            jobs.push(FioJob::new(
                &mut tb,
                DeviceId(vm),
                spec,
                j,
                0xFA1 + vm as u64,
                Rc::clone(&stats),
                None,
            ));
        }
    }
    let mut world = World::new(tb);
    for job in jobs {
        world.add_client(Box::new(job));
    }
    let _ = world.run(None);
    header(
        &format!("Fig. 12 ({name}): per-VM tail latency"),
        &["p50", "p90", "p99", "p99.9"],
    );
    for (vm, stats) in sinks.iter().enumerate() {
        let s = stats.borrow();
        let h = s.latency();
        row(
            &format!("VM{vm}"),
            &[
                format!("{:.0}us", h.percentile(0.50).as_micros_f64()),
                format!("{:.0}us", h.percentile(0.90).as_micros_f64()),
                format!("{:.0}us", h.percentile(0.99).as_micros_f64()),
                format!("{:.0}us", h.percentile(0.999).as_micros_f64()),
            ],
        );
    }
}

fn main() {
    run_case("rand-r-128", scaled(FioSpec::rand_r_128()));
    run_case("rand-w-16", scaled(FioSpec::rand_w_16()));
    println!("\npaper: tail-latency distributions of the four VMs are close to each");
    println!("other in every test case — fairness is maintained");
}
