//! §VI-C — total-cost-of-ownership comparison.

use bm_bench::{fmt_pct, header, row};
use bmstore_core::tco::{compare, InstanceShape, ServerConfig};

fn main() {
    let server = ServerConfig::paper_typical();
    let shape = InstanceShape::paper_default();
    let c = compare(&server, &shape);
    header(
        "TCO: 128HT/1024GB/16SSD server, 8HT/64GB/1SSD instances",
        &["instances", "stranded", "server cost", "cost/inst"],
    );
    row(
        "spdk-vhost",
        &[
            c.spdk.sellable_instances.to_string(),
            format!(
                "{}GB+{}SSD",
                c.spdk.stranded_memory_gb, c.spdk.stranded_ssds
            ),
            format!("{:.1}", c.spdk.server_cost),
            format!("{:.3}", c.spdk.cost_per_instance),
        ],
    );
    row(
        "bm-store",
        &[
            c.bm_store.sellable_instances.to_string(),
            format!(
                "{}GB+{}SSD",
                c.bm_store.stranded_memory_gb, c.bm_store.stranded_ssds
            ),
            format!("{:.1}", c.bm_store.server_cost),
            format!("{:.3}", c.bm_store.cost_per_instance),
        ],
    );
    println!(
        "\nextra instances: {}   TCO reduction per instance: {}",
        fmt_pct(c.extra_instances_frac),
        fmt_pct(c.tco_reduction_frac)
    );
    println!("paper: +14.3% instances, >=11.3% TCO reduction, +3% hardware cost");
}
