//! The regression-gated benchmark report.
//!
//! [`BenchReport`] is the machine-readable result of the `bench_report`
//! binary: one [`BenchCase`] per figure workload, carrying throughput,
//! tail latency, per-stage utilization, the saturated stage named by
//! the bottleneck profiler, and the harness's own speed
//! (`events_per_sec`, gated one-sided as a wall-clock smoke test).
//! Reports serialize to a small JSON dialect
//! (objects, arrays, strings, numbers, booleans — written and parsed
//! here, no external crates) so a committed `bench-baseline.json` can
//! gate regressions in `scripts/check.sh` via [`compare`].
//!
//! The simulation is deterministic, so same-code runs reproduce the
//! baseline exactly; the tolerances exist to absorb small intentional
//! model recalibrations without churning the committed file.

use std::fmt::Write as _;

/// One benchmark workload's measured envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Workload id, e.g. `fig08-rand-r-128`.
    pub name: String,
    /// Aggregate operations per second.
    pub iops: f64,
    /// Aggregate bandwidth in MB/s.
    pub bandwidth_mbps: f64,
    /// Median completion latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile completion latency in microseconds.
    pub p99_us: f64,
    /// Peak back-end SQ occupancy over the run.
    pub peak_queue_depth: f64,
    /// Simulator events retired per host wall-clock second — the
    /// harness-speed figure the hot-path work optimizes. The only
    /// wall-clock-derived field in the report; [`compare`] checks it
    /// one-sided (a faster run never regresses) with a wide tolerance
    /// to absorb machine noise.
    pub events_per_sec: f64,
    /// Peak simulator event-queue depth over the run (deterministic).
    pub peak_event_queue: f64,
    /// The stage the bottleneck profiler named (empty if idle).
    pub saturated_stage: String,
    /// Per-stage occupancy (busy time / elapsed), profiler order.
    pub stages: Vec<(String, f64)>,
    /// Host wall-clock seconds spent building the testbed and wiring
    /// jobs, before the first event fires. Informational: [`compare`]
    /// never gates on it (wall-clock, machine-dependent).
    pub setup_s: f64,
    /// Host wall-clock seconds spent inside the event loop.
    /// Informational, like [`BenchCase::setup_s`].
    pub run_s: f64,
    /// With `--profile`: the bm-prof top event kinds by attributed
    /// self-time fraction of the dispatch total, `(key, fraction)`.
    /// Empty without `--profile`. Informational; never gated.
    pub hot_kinds: Vec<(String, f64)>,
}

/// A full report: schema version, run mode, and the cases.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Format version (bump on incompatible change).
    pub schema: u32,
    /// Whether the run used `--quick` scaling.
    pub quick: bool,
    /// The measured workloads.
    pub cases: Vec<BenchCase>,
}

/// Relative tolerances for [`compare`]. A measurement `x` passes
/// against baseline `b` when `|x - b| <= rel * max(|b|, epsilon)`.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Throughput (IOPS and bandwidth) relative tolerance.
    pub throughput_rel: f64,
    /// Latency (p50/p99) relative tolerance.
    pub latency_rel: f64,
    /// Peak queue depth relative tolerance.
    pub queue_rel: f64,
    /// Events-per-second one-sided tolerance: only a drop below
    /// `baseline * (1 - events_rel)` is a violation. Wide, because this
    /// is the one wall-clock-derived metric and shares the machine with
    /// whatever else is running.
    pub events_rel: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            throughput_rel: 0.05,
            latency_rel: 0.10,
            queue_rel: 0.25,
            events_rel: 0.40,
        }
    }
}

// ---------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_num(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` on f64 is the shortest round-trippable decimal form.
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

impl BenchReport {
    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = write!(
            s,
            "  \"schema\": {},\n  \"quick\": {},\n",
            self.schema, self.quick
        );
        s.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            s.push_str("    {\n      \"name\": ");
            json_escape(&c.name, &mut s);
            s.push_str(",\n      \"iops\": ");
            json_num(c.iops, &mut s);
            s.push_str(",\n      \"bandwidth_mbps\": ");
            json_num(c.bandwidth_mbps, &mut s);
            s.push_str(",\n      \"p50_us\": ");
            json_num(c.p50_us, &mut s);
            s.push_str(",\n      \"p99_us\": ");
            json_num(c.p99_us, &mut s);
            s.push_str(",\n      \"peak_queue_depth\": ");
            json_num(c.peak_queue_depth, &mut s);
            s.push_str(",\n      \"events_per_sec\": ");
            json_num(c.events_per_sec, &mut s);
            s.push_str(",\n      \"peak_event_queue\": ");
            json_num(c.peak_event_queue, &mut s);
            s.push_str(",\n      \"setup_s\": ");
            json_num(c.setup_s, &mut s);
            s.push_str(",\n      \"run_s\": ");
            json_num(c.run_s, &mut s);
            s.push_str(",\n      \"saturated_stage\": ");
            json_escape(&c.saturated_stage, &mut s);
            s.push_str(",\n      \"stages\": [");
            for (j, (name, occ)) in c.stages.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str("{\"stage\": ");
                json_escape(name, &mut s);
                s.push_str(", \"occupancy\": ");
                json_num(*occ, &mut s);
                s.push('}');
            }
            s.push_str("],\n      \"hot_kinds\": [");
            for (j, (key, frac)) in c.hot_kinds.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str("{\"kind\": ");
                json_escape(key, &mut s);
                s.push_str(", \"fraction\": ");
                json_num(*frac, &mut s);
                s.push('}');
            }
            s.push_str("]\n    }");
            s.push_str(if i + 1 < self.cases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a report written by [`Self::to_json`] (accepts any
    /// standard JSON with the same shape).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or shape problem.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value = Parser::new(text).parse()?;
        let obj = value.as_object("report")?;
        let schema = obj.field("schema", "report")?.as_f64("schema")? as u32;
        let quick = obj.field("quick", "report")?.as_bool("quick")?;
        let mut cases = Vec::new();
        for (i, cv) in obj
            .field("cases", "report")?
            .as_array("cases")?
            .iter()
            .enumerate()
        {
            let c = cv.as_object(&format!("cases[{i}]"))?;
            let mut stages = Vec::new();
            for sv in c.field("stages", "case")?.as_array("stages")? {
                let so = sv.as_object("stage")?;
                stages.push((
                    so.field("stage", "stage")?.as_str("stage")?.to_string(),
                    so.field("occupancy", "stage")?.as_f64("occupancy")?,
                ));
            }
            // Schema-3 additions parse optionally so a schema-2 file is
            // still structurally readable (compare() reports the schema
            // mismatch instead of from_json dying on a missing key).
            let setup_s = match c.iter().find(|(k, _)| k == "setup_s") {
                Some((_, v)) => v.as_f64("setup_s")?,
                None => 0.0,
            };
            let run_s = match c.iter().find(|(k, _)| k == "run_s") {
                Some((_, v)) => v.as_f64("run_s")?,
                None => 0.0,
            };
            let mut hot_kinds = Vec::new();
            if let Some((_, v)) = c.iter().find(|(k, _)| k == "hot_kinds") {
                for hv in v.as_array("hot_kinds")? {
                    let ho = hv.as_object("hot_kind")?;
                    hot_kinds.push((
                        ho.field("kind", "hot_kind")?.as_str("kind")?.to_string(),
                        ho.field("fraction", "hot_kind")?.as_f64("fraction")?,
                    ));
                }
            }
            cases.push(BenchCase {
                name: c.field("name", "case")?.as_str("name")?.to_string(),
                iops: c.field("iops", "case")?.as_f64("iops")?,
                bandwidth_mbps: c
                    .field("bandwidth_mbps", "case")?
                    .as_f64("bandwidth_mbps")?,
                p50_us: c.field("p50_us", "case")?.as_f64("p50_us")?,
                p99_us: c.field("p99_us", "case")?.as_f64("p99_us")?,
                peak_queue_depth: c
                    .field("peak_queue_depth", "case")?
                    .as_f64("peak_queue_depth")?,
                events_per_sec: c
                    .field("events_per_sec", "case")?
                    .as_f64("events_per_sec")?,
                peak_event_queue: c
                    .field("peak_event_queue", "case")?
                    .as_f64("peak_event_queue")?,
                saturated_stage: c
                    .field("saturated_stage", "case")?
                    .as_str("saturated_stage")?
                    .to_string(),
                stages,
                setup_s,
                run_s,
                hot_kinds,
            });
        }
        Ok(BenchReport {
            schema,
            quick,
            cases,
        })
    }
}

// ---------------------------------------------------------------------
// JSON parsing (minimal recursive-descent, no dependencies)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Object(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(a) => Ok(a),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(v) => Ok(*v),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(v) => Ok(*v),
            other => Err(format!("{what}: expected bool, got {other:?}")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(v) => Ok(v),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }
}

trait ObjectExt {
    fn field(&self, key: &str, what: &str) -> Result<&Json, String>;
}

impl ObjectExt for [(String, Json)] {
    fn field(&self, key: &str, what: &str) -> Result<&Json, String> {
        self.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("{what}: missing key {key:?}"))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing data at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.eat_word("true").map(|()| Json::Bool(true)),
            b'f' => self.eat_word("false").map(|()| Json::Bool(false)),
            b'n' => self.eat_word("null").map(|()| Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            out.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(out));
                }
                c => return Err(format!("expected ',' or '}}', got {:?}", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(out));
                }
                c => return Err(format!("expected ',' or ']', got {:?}", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape \\{}", c as char)),
                    }
                }
                b => {
                    // Re-decode multi-byte UTF-8 sequences from the raw input.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xF0 => 4,
                        _ if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(chunk).map_err(|_| "bad UTF-8".to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

fn check_rel(
    out: &mut Vec<String>,
    case: &str,
    metric: &str,
    current: f64,
    baseline: f64,
    rel: f64,
) {
    let budget = rel * baseline.abs().max(1e-9);
    if (current - baseline).abs() > budget {
        out.push(format!(
            "{case}: {metric} {current:.2} vs baseline {baseline:.2} \
             (allowed ±{:.1}%)",
            rel * 100.0
        ));
    }
}

/// Compares a fresh report against the committed baseline. Returns the
/// list of violations, empty when the report is within tolerances.
/// Missing or extra cases, schema/mode mismatches and a changed
/// saturated stage are violations too.
pub fn compare(current: &BenchReport, baseline: &BenchReport, tol: Tolerances) -> Vec<String> {
    let mut out = Vec::new();
    if current.schema != baseline.schema {
        out.push(format!(
            "schema mismatch: current {} vs baseline {}",
            current.schema, baseline.schema
        ));
        return out;
    }
    if current.quick != baseline.quick {
        out.push(format!(
            "run-mode mismatch: current quick={} vs baseline quick={} \
             (compare like with like)",
            current.quick, baseline.quick
        ));
        return out;
    }
    for b in &baseline.cases {
        let Some(c) = current.cases.iter().find(|c| c.name == b.name) else {
            out.push(format!("{}: case missing from current report", b.name));
            continue;
        };
        check_rel(
            &mut out,
            &b.name,
            "iops",
            c.iops,
            b.iops,
            tol.throughput_rel,
        );
        check_rel(
            &mut out,
            &b.name,
            "bandwidth_mbps",
            c.bandwidth_mbps,
            b.bandwidth_mbps,
            tol.throughput_rel,
        );
        check_rel(
            &mut out,
            &b.name,
            "p50_us",
            c.p50_us,
            b.p50_us,
            tol.latency_rel,
        );
        check_rel(
            &mut out,
            &b.name,
            "p99_us",
            c.p99_us,
            b.p99_us,
            tol.latency_rel,
        );
        check_rel(
            &mut out,
            &b.name,
            "peak_queue_depth",
            c.peak_queue_depth,
            b.peak_queue_depth,
            tol.queue_rel,
        );
        check_rel(
            &mut out,
            &b.name,
            "peak_event_queue",
            c.peak_event_queue,
            b.peak_event_queue,
            tol.queue_rel,
        );
        // One-sided: the harness getting faster is never a regression.
        let floor = b.events_per_sec * (1.0 - tol.events_rel);
        if c.events_per_sec < floor {
            out.push(format!(
                "{}: events_per_sec {:.0} below baseline {:.0} \
                 (allowed -{:.0}%; wall-clock smoke gate)",
                b.name,
                c.events_per_sec,
                b.events_per_sec,
                tol.events_rel * 100.0
            ));
        }
        if c.saturated_stage != b.saturated_stage {
            out.push(format!(
                "{}: saturated stage changed: {:?} vs baseline {:?}",
                b.name, c.saturated_stage, b.saturated_stage
            ));
        }
    }
    for c in &current.cases {
        if !baseline.cases.iter().any(|b| b.name == c.name) {
            out.push(format!(
                "{}: case not in baseline (regenerate with --write-baseline)",
                c.name
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema: 3,
            quick: true,
            cases: vec![
                BenchCase {
                    name: "fig08-rand-r-128".into(),
                    iops: 123_456.78,
                    bandwidth_mbps: 505.9,
                    p50_us: 812.5,
                    p99_us: 1200.0,
                    peak_queue_depth: 128.0,
                    events_per_sec: 2_500_000.0,
                    peak_event_queue: 260.0,
                    saturated_stage: "ssd".into(),
                    stages: vec![("ssd".into(), 112.4), ("front_end".into(), 0.11)],
                    setup_s: 0.012,
                    run_s: 1.875,
                    hot_kinds: vec![("ssd:doorbell".into(), 0.41), ("deliver".into(), 0.22)],
                },
                BenchCase {
                    name: "fig12-multivm".into(),
                    iops: 99.5,
                    bandwidth_mbps: 0.4,
                    p50_us: 80.0,
                    p99_us: 95.0,
                    peak_queue_depth: 4.0,
                    events_per_sec: 800_000.0,
                    peak_event_queue: 16.0,
                    saturated_stage: String::new(),
                    stages: vec![],
                    setup_s: 0.0,
                    run_s: 0.25,
                    hot_kinds: vec![],
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let report = sample();
        let text = report.to_json();
        let parsed = BenchReport::from_json(&text).expect("roundtrip parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn parser_accepts_escapes_and_whitespace() {
        let text = "{ \"schema\": 2, \"quick\": false,\n \"cases\": [ {\n\
                    \"name\": \"a\\\"b\\u0041\", \"iops\": 1e3, \"bandwidth_mbps\": -2.5,\n\
                    \"p50_us\": 0.125, \"p99_us\": 4, \"peak_queue_depth\": 0,\n\
                    \"events_per_sec\": 1e6, \"peak_event_queue\": 12,\n\
                    \"saturated_stage\": \"\", \"stages\": [] } ] }";
        let r = BenchReport::from_json(text).expect("parses");
        assert_eq!(r.cases[0].name, "a\"bA");
        assert_eq!(r.cases[0].iops, 1000.0);
        assert_eq!(r.cases[0].bandwidth_mbps, -2.5);
    }

    #[test]
    fn schema2_report_without_new_fields_still_parses() {
        // A committed schema-2 baseline lacks setup_s/run_s/hot_kinds;
        // from_json must default them so compare() can report the
        // schema mismatch rather than a parse failure.
        let text = "{ \"schema\": 2, \"quick\": true, \"cases\": [ {\n\
                    \"name\": \"old\", \"iops\": 5, \"bandwidth_mbps\": 1,\n\
                    \"p50_us\": 2, \"p99_us\": 3, \"peak_queue_depth\": 4,\n\
                    \"events_per_sec\": 6, \"peak_event_queue\": 7,\n\
                    \"saturated_stage\": \"\", \"stages\": [] } ] }";
        let r = BenchReport::from_json(text).expect("old schema parses");
        assert_eq!(r.schema, 2);
        assert_eq!(r.cases[0].setup_s, 0.0);
        assert_eq!(r.cases[0].run_s, 0.0);
        assert!(r.cases[0].hot_kinds.is_empty());
        let current = sample();
        let violations = compare(&current, &r, Tolerances::default());
        assert!(violations.iter().any(|v| v.contains("schema mismatch")));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(BenchReport::from_json("{").is_err());
        assert!(BenchReport::from_json("[]").is_err());
        assert!(BenchReport::from_json("{\"schema\": 1}").is_err());
        assert!(BenchReport::from_json("{\"schema\": 1, \"quick\": true, \"cases\": [}]").is_err());
    }

    #[test]
    fn identical_reports_pass() {
        let r = sample();
        assert!(compare(&r, &r, Tolerances::default()).is_empty());
    }

    #[test]
    fn throughput_regression_is_flagged() {
        let base = sample();
        let mut cur = sample();
        cur.cases[0].iops *= 0.80; // -20% — outside the 5% budget
        let violations = compare(&cur, &base, Tolerances::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("iops"));
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let base = sample();
        let mut cur = sample();
        cur.cases[0].iops *= 1.02;
        cur.cases[0].p99_us *= 1.05;
        assert!(compare(&cur, &base, Tolerances::default()).is_empty());
    }

    #[test]
    fn events_per_sec_gate_is_one_sided() {
        let base = sample();
        // A much faster harness never violates.
        let mut cur = sample();
        cur.cases[0].events_per_sec *= 5.0;
        assert!(compare(&cur, &base, Tolerances::default()).is_empty());
        // Dropping below 60% of the baseline does.
        let mut cur = sample();
        cur.cases[0].events_per_sec *= 0.50;
        let violations = compare(&cur, &base, Tolerances::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("events_per_sec"));
        // A drop inside the 40% budget passes.
        let mut cur = sample();
        cur.cases[0].events_per_sec *= 0.70;
        assert!(compare(&cur, &base, Tolerances::default()).is_empty());
    }

    #[test]
    fn mode_and_shape_mismatches_are_flagged() {
        let base = sample();
        let mut cur = sample();
        cur.quick = false;
        assert_eq!(compare(&cur, &base, Tolerances::default()).len(), 1);
        let mut cur = sample();
        cur.cases.remove(1);
        assert!(compare(&cur, &base, Tolerances::default())
            .iter()
            .any(|v| v.contains("missing")));
        let mut cur = sample();
        cur.cases[0].saturated_stage = "dma_routing".into();
        assert!(compare(&cur, &base, Tolerances::default())
            .iter()
            .any(|v| v.contains("saturated stage")));
    }
}
