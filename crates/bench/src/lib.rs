//! # bm-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see
//! `DESIGN.md` for the index), plus Criterion microbenchmarks of the
//! engine's hot paths. Every binary accepts `--quick` (or the
//! `BM_QUICK=1` environment variable) to shorten simulated windows, and
//! prints a paper-vs-measured table.

#![forbid(unsafe_code)]

pub mod report;

use bm_sim::SimDuration;
use bm_workloads::fio::FioSpec;

/// Whether the invocation asked for a quick run.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("BM_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The window scale factor for this invocation.
pub fn scale() -> f64 {
    if quick() {
        0.2
    } else {
        1.0
    }
}

/// Applies the invocation's scale to a spec.
pub fn scaled(spec: FioSpec) -> FioSpec {
    spec.scaled(scale())
}

/// Prints a table header.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n== {title} ==");
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{:16}{}", "", row.join(""));
}

/// Prints one row: a label plus formatted values.
pub fn row(label: &str, values: &[String]) {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:>14}")).collect();
    println!("{label:16}{}", cells.join(""));
}

/// Formats a count with thousands grouping.
pub fn fmt_count(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Formats a latency.
pub fn fmt_lat(d: SimDuration) -> String {
    format!("{:.1}us", d.as_micros_f64())
}

/// Formats a bandwidth in MB/s.
pub fn fmt_bw(mbps: f64) -> String {
    format!("{mbps:.0}MB/s")
}

/// Formats a ratio as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Paper reference values used in the comparison columns.
pub mod paper {
    /// Table V: bare-metal average latency (µs): (case, native, bm_store).
    pub const TABLE_V_LATENCY_US: [(&str, f64, f64); 6] = [
        ("rand-r-1", 77.2, 80.4),
        ("rand-r-128", 786.7, 792.6),
        ("rand-w-1", 11.6, 14.5),
        ("rand-w-16", 179.8, 179.9),
        ("seq-r-256", 40_579.3, 40_041.3),
        ("seq-w-256", 92_502.3, 95_030.0),
    ];

    /// Table VII: single-VM average latency (µs): (case, vfio, bm, spdk).
    pub const TABLE_VII_LATENCY_US: [(&str, f64, f64, f64); 6] = [
        ("rand-r-1", 79.7, 83.7, 82.7),
        ("rand-r-128", 1_647.0, 1_666.0, 1_893.4),
        ("rand-w-1", 14.9, 19.6, 19.2),
        ("rand-w-16", 264.7, 275.5, 305.3),
        ("seq-r-256", 40_990.4, 40_075.6, 65_197.1),
        ("seq-w-256", 98_819.2, 100_615.0, 112_245.7),
    ];

    /// Table VI: (os/kernel, IOPS, BW MB/s, avg latency µs).
    pub const TABLE_VI: [(&str, f64, f64, f64); 5] = [
        ("CentOS7.4/3.10", 642_000.0, 2629.0, 394.4),
        ("CentOS7.4/4.19", 642_000.0, 2629.0, 395.9),
        ("CentOS7.4/5.4", 642_000.0, 2630.0, 396.1),
        ("Fedora33/4.9", 603_000.0, 2468.0, 207.0),
        ("Fedora33/5.8", 607_000.0, 2487.0, 206.4),
    ];

    /// Fig. 11: peak multi-VM bandwidth (GB/s) at 16 VMs.
    pub const FIG11_PEAK_GBPS: f64 = 12.40;

    /// §V-E headline: max SPDK deficit on TPC-C.
    pub const TPCC_SPDK_DEFICIT: f64 = 0.134;

    /// §V-E Sysbench: BM-Store below native.
    pub const SYSBENCH_BM_BELOW_NATIVE: f64 = 0.0259;
    /// Sysbench: BM-Store above SPDK.
    pub const SYSBENCH_BM_OVER_SPDK: f64 = 0.081;

    /// Table VIII: Sysbench normalized average latency: vfio, bm, spdk.
    pub const TABLE_VIII_LATENCY: (f64, f64, f64) = (1.0, 1.026, 1.112);

    /// Table IX: hot-upgrade total time bounds (s).
    pub const TABLE_IX_TOTAL_S: (f64, f64) = (6.0, 9.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_full_without_quick() {
        // (Running tests never passes --quick.)
        if std::env::var("BM_QUICK").is_err() {
            assert_eq!(scale(), 1.0);
        }
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_count(1_234_567.0), "1.23M");
        assert_eq!(fmt_count(12_345.0), "12K");
        assert_eq!(fmt_count(123.0), "123");
        assert_eq!(fmt_pct(0.134), "13.4%");
        assert_eq!(fmt_bw(3231.4), "3231MB/s");
    }
}
